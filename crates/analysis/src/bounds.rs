//! Loop iteration-bound classification over the typed HIR.
//!
//! For every function this module builds a [`FunctionSummary`]: the loop
//! tree in HIR pre-order (which matches the natural-loop ordinals the
//! instrumentation pass assigns, since codegen emits loop headers in
//! pre-order), each loop's [`BoundKind`], and the call sites attributed
//! to each loop. The bound classifier recognizes three shapes:
//!
//! * **Counted loops** — a conjunct `i ⊲ B` with `⊲ ∈ {<, <=, >, >=, !=}`
//!   where `i` is a local making monotonic progress (`i = i ± c`,
//!   `i = i * k`, `i = i / k` with constant step) and `B` is
//!   loop-invariant. The trip count is classified from the bound *and*
//!   the initial value (a countdown `for (i = n; i > 0; i = i - 1)` is
//!   linear in `n`, not in the constant `0`).
//! * **Structure walks** — `x != null` where the loop advances `x`
//!   through a field (`x = x.next`), or `x.f != null` where the loop
//!   rewrites `f`; both are linear in the structure's length.
//! * Everything else is [`BoundKind::Unknown`].
//!
//! The same walk carries enough effect information to implement lint
//! AP001 (*loop makes no progress toward its exit*): a loop with no
//! reachable break/return/throw whose condition reads only values the
//! body provably never changes can never terminate once entered.

use std::collections::BTreeSet;

use algoprof_fit::ComplexityClass;
use algoprof_vm::ast::{BinOp, UnOp};
use algoprof_vm::bytecode::{FieldId, FuncId};
use algoprof_vm::hir::{HExpr, HFunction, HStmt, LocalSlot};

use crate::costfn::{CostFn, InductionVar, OpCounts, TripCount};
use crate::diag::{Code, Diagnostic};
use crate::interval::Interval;

/// Classification of a loop's iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Trip count bounded by a compile-time constant.
    Constant,
    /// Multiplicative progress toward a classifiable bound.
    Logarithmic,
    /// Linear in the value of a local/parameter of unknown magnitude.
    LinearLocal,
    /// Linear in the input: bounded by an array length, a value read
    /// from input, or a walk over a recursive structure.
    LinearInputLength,
    /// No recognized progress pattern.
    Unknown,
}

impl BoundKind {
    /// The complexity class one execution of the loop header contributes.
    pub fn class(self) -> ComplexityClass {
        match self {
            BoundKind::Constant => ComplexityClass::Constant,
            BoundKind::Logarithmic => ComplexityClass::Logarithmic,
            BoundKind::LinearLocal | BoundKind::LinearInputLength => ComplexityClass::Linear,
            BoundKind::Unknown => ComplexityClass::Unknown,
        }
    }

    /// Short description used in reports.
    pub fn describe(self) -> &'static str {
        match self {
            BoundKind::Constant => "constant",
            BoundKind::Logarithmic => "logarithmic",
            BoundKind::LinearLocal => "linear in a local",
            BoundKind::LinearInputLength => "linear in input length",
            BoundKind::Unknown => "unknown",
        }
    }

    fn rank(self) -> u8 {
        match self {
            BoundKind::Constant => 0,
            BoundKind::Logarithmic => 1,
            BoundKind::LinearLocal => 2,
            BoundKind::LinearInputLength => 3,
            BoundKind::Unknown => 4,
        }
    }

    /// The coarser (larger trip count) of two classifications.
    pub fn max(self, other: BoundKind) -> BoundKind {
        if self.rank() >= other.rank() {
            self
        } else {
            other
        }
    }
}

/// A call site attributed to a loop (or to the function's straight-line
/// code when outside every loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Statically resolved callee (for virtual sites, the declaration
    /// the checker resolved; dispatch may select an override).
    pub callee: FuncId,
    /// Whether the site dispatches virtually (CHA targets apply).
    pub virtual_dispatch: bool,
    /// Source line.
    pub line: u32,
}

/// One loop of a function, in HIR pre-order.
#[derive(Debug, Clone)]
pub struct LoopSummary {
    /// Pre-order ordinal within the function (equals the natural-loop
    /// ordinal in the instrumented program's `LoopInfo`).
    pub ordinal: u32,
    /// Source line of the loop keyword.
    pub line: u32,
    /// Index of the parent loop in [`FunctionSummary::loops`], if nested.
    pub parent: Option<usize>,
    /// Indices of directly nested loops.
    pub children: Vec<usize>,
    /// Iteration-bound classification.
    pub bound: BoundKind,
    /// Symbolic trip count with coefficients, when the recurrence was
    /// solvable (widened to `O(bound class)` otherwise).
    pub trips: TripCount,
    /// The counted loop's induction variable, with initial value and
    /// signed step when provable.
    pub induction: Option<InductionVar>,
    /// Static op counts of this loop's own region (nested loops carry
    /// their own).
    pub ops: OpCounts,
    /// Call sites whose innermost enclosing loop is this one.
    pub calls: Vec<CallSite>,
}

/// Static summary of one function body.
#[derive(Debug, Clone)]
pub struct FunctionSummary {
    /// Function id (index into the program's function table).
    pub func: FuncId,
    /// Qualified name (`Class.method`).
    pub name: String,
    /// Declaration line.
    pub line: u32,
    /// Loops in pre-order.
    pub loops: Vec<LoopSummary>,
    /// Call sites outside every loop.
    pub top_calls: Vec<CallSite>,
    /// Static op counts of the function's code outside every loop.
    pub top_ops: OpCounts,
}

/// Per-slot def/use facts for one function, shared by the bound
/// classifier and the lints.
pub struct Facts<'a> {
    /// Number of parameter slots (`this` included).
    pub n_params: u16,
    /// Every store to each slot (value expression + best-effort line).
    pub stores: Vec<Vec<&'a HExpr>>,
    /// Read count per slot.
    pub reads: Vec<u32>,
    /// Slots bound by `catch` clauses (excluded from write-only lints).
    pub catch_slots: BTreeSet<LocalSlot>,
}

impl<'a> Facts<'a> {
    /// Collects facts for `func`.
    pub fn collect(func: &'a HFunction) -> Facts<'a> {
        let mut facts = Facts {
            n_params: func.n_params,
            stores: vec![Vec::new(); func.n_locals as usize],
            reads: vec![0; func.n_locals as usize],
            catch_slots: BTreeSet::new(),
        };
        facts.walk_stmts(&func.body);
        facts
    }

    fn walk_stmts(&mut self, stmts: &'a [HStmt]) {
        for s in stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_stmt(&mut self, stmt: &'a HStmt) {
        match stmt {
            HStmt::Expr(e) => self.walk_expr(e),
            HStmt::StoreLocal { slot, value } => {
                if let Some(v) = self.stores.get_mut(*slot as usize) {
                    v.push(value);
                }
                self.walk_expr(value);
            }
            HStmt::StoreField { obj, value, .. } => {
                self.walk_expr(obj);
                self.walk_expr(value);
            }
            HStmt::StoreIndex {
                arr, idx, value, ..
            } => {
                self.walk_expr(arr);
                self.walk_expr(idx);
                self.walk_expr(value);
            }
            HStmt::If { cond, then, els } => {
                self.walk_expr(cond);
                self.walk_stmts(then);
                self.walk_stmts(els);
            }
            HStmt::Loop {
                cond, body, update, ..
            } => {
                self.walk_expr(cond);
                self.walk_stmts(body);
                self.walk_stmts(update);
            }
            HStmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.walk_expr(v);
                }
            }
            HStmt::Break | HStmt::Continue => {}
            HStmt::Throw { value, .. } => self.walk_expr(value),
            HStmt::Try {
                body,
                catch_slot,
                handler,
                ..
            } => {
                self.catch_slots.insert(*catch_slot);
                self.walk_stmts(body);
                self.walk_stmts(handler);
            }
            HStmt::Lock { obj, .. } | HStmt::Unlock { obj, .. } => self.walk_expr(obj),
        }
    }

    fn walk_expr(&mut self, expr: &'a HExpr) {
        if let HExpr::Local(s) = expr {
            if let Some(r) = self.reads.get_mut(*s as usize) {
                *r += 1;
            }
        }
        for_each_child(expr, |c| self.walk_expr(c));
    }

    /// Constant-evaluates `expr` (literals, arithmetic, and
    /// single-assignment constant locals) to an interval.
    pub fn const_eval(&self, expr: &HExpr) -> Option<Interval> {
        self.const_eval_rec(expr, 0)
    }

    fn const_eval_rec(&self, expr: &HExpr, depth: u32) -> Option<Interval> {
        if depth > 16 {
            return None;
        }
        match expr {
            HExpr::Int(k) => Some(Interval::constant(*k)),
            HExpr::Unary {
                op: UnOp::Neg,
                expr,
            } => Some(self.const_eval_rec(expr, depth + 1)?.neg()),
            HExpr::Binary { op, lhs, rhs, .. } => {
                let a = self.const_eval_rec(lhs, depth + 1)?;
                let b = self.const_eval_rec(rhs, depth + 1)?;
                match op {
                    BinOp::Add => Some(a.add(b)),
                    BinOp::Sub => Some(a.sub(b)),
                    BinOp::Mul => Some(a.mul(b)),
                    BinOp::Div => Some(a.div(b)),
                    _ => None,
                }
            }
            HExpr::Local(s) => {
                // A parameter is never constant; a local is constant when
                // its single store is.
                if (*s as usize) < self.n_params as usize {
                    return None;
                }
                match self.stores.get(*s as usize).map(|v| v.as_slice()) {
                    Some([single]) => self.const_eval_rec(single, depth + 1),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Whether the local's value derives from `readInput()` (single
    /// store whose value contains a read).
    fn is_input_local(&self, slot: LocalSlot) -> bool {
        match self.stores.get(slot as usize).map(|v| v.as_slice()) {
            Some([single]) => expr_contains(single, &|e| matches!(e, HExpr::ReadInput { .. })),
            _ => false,
        }
    }
}

/// Applies `f` to each direct child expression of `expr`.
pub fn for_each_child<'a>(expr: &'a HExpr, mut f: impl FnMut(&'a HExpr)) {
    match expr {
        HExpr::Int(_)
        | HExpr::Bool(_)
        | HExpr::Null
        | HExpr::Local(_)
        | HExpr::ReadInput { .. } => {}
        HExpr::GetField { obj, .. } => f(obj),
        HExpr::GetIndex { arr, idx, .. } => {
            f(arr);
            f(idx);
        }
        HExpr::ArrayLen { arr, .. } => f(arr),
        HExpr::CallStatic { args, .. }
        | HExpr::CallVirtual { args, .. }
        | HExpr::CallDirect { args, .. }
        | HExpr::NewObject { args, .. }
        | HExpr::Spawn { args, .. } => {
            for a in args {
                f(a);
            }
        }
        HExpr::Join { handle, .. } => f(handle),
        HExpr::NewArray { len, .. } => f(len),
        HExpr::ArrayLit { elems, .. } => {
            for e in elems {
                f(e);
            }
        }
        HExpr::Cast { expr, .. } | HExpr::InstanceOf { expr, .. } => f(expr),
        HExpr::Unary { expr, .. } => f(expr),
        HExpr::Binary { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        HExpr::Print { arg, .. } => f(arg),
    }
}

/// Whether any subexpression of `expr` satisfies `pred`.
pub fn expr_contains(expr: &HExpr, pred: &dyn Fn(&HExpr) -> bool) -> bool {
    if pred(expr) {
        return true;
    }
    let mut found = false;
    for_each_child(expr, |c| {
        if !found && expr_contains(c, pred) {
            found = true;
        }
    });
    found
}

/// Best-effort source line of an expression (the HIR only records lines
/// on nodes that can trap or call).
pub fn expr_line(expr: &HExpr) -> Option<u32> {
    match expr {
        HExpr::GetField { line, .. }
        | HExpr::GetIndex { line, .. }
        | HExpr::ArrayLen { line, .. }
        | HExpr::CallStatic { line, .. }
        | HExpr::CallVirtual { line, .. }
        | HExpr::CallDirect { line, .. }
        | HExpr::NewObject { line, .. }
        | HExpr::NewArray { line, .. }
        | HExpr::ArrayLit { line, .. }
        | HExpr::Cast { line, .. }
        | HExpr::InstanceOf { line, .. }
        | HExpr::Binary { line, .. }
        | HExpr::ReadInput { line }
        | HExpr::Print { line, .. }
        | HExpr::Spawn { line, .. }
        | HExpr::Join { line, .. } => Some(*line),
        HExpr::Unary { expr, .. } => expr_line(expr),
        HExpr::Int(_) | HExpr::Bool(_) | HExpr::Null | HExpr::Local(_) => None,
    }
}

/// Best-effort source line of a statement.
pub fn stmt_line(stmt: &HStmt) -> Option<u32> {
    match stmt {
        HStmt::Expr(e) => expr_line(e),
        HStmt::StoreLocal { value, .. } => expr_line(value),
        HStmt::StoreField { line, .. }
        | HStmt::StoreIndex { line, .. }
        | HStmt::Loop { line, .. }
        | HStmt::Return { line, .. }
        | HStmt::Throw { line, .. }
        | HStmt::Lock { line, .. }
        | HStmt::Unlock { line, .. } => Some(*line),
        HStmt::If { cond, then, els } => expr_line(cond)
            .or_else(|| then.iter().find_map(stmt_line))
            .or_else(|| els.iter().find_map(stmt_line)),
        HStmt::Break | HStmt::Continue => None,
        HStmt::Try { body, handler, .. } => body
            .iter()
            .find_map(stmt_line)
            .or_else(|| handler.iter().find_map(stmt_line)),
    }
}

/// Splits a condition into its `&&` conjuncts.
fn conjuncts(cond: &HExpr) -> Vec<&HExpr> {
    let mut out = Vec::new();
    fn rec<'a>(e: &'a HExpr, out: &mut Vec<&'a HExpr>) {
        match e {
            HExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
                ..
            } => {
                rec(lhs, out);
                rec(rhs, out);
            }
            _ => out.push(e),
        }
    }
    rec(cond, &mut out);
    out
}

/// Everything a loop's body + update can observably change, plus
/// control-flow escape information, gathered in one walk.
#[derive(Debug, Default)]
struct LoopEffects<'a> {
    stored_locals: BTreeSet<LocalSlot>,
    /// Every in-loop store, with its value expression (progress analysis
    /// must see the loop's own updates, not stores elsewhere in the
    /// function).
    local_stores: Vec<(LocalSlot, &'a HExpr)>,
    stored_fields: BTreeSet<FieldId>,
    has_store_index: bool,
    has_call: bool,
    /// `break` at this loop's own nesting level.
    direct_break: bool,
    has_return: bool,
    has_throw: bool,
}

impl<'a> LoopEffects<'a> {
    fn gather(body: &'a [HStmt], update: &'a [HStmt]) -> LoopEffects<'a> {
        let mut fx = LoopEffects::default();
        fx.stmts(body, 0);
        fx.stmts(update, 0);
        fx
    }

    fn stmts(&mut self, stmts: &'a [HStmt], depth: u32) {
        for s in stmts {
            self.stmt(s, depth);
        }
    }

    fn stmt(&mut self, stmt: &'a HStmt, depth: u32) {
        match stmt {
            HStmt::Expr(e) => self.expr(e),
            HStmt::StoreLocal { slot, value } => {
                self.stored_locals.insert(*slot);
                self.local_stores.push((*slot, value));
                self.expr(value);
            }
            HStmt::StoreField {
                obj, field, value, ..
            } => {
                self.stored_fields.insert(*field);
                self.expr(obj);
                self.expr(value);
            }
            HStmt::StoreIndex {
                arr, idx, value, ..
            } => {
                self.has_store_index = true;
                self.expr(arr);
                self.expr(idx);
                self.expr(value);
            }
            HStmt::If { cond, then, els } => {
                self.expr(cond);
                self.stmts(then, depth);
                self.stmts(els, depth);
            }
            HStmt::Loop {
                cond, body, update, ..
            } => {
                self.expr(cond);
                self.stmts(body, depth + 1);
                self.stmts(update, depth + 1);
            }
            HStmt::Return { value, .. } => {
                self.has_return = true;
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            HStmt::Break => {
                if depth == 0 {
                    self.direct_break = true;
                }
            }
            HStmt::Continue => {}
            HStmt::Throw { value, .. } => {
                self.has_throw = true;
                self.expr(value);
            }
            HStmt::Try { body, handler, .. } => {
                self.stmts(body, depth);
                self.stmts(handler, depth);
            }
            HStmt::Lock { obj, .. } | HStmt::Unlock { obj, .. } => self.expr(obj),
        }
    }

    fn expr(&mut self, expr: &'a HExpr) {
        if matches!(
            expr,
            HExpr::CallStatic { .. }
                | HExpr::CallVirtual { .. }
                | HExpr::CallDirect { .. }
                | HExpr::NewObject { .. }
                | HExpr::Spawn { .. }
                | HExpr::Join { .. }
        ) {
            self.has_call = true;
        }
        for_each_child(expr, |c| self.expr(c));
    }
}

/// What a loop condition reads.
#[derive(Debug, Default)]
struct CondReads {
    locals: BTreeSet<LocalSlot>,
    fields: BTreeSet<FieldId>,
    has_array_access: bool,
    has_call_or_input: bool,
}

impl CondReads {
    fn gather(cond: &HExpr) -> CondReads {
        let mut r = CondReads::default();
        r.expr(cond);
        r
    }

    fn expr(&mut self, expr: &HExpr) {
        match expr {
            HExpr::Local(s) => {
                self.locals.insert(*s);
            }
            HExpr::GetField { field, .. } => {
                self.fields.insert(*field);
            }
            HExpr::GetIndex { .. } | HExpr::ArrayLen { .. } => self.has_array_access = true,
            HExpr::CallStatic { .. }
            | HExpr::CallVirtual { .. }
            | HExpr::CallDirect { .. }
            | HExpr::NewObject { .. }
            | HExpr::ReadInput { .. }
            | HExpr::Spawn { .. }
            | HExpr::Join { .. } => self.has_call_or_input = true,
            _ => {}
        }
        for_each_child(expr, |c| self.expr(c));
    }
}

struct Collector<'a> {
    facts: &'a Facts<'a>,
    func: &'a HFunction,
    loops: Vec<LoopSummary>,
    stack: Vec<usize>,
    top_calls: Vec<CallSite>,
    top_ops: OpCounts,
    diagnostics: Vec<Diagnostic>,
    /// The store to each slot that reaches the current walk position on
    /// the straight-line path — `None` when no single store dominates
    /// (never stored, stored under a branch, or stale after a loop that
    /// rewrites the slot). Needed because the compiler reuses local
    /// slots: sequential `for (int i = ...)` loops share one slot, so
    /// the per-function store list alone cannot name *this* loop's init.
    reaching: Vec<Option<&'a HExpr>>,
}

/// Everything one conjunct of a loop condition tells us about the trip
/// count: the class-level bound, the symbolic trip count, and the
/// induction variable the loop progresses.
struct ConjunctShape {
    kind: BoundKind,
    trips: TripCount,
    induction: Option<InductionVar>,
}

impl ConjunctShape {
    fn unknown() -> ConjunctShape {
        ConjunctShape {
            kind: BoundKind::Unknown,
            trips: TripCount::widened(ComplexityClass::Unknown),
            induction: None,
        }
    }
}

/// An affine form `n·N + k (+ coeff·v)` over the input-size parameter
/// `N` and at most one enclosing induction variable `v` — the value
/// domain of the trip-count solver.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LinForm {
    n: f64,
    k: f64,
    outer: Option<(LocalSlot, f64)>,
}

impl LinForm {
    fn constant(k: f64) -> LinForm {
        LinForm {
            n: 0.0,
            k,
            outer: None,
        }
    }

    fn input() -> LinForm {
        LinForm {
            n: 1.0,
            k: 0.0,
            outer: None,
        }
    }

    fn is_scalar(&self) -> bool {
        self.n == 0.0 && self.outer.is_none()
    }

    fn neg(self) -> LinForm {
        self.scale(-1.0)
    }

    fn scale(self, s: f64) -> LinForm {
        LinForm {
            n: self.n * s,
            k: self.k * s,
            outer: self.outer.map(|(slot, c)| (slot, c * s)),
        }
    }

    /// `self + other`, failing when two *different* enclosing variables
    /// would be needed.
    fn add(self, other: LinForm) -> Option<LinForm> {
        let outer = match (self.outer, other.outer) {
            (None, o) | (o, None) => o,
            (Some((a, ca)), Some((b, cb))) if a == b => Some((a, ca + cb)),
            _ => return None,
        };
        Some(LinForm {
            n: self.n + other.n,
            k: self.k + other.k,
            outer: outer.filter(|(_, c)| c.abs() > 1e-9),
        })
    }
}

/// Builds the summary (and any loop-shaped diagnostics) for one function.
pub fn summarize_function<'a>(
    func: &'a HFunction,
    facts: &'a Facts<'a>,
) -> (FunctionSummary, Vec<Diagnostic>) {
    let mut c = Collector {
        facts,
        func,
        loops: Vec::new(),
        stack: Vec::new(),
        top_calls: Vec::new(),
        top_ops: OpCounts::default(),
        diagnostics: Vec::new(),
        reaching: vec![None; func.n_locals as usize],
    };
    c.stmts(&func.body);
    (
        FunctionSummary {
            func: func.id,
            name: func.name.clone(),
            line: func.line,
            loops: c.loops,
            top_calls: c.top_calls,
            top_ops: c.top_ops,
        },
        c.diagnostics,
    )
}

impl<'a> Collector<'a> {
    fn stmts(&mut self, stmts: &'a [HStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &'a HStmt) {
        match stmt {
            HStmt::Expr(e) => self.expr(e),
            HStmt::StoreLocal { slot, value } => {
                self.expr(value);
                if let Some(r) = self.reaching.get_mut(*slot as usize) {
                    *r = Some(value);
                }
            }
            HStmt::StoreField { obj, value, .. } => {
                self.ops_mut().field_writes += 1;
                self.expr(obj);
                self.expr(value);
            }
            HStmt::StoreIndex {
                arr, idx, value, ..
            } => {
                self.ops_mut().array_writes += 1;
                self.expr(arr);
                self.expr(idx);
                self.expr(value);
            }
            HStmt::If { cond, then, els } => {
                self.expr(cond);
                self.stmts(then);
                self.stmts(els);
                // A store under either branch is conditional for the
                // code after the join.
                self.invalidate_reaching(&LoopEffects::gather(then, els).stored_locals);
            }
            HStmt::Loop {
                cond,
                body,
                update,
                line,
            } => {
                let ordinal = self.loops.len();
                let parent = self.stack.last().copied();
                self.loops.push(LoopSummary {
                    ordinal: ordinal as u32,
                    line: *line,
                    parent,
                    children: Vec::new(),
                    bound: BoundKind::Unknown,
                    trips: TripCount::widened(ComplexityClass::Unknown),
                    induction: None,
                    ops: OpCounts::default(),
                    calls: Vec::new(),
                });
                if let Some(p) = parent {
                    self.loops[p].children.push(ordinal);
                }
                let effects = LoopEffects::gather(body, update);
                let shape = self.classify(cond, &effects);
                self.loops[ordinal].bound = shape.kind;
                self.loops[ordinal].trips = shape.trips;
                self.loops[ordinal].induction = shape.induction;
                self.lint_no_progress(cond, &effects, *line);

                self.stack.push(ordinal);
                self.expr(cond);
                self.stmts(body);
                self.stmts(update);
                self.stack.pop();
                // After the loop, a slot it stores has run through an
                // unknown number of updates; no single store reaches.
                self.invalidate_reaching(&effects.stored_locals);
            }
            HStmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            HStmt::Break | HStmt::Continue => {}
            HStmt::Throw { value, .. } => self.expr(value),
            HStmt::Try { body, handler, .. } => {
                self.stmts(body);
                self.stmts(handler);
                self.invalidate_reaching(&LoopEffects::gather(body, handler).stored_locals);
            }
            HStmt::Lock { obj, .. } | HStmt::Unlock { obj, .. } => self.expr(obj),
        }
    }

    /// Forgets the reaching store of every slot in `slots` (the walk
    /// passed a join where those stores became conditional or stale).
    fn invalidate_reaching(&mut self, slots: &BTreeSet<LocalSlot>) {
        for s in slots {
            if let Some(r) = self.reaching.get_mut(*s as usize) {
                *r = None;
            }
        }
    }

    /// The op-count region of the current position: the innermost
    /// enclosing loop, or the function's straight-line code.
    fn ops_mut(&mut self) -> &mut OpCounts {
        match self.stack.last() {
            Some(&l) => &mut self.loops[l].ops,
            None => &mut self.top_ops,
        }
    }

    fn expr(&mut self, expr: &'a HExpr) {
        match expr {
            HExpr::GetField { .. } => self.ops_mut().field_reads += 1,
            HExpr::GetIndex { .. } => self.ops_mut().array_reads += 1,
            HExpr::CallVirtual { .. } => self.ops_mut().virtual_calls += 1,
            HExpr::NewObject { .. } | HExpr::NewArray { .. } | HExpr::ArrayLit { .. } => {
                self.ops_mut().allocs += 1
            }
            _ => {}
        }
        let site = match expr {
            HExpr::CallStatic { func, line, .. } | HExpr::CallDirect { func, line, .. } => {
                Some(CallSite {
                    callee: *func,
                    virtual_dispatch: false,
                    line: *line,
                })
            }
            HExpr::CallVirtual { func, line, .. } => Some(CallSite {
                callee: *func,
                virtual_dispatch: true,
                line: *line,
            }),
            HExpr::NewObject {
                ctor: Some(f),
                line,
                ..
            } => Some(CallSite {
                callee: *f,
                virtual_dispatch: false,
                line: *line,
            }),
            _ => None,
        };
        if let Some(site) = site {
            match self.stack.last() {
                Some(&l) => self.loops[l].calls.push(site),
                None => self.top_calls.push(site),
            }
        }
        for_each_child(expr, |c| self.expr(c));
    }

    /// Classifies the trip count of a loop with condition `cond` and
    /// effects `fx`, solving the trip-count recurrence symbolically
    /// where the shapes allow.
    fn classify(&self, cond: &HExpr, fx: &LoopEffects) -> ConjunctShape {
        let mut best = ConjunctShape::unknown();
        for c in conjuncts(cond) {
            let shape = self.classify_conjunct(c, fx);
            // The tightest conjunct bounds the loop: `i < n && x != null`
            // iterates at most min(n, |list|) times.
            if shape.kind.rank() < best.kind.rank() {
                best = shape;
            }
        }
        best
    }

    fn classify_conjunct(&self, c: &HExpr, fx: &LoopEffects) -> ConjunctShape {
        let HExpr::Binary { op, lhs, rhs, .. } = c else {
            return ConjunctShape::unknown();
        };
        match op {
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Ne => {}
            _ => return ConjunctShape::unknown(),
        }

        // Structure walk: `x != null` (either side).
        if *op == BinOp::Ne {
            for (side, _other) in [(lhs, rhs), (rhs, lhs)] {
                if matches!(_other.as_ref(), HExpr::Null) {
                    if let Some(k) = self.classify_null_chase(side, fx) {
                        // A full walk visits each of the structure's
                        // nodes exactly once: 1·N trips.
                        return ConjunctShape {
                            kind: k,
                            trips: TripCount::exact(CostFn::from_term(1, false, 1.0)),
                            induction: None,
                        };
                    }
                    return ConjunctShape::unknown();
                }
            }
        }

        // Counted loop: one side is a progressing induction local.
        for (ind, bound) in [(lhs, rhs), (rhs, lhs)] {
            let HExpr::Local(slot) = ind.as_ref() else {
                continue;
            };
            if !fx.stored_locals.contains(slot) {
                continue;
            }
            let Some(progress) = self.progress_of(*slot, fx) else {
                continue;
            };
            // The bound must be loop-invariant.
            let bound_kind = self.classify_bound_expr(bound, fx);
            if bound_kind == BoundKind::Unknown {
                return ConjunctShape::unknown();
            }
            let ind_on_lhs = std::ptr::eq(ind.as_ref(), lhs.as_ref());
            return match progress {
                Progress::Additive => {
                    // A countdown's trip count is set by the initial
                    // value, a count-up's by the bound; take the coarser
                    // of both rather than guessing the direction.
                    let kind = bound_kind.max(self.classify_init(*slot, fx));
                    self.additive_shape(*slot, *op, ind_on_lhs, bound, kind)
                }
                Progress::Multiplicative => self.multiplicative_shape(*slot, bound),
            };
        }
        ConjunctShape::unknown()
    }

    /// Solves an additive counted loop's trip count:
    /// `trips = (bound − init) / step` (+1 for inclusive comparisons),
    /// an affine form over `N` and at most one enclosing induction
    /// variable. Unsolvable pieces widen to the class the `BoundKind`
    /// already proved.
    fn additive_shape(
        &self,
        slot: LocalSlot,
        op: BinOp,
        ind_on_lhs: bool,
        bound: &HExpr,
        kind: BoundKind,
    ) -> ConjunctShape {
        let enclosing = self.enclosing_induction_slots();
        let step = self.additive_step(slot);
        let init_form = self.init_form(slot, &enclosing);
        let init_const = init_form.filter(|f| f.is_scalar()).map(|f| f.k);
        let induction = Some(InductionVar {
            slot,
            init: init_const,
            step,
        });
        let widened = ConjunctShape {
            kind,
            trips: TripCount::widened(kind.class()),
            induction,
        };
        let (Some(step), Some(init_form)) = (step, init_form) else {
            return widened;
        };
        let Some(bound_form) = self.linear_form(bound, &enclosing, 0) else {
            return widened;
        };
        let Some(diff) = bound_form.add(init_form.neg()) else {
            return widened;
        };
        let mut trips = diff.scale(1.0 / step);
        // Normalize the comparison so the induction variable reads on
        // the left: `n > i` means `i < n`.
        let op = if ind_on_lhs {
            op
        } else {
            match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            }
        };
        if matches!(op, BinOp::Le | BinOp::Ge) {
            trips.k += 1.0;
        }
        if !trips.n.is_finite() || !trips.k.is_finite() || trips.n < 0.0 {
            // A negative N-coefficient means the loop shrinks with the
            // input (or the direction analysis failed): no closed form.
            return widened;
        }
        if trips.is_scalar() {
            // Pure constant: round up for non-dividing steps, clamp a
            // never-entered loop to zero. `!=` conditions demand exact
            // division; a negative remainder-style count is wrap-around
            // territory and stays widened.
            if op == BinOp::Ne && (trips.k < 0.0 || trips.k.fract().abs() > 1e-9) {
                return widened;
            }
            trips.k = trips.k.ceil().max(0.0);
        }
        let fixed = CostFn::from_term(1, false, trips.n).add(&CostFn::constant(trips.k));
        ConjunctShape {
            kind,
            trips: TripCount {
                fixed,
                outer: trips.outer,
            },
            induction,
        }
    }

    /// Solves a multiplicative counted loop: `log₂(bound) / log₂(step)`
    /// trips, so an exact `1/log₂(step)` coefficient on the `log n` term
    /// when the bound is linear in the input (the additive constant
    /// `log₂` of the bound's own coefficient stays an `O(1)` tail).
    fn multiplicative_shape(&self, slot: LocalSlot, bound: &HExpr) -> ConjunctShape {
        let enclosing = self.enclosing_induction_slots();
        let induction = Some(InductionVar {
            slot,
            init: self
                .init_form(slot, &enclosing)
                .filter(|f| f.is_scalar())
                .map(|f| f.k),
            step: None,
        });
        let factor = self.multiplicative_factor(slot);
        let bound_form = self.linear_form(bound, &enclosing, 0);
        let trips = match (factor, bound_form) {
            (Some(k), Some(bf)) if bf.n > 0.0 && bf.outer.is_none() => TripCount::exact(
                CostFn::from_term(0, true, 1.0 / k.log2())
                    .add(&CostFn::widened(ComplexityClass::Constant)),
            ),
            (Some(_), Some(bf)) if bf.is_scalar() => {
                // Constant bound: a constant number of doublings.
                TripCount::widened(ComplexityClass::Constant)
            }
            _ => TripCount::widened(ComplexityClass::Logarithmic),
        };
        ConjunctShape {
            kind: BoundKind::Logarithmic,
            trips,
            induction,
        }
    }

    /// Induction slots of every loop enclosing the one being classified
    /// (the classification runs before the loop is pushed, so the stack
    /// holds exactly the enclosing loops, already classified).
    fn enclosing_induction_slots(&self) -> BTreeSet<LocalSlot> {
        self.stack
            .iter()
            .filter_map(|&i| self.loops[i].induction.map(|iv| iv.slot))
            .collect()
    }

    /// The signed additive step shared by every progress store to
    /// `slot`, when they agree.
    fn additive_step(&self, slot: LocalSlot) -> Option<f64> {
        let stores = self.facts.stores.get(slot as usize)?;
        let mut step: Option<f64> = None;
        for value in stores {
            if self.progress_shape(slot, value).is_none() {
                continue;
            }
            let HExpr::Binary { op, lhs, rhs, .. } = value else {
                return None;
            };
            let (self_on_lhs, step_expr) = if matches!(lhs.as_ref(), HExpr::Local(s) if *s == slot)
            {
                (true, rhs)
            } else {
                (false, lhs)
            };
            let k = self.facts.const_eval(step_expr)?.as_constant()? as f64;
            let s = match op {
                BinOp::Add => k,
                BinOp::Sub if self_on_lhs => -k,
                _ => return None,
            };
            match step {
                None => step = Some(s),
                Some(prev) if prev == s => {}
                Some(_) => return None,
            }
        }
        step
    }

    /// The multiplicative factor (absolute value) shared by every
    /// progress store to `slot`, when they agree.
    fn multiplicative_factor(&self, slot: LocalSlot) -> Option<f64> {
        let stores = self.facts.stores.get(slot as usize)?;
        let mut factor: Option<f64> = None;
        for value in stores {
            if self.progress_shape(slot, value).is_none() {
                continue;
            }
            let HExpr::Binary { op, lhs, rhs, .. } = value else {
                return None;
            };
            let step_expr = if matches!(lhs.as_ref(), HExpr::Local(s) if *s == slot) {
                rhs
            } else {
                lhs
            };
            let k = (self.facts.const_eval(step_expr)?.as_constant()? as f64).abs();
            if !matches!(op, BinOp::Mul | BinOp::Div) || k < 2.0 {
                return None;
            }
            match factor {
                None => factor = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => return None,
            }
        }
        factor
    }

    /// The induction variable's initial value as an affine form: the
    /// single non-progress store when there is one, the size parameter
    /// itself when the slot is a never-reassigned parameter.
    fn init_form(&self, slot: LocalSlot, enclosing: &BTreeSet<LocalSlot>) -> Option<LinForm> {
        let stores = self.facts.stores.get(slot as usize)?;
        let inits: Vec<&&HExpr> = stores
            .iter()
            .filter(|v| self.progress_shape(slot, v).is_none())
            .collect();
        match inits.as_slice() {
            [] if (slot as usize) < self.facts.n_params as usize => {
                // A parameter arrives initialized from the caller; we
                // identify integer size parameters with the measured
                // size axis N (documented assumption).
                Some(LinForm::input())
            }
            [single] => self.linear_form(single, enclosing, 0),
            // Several candidate inits: the compiler reuses slots, so
            // sequential loops share one induction slot. Use the store
            // that dominates this loop's entry on the straight-line
            // path, when there is one.
            _ => {
                let value = self.reaching.get(slot as usize).copied().flatten()?;
                if self.progress_shape(slot, value).is_some() {
                    return None;
                }
                self.linear_form(value, enclosing, 0)
            }
        }
    }

    /// Evaluates a loop-invariant expression to an affine form over the
    /// input-size parameter `N` and at most one enclosing induction
    /// variable. `None` means no provable coefficients (heap reads,
    /// multi-store locals, nonlinear arithmetic) — callers widen.
    fn linear_form(
        &self,
        e: &HExpr,
        enclosing: &BTreeSet<LocalSlot>,
        depth: u32,
    ) -> Option<LinForm> {
        if depth > 16 {
            return None;
        }
        match e {
            HExpr::Int(k) => Some(LinForm::constant(*k as f64)),
            // A value read straight from input, or a structure length:
            // the measured size axis itself.
            HExpr::ReadInput { .. } | HExpr::ArrayLen { .. } => Some(LinForm::input()),
            HExpr::Unary {
                op: UnOp::Neg,
                expr,
            } => Some(self.linear_form(expr, enclosing, depth + 1)?.neg()),
            HExpr::Binary { op, lhs, rhs, .. } => {
                let a = self.linear_form(lhs, enclosing, depth + 1)?;
                let b = self.linear_form(rhs, enclosing, depth + 1)?;
                match op {
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.add(b.neg()),
                    BinOp::Mul if a.is_scalar() => Some(b.scale(a.k)),
                    BinOp::Mul if b.is_scalar() => Some(a.scale(b.k)),
                    BinOp::Div if b.is_scalar() && b.k != 0.0 => Some(a.scale(1.0 / b.k)),
                    _ => None,
                }
            }
            HExpr::Local(s) => {
                if let Some(k) = self.facts.const_eval(e).and_then(|iv| iv.as_constant()) {
                    return Some(LinForm::constant(k as f64));
                }
                if enclosing.contains(s) {
                    return Some(LinForm {
                        n: 0.0,
                        k: 0.0,
                        outer: Some((*s, 1.0)),
                    });
                }
                if (*s as usize) < self.facts.n_params as usize {
                    // Size parameter ≡ N (documented assumption).
                    return Some(LinForm::input());
                }
                match self.facts.stores.get(*s as usize).map(|v| v.as_slice()) {
                    Some([single]) => self.linear_form(single, enclosing, depth + 1),
                    _ => None,
                }
            }
            // Heap reads: the magnitude is unprovable without a heap
            // shape analysis — widen.
            _ => None,
        }
    }

    /// `x != null` walks: returns a classification when the loop
    /// provably advances the tested reference.
    fn classify_null_chase(&self, tested: &HExpr, fx: &LoopEffects) -> Option<BoundKind> {
        match tested {
            // `while (x != null)` with `x = <something>.field` in the loop.
            HExpr::Local(slot) if fx.stored_locals.contains(slot) => {
                let advances = self.facts.stores.get(*slot as usize).is_some_and(|stores| {
                    stores
                        .iter()
                        .any(|v| expr_contains(v, &|e| matches!(e, HExpr::GetField { .. })))
                });
                advances.then_some(BoundKind::LinearInputLength)
            }
            // `while (x.f != null)` with a store to `f` in the loop.
            HExpr::GetField { field, .. } if fx.stored_fields.contains(field) => {
                Some(BoundKind::LinearInputLength)
            }
            _ => None,
        }
    }

    /// The progress shape of every in-loop store to `slot`, if all
    /// stores are monotonic self-updates with constant step.
    fn progress_of(&self, slot: LocalSlot, _fx: &LoopEffects) -> Option<Progress> {
        let stores = self.facts.stores.get(slot as usize)?;
        let mut shape: Option<Progress> = None;
        let mut saw_update = false;
        for value in stores {
            let Some(p) = self.progress_shape(slot, value) else {
                // A non-progress store (the initializer) is fine; it
                // lives outside the loop for every loop the checker can
                // build (`for` initializers precede the `Loop` node).
                continue;
            };
            saw_update = true;
            match shape {
                None => shape = Some(p),
                Some(prev) if prev == p => {}
                // Mixed additive/multiplicative updates: give up.
                Some(_) => return None,
            }
        }
        if saw_update {
            shape
        } else {
            None
        }
    }

    fn progress_shape(&self, slot: LocalSlot, value: &HExpr) -> Option<Progress> {
        let HExpr::Binary { op, lhs, rhs, .. } = value else {
            return None;
        };
        let (self_side, step) = if matches!(lhs.as_ref(), HExpr::Local(s) if *s == slot) {
            (true, rhs)
        } else if matches!(rhs.as_ref(), HExpr::Local(s) if *s == slot) {
            (false, lhs)
        } else {
            return None;
        };
        let step = self.facts.const_eval(step)?.as_constant()?;
        match op {
            BinOp::Add if step != 0 => Some(Progress::Additive),
            // `i = i - c` only counts with the local on the left.
            BinOp::Sub if self_side && step != 0 => Some(Progress::Additive),
            BinOp::Mul if step.abs() >= 2 => Some(Progress::Multiplicative),
            BinOp::Div if self_side && step.abs() >= 2 => Some(Progress::Multiplicative),
            _ => None,
        }
    }

    /// Classifies the loop-invariant bound expression.
    fn classify_bound_expr(&self, bound: &HExpr, fx: &LoopEffects) -> BoundKind {
        // Constant wins outright.
        if self.facts.const_eval(bound).is_some() {
            return BoundKind::Constant;
        }
        // The bound must not change while the loop runs: reject bounds
        // reading locals the loop stores, fields the loop (or a callee)
        // may rewrite, or values re-read each iteration.
        let reads = CondReads::gather(bound);
        if reads.has_call_or_input
            || reads.locals.iter().any(|s| fx.stored_locals.contains(s))
            || reads.fields.iter().any(|f| fx.stored_fields.contains(f))
        {
            return BoundKind::Unknown;
        }
        let mut kind = BoundKind::Constant;
        let mut classify = |e: &HExpr| match e {
            HExpr::ArrayLen { .. } => kind = kind.max(BoundKind::LinearInputLength),
            HExpr::Local(s) => {
                if self.facts.is_input_local(*s) {
                    kind = kind.max(BoundKind::LinearInputLength);
                } else if self.facts.const_eval(&HExpr::Local(*s)).is_none() {
                    kind = kind.max(BoundKind::LinearLocal);
                }
            }
            HExpr::GetField { .. } | HExpr::GetIndex { .. } => {
                kind = kind.max(BoundKind::LinearLocal)
            }
            _ => {}
        };
        walk_expr_tree(bound, &mut classify);
        kind
    }

    /// Classifies the initial value of an induction local: every store
    /// that is not a self-update is a (re)initialization.
    fn classify_init(&self, slot: LocalSlot, fx: &LoopEffects) -> BoundKind {
        let Some(stores) = self.facts.stores.get(slot as usize) else {
            return BoundKind::Unknown;
        };
        let mut kind = BoundKind::Constant;
        for value in stores {
            if self.progress_shape(slot, value).is_some() {
                continue;
            }
            kind = kind.max(self.classify_bound_expr(value, fx));
        }
        if (slot as usize) < self.facts.n_params as usize {
            // A parameter arrives initialized from the caller.
            kind = kind.max(BoundKind::LinearLocal);
        }
        kind
    }

    /// Lint AP001: the loop has no reachable exit.
    fn lint_no_progress(&mut self, cond: &HExpr, fx: &LoopEffects, line: u32) {
        if fx.direct_break || fx.has_return || fx.has_throw {
            return;
        }
        match cond {
            // `while (false)` never runs — dead, but not a hang.
            HExpr::Bool(false) => return,
            // `while (true)` can only leave via break/return/throw,
            // which we just ruled out.
            HExpr::Bool(true) => {}
            _ => {
                let reads = CondReads::gather(cond);
                // Calls and reads can produce fresh values each test.
                if reads.has_call_or_input {
                    return;
                }
                // A stored condition local can flip the condition.
                if reads.locals.iter().any(|s| fx.stored_locals.contains(s)) {
                    return;
                }
                // Heap reads can change if the loop writes the same
                // field, writes any array cell, or calls out.
                let heap_read = !reads.fields.is_empty() || reads.has_array_access;
                if heap_read
                    && (fx.has_call
                        || fx.has_store_index
                        || reads.fields.iter().any(|f| fx.stored_fields.contains(f)))
                {
                    return;
                }
                // A condition reading nothing mutable and a body storing
                // none of it: the condition's value is frozen.
            }
        }
        self.diagnostics.push(Diagnostic::new(
            Code::NoProgress,
            &self.func.name,
            line,
            "loop makes no progress toward its exit: the condition reads no value \
             the loop body can change, and the body has no break, return, or throw"
                .to_string(),
        ));
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Progress {
    Additive,
    Multiplicative,
}

/// Pre-order walk applying `f` to every node of an expression tree.
fn walk_expr_tree(expr: &HExpr, f: &mut impl FnMut(&HExpr)) {
    f(expr);
    for_each_child(expr, |c| walk_expr_tree(c, f));
}

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_vm::parser::parse;
    use algoprof_vm::typeck::check;

    fn summaries(src: &str) -> Vec<(FunctionSummary, Vec<Diagnostic>)> {
        let typed = check(&parse(src).expect("parses")).expect("checks");
        typed
            .bodies
            .iter()
            .map(|b| {
                let facts = Facts::collect(b);
                summarize_function(b, &facts)
            })
            .collect()
    }

    fn main_loops(src: &str) -> Vec<LoopSummary> {
        summaries(src)
            .into_iter()
            .find(|(s, _)| s.name == "Main.main")
            .expect("Main.main")
            .0
            .loops
    }

    #[test]
    fn constant_counted_loop() {
        let loops = main_loops(
            r#"class Main { static int main() {
                int s = 0;
                for (int i = 0; i < 10; i = i + 1) { s = s + i; }
                return s;
            } }"#,
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].bound, BoundKind::Constant);
    }

    #[test]
    fn constant_via_const_local() {
        let loops = main_loops(
            r#"class Main { static int main() {
                int n = 4 * 8;
                int s = 0;
                for (int i = 0; i < n; i = i + 1) { s = s + 1; }
                return s;
            } }"#,
        );
        assert_eq!(loops[0].bound, BoundKind::Constant);
    }

    #[test]
    fn input_bounded_loop_is_linear_input() {
        let loops = main_loops(
            r#"class Main { static int main() {
                int n = readInput();
                int s = 0;
                for (int i = 0; i < n; i = i + 1) { s = s + 1; }
                return s;
            } }"#,
        );
        assert_eq!(loops[0].bound, BoundKind::LinearInputLength);
    }

    #[test]
    fn array_length_bound_is_linear_input() {
        let loops = main_loops(
            r#"class Main { static int main() {
                int[] a = new int[7];
                int s = 0;
                for (int i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            } }"#,
        );
        assert_eq!(loops[0].bound, BoundKind::LinearInputLength);
    }

    #[test]
    fn countdown_from_local_is_linear_local() {
        let src = r#"class Main {
            static int work(int n) {
                int s = 0;
                for (int i = n; i > 0; i = i - 1) { s = s + 1; }
                return s;
            }
            static int main() { return Main.work(5); }
        }"#;
        let all = summaries(src);
        let (work, _) = all.iter().find(|(s, _)| s.name == "Main.work").unwrap();
        assert_eq!(work.loops[0].bound, BoundKind::LinearLocal);
    }

    #[test]
    fn doubling_loop_is_logarithmic() {
        let loops = main_loops(
            r#"class Main { static int main() {
                int n = readInput();
                int s = 0;
                for (int i = 1; i < n; i = i * 2) { s = s + 1; }
                return s;
            } }"#,
        );
        assert_eq!(loops[0].bound, BoundKind::Logarithmic);
    }

    #[test]
    fn unrecognized_progress_is_unknown() {
        let loops = main_loops(
            r#"class Main { static int main() {
                int n = readInput();
                int i = 0;
                while (i < n) { i = n - i; }
                return i;
            } }"#,
        );
        assert_eq!(loops[0].bound, BoundKind::Unknown);
    }

    #[test]
    fn loop_tree_and_calls_attribution() {
        let src = r#"class Main {
            static int leaf() { return 1; }
            static int main() {
                int s = Main.leaf();
                for (int i = 0; i < 3; i = i + 1) {
                    for (int j = 0; j < 3; j = j + 1) { s = s + Main.leaf(); }
                }
                return s;
            }
        }"#;
        let all = summaries(src);
        let (main, _) = all.iter().find(|(s, _)| s.name == "Main.main").unwrap();
        assert_eq!(main.loops.len(), 2);
        assert_eq!(main.loops[1].parent, Some(0));
        assert_eq!(main.loops[0].children, vec![1]);
        assert_eq!(main.top_calls.len(), 1);
        assert!(main.loops[0].calls.is_empty());
        assert_eq!(main.loops[1].calls.len(), 1);
    }

    #[test]
    fn no_progress_fires_on_frozen_condition() {
        let src = r#"class Main { static int main() {
            int i = 0;
            int s = 0;
            while (i < 10) { s = s + 1; }
            return s;
        } }"#;
        let all = summaries(src);
        let (_, diags) = all.iter().find(|(s, _)| s.name == "Main.main").unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::NoProgress);
    }

    #[test]
    fn no_progress_spares_break_and_updates() {
        let src = r#"class Main { static int main() {
            int i = 0;
            while (true) { i = i + 1; if (i > 3) { break; } }
            int j = 0;
            while (j < 10) { j = j + 1; }
            return i + j;
        } }"#;
        let all = summaries(src);
        let (_, diags) = all.iter().find(|(s, _)| s.name == "Main.main").unwrap();
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
