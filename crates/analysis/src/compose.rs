//! Composition of loop bounds over the static repetition structure.
//!
//! [`bounds`](crate::bounds) classifies each loop in isolation; this
//! module multiplies those bounds out over the loop forest and the call
//! graph to predict, for every *repetition* (loop or recursion) the
//! dynamic profiler can report, an asymptotic class comparable to the
//! empirically fitted one:
//!
//! * a loop's predicted class is `bound ⊗ body`, where the body class is
//!   the max over nested loops and the cost of every function called
//!   from the loop (so a linear loop calling a linear `append` predicts
//!   O(n²) — matching the dynamic profiler, which folds the costs of
//!   grouped member repetitions into the root algorithm's data points);
//! * a function's cost-per-call is the max over its straight-line calls
//!   and top-level loop subtrees, with virtual sites resolved by the
//!   same class-hierarchy analysis recursion detection uses;
//! * recursive functions get a depth multiplier: linear depth for a
//!   single self-similar call site, exponential for branching recursion
//!   (two or more sites, or a recursive call inside a loop).
//!
//! Predicted names match the dynamic profile exactly: loops are named by
//! the instrumented program's `LoopInfo` (`Class.method:loopN@Lline`,
//! same pre-order ordinals), recursions `"{function} (recursion)"`.

use std::collections::HashMap;

use algoprof_fit::ComplexityClass;
use algoprof_vm::bytecode::CompiledProgram;
use algoprof_vm::callgraph::{cha_targets, CallGraph};

use crate::bounds::{CallSite, FunctionSummary};
use crate::costfn::{CostComposer, CostFn, Feature};

/// What kind of repetition a prediction is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionKind {
    /// A natural loop.
    Loop,
    /// A recursive function (the profiler's recursion repetition node).
    Recursion,
}

/// A statically predicted asymptotic class for one repetition.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Name matching the dynamic profile's repetition node
    /// (`Class.method:loopN@Lline` or `Func (recursion)`).
    pub name: String,
    /// Predicted asymptotic class of the repetition's total cost.
    pub class: ComplexityClass,
    /// Symbolic cost function with coefficients (widened to
    /// `O(class)` where the recurrences were unsolvable).
    pub cost: CostFn,
    /// Loop or recursion.
    pub kind: PredictionKind,
    /// Enclosing (or recursive) function.
    pub function: String,
    /// Source line of the loop header / function declaration.
    pub line: u32,
    /// Human-readable derivation, e.g.
    /// `bound linear in input length × body O(n)`.
    pub detail: String,
}

/// Composes per-function summaries into predictions.
pub struct Composer<'a> {
    summaries: &'a [FunctionSummary],
    program: &'a CompiledProgram,
    callgraph: &'a CallGraph,
    memo: Vec<Option<ComplexityClass>>,
    in_progress: Vec<bool>,
}

impl<'a> Composer<'a> {
    /// `program` must be the instrumented form (its `loops` table names
    /// the repetitions); `summaries` must be indexed by `FuncId`.
    pub fn new(
        summaries: &'a [FunctionSummary],
        program: &'a CompiledProgram,
        callgraph: &'a CallGraph,
    ) -> Composer<'a> {
        let n = summaries.len();
        Composer {
            summaries,
            program,
            callgraph,
            memo: vec![None; n],
            in_progress: vec![false; n],
        }
    }

    /// Predicts a class for every repetition in the program,
    /// deterministically ordered (function table order, then loop
    /// pre-order, with each function's recursion node first).
    pub fn predictions(self) -> Vec<Prediction> {
        self.predictions_with_features(false).0
    }

    /// Like [`Composer::predictions`], optionally also splitting each
    /// repetition's cost by language feature (`with_features`). The
    /// feature list is index-aligned with the predictions.
    pub fn predictions_with_features(
        mut self,
        with_features: bool,
    ) -> (Vec<Prediction>, Vec<FeatureCost>) {
        // Loop names from the instrumented program, keyed by
        // (function index, pre-order ordinal).
        let mut names: HashMap<(u32, u32), &str> = HashMap::new();
        for info in &self.program.loops {
            names.insert((info.func.0, info.ordinal), info.name.as_str());
        }

        // Per-function classes (recursion multiplier included) feed the
        // coefficient composer's widening: the class claim stays with
        // the existing lattice machinery, the coefficients ride along.
        let n = self.summaries.len();
        let mut fn_classes = vec![ComplexityClass::Constant; n];
        for (f, slot) in fn_classes.iter_mut().enumerate() {
            *slot = self.cost(f);
        }
        let mut steps =
            CostComposer::steps(self.summaries, self.program, self.callgraph, &fn_classes);
        let mut feature_composers: Vec<(Feature, CostComposer)> = if with_features {
            Feature::ALL
                .iter()
                .map(|&ft| {
                    (
                        ft,
                        CostComposer::feature(
                            self.summaries,
                            self.program,
                            self.callgraph,
                            &fn_classes,
                            ft,
                        ),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };

        let mut out = Vec::new();
        let mut features = Vec::new();
        let mut emit_features = |name: &str, cost: &dyn Fn(&mut CostComposer) -> CostFn| {
            if feature_composers.is_empty() {
                return;
            }
            features.push(FeatureCost {
                name: name.to_string(),
                features: feature_composers
                    .iter_mut()
                    .map(|(ft, fc)| (*ft, cost(fc)))
                    .collect(),
            });
        };
        for f in 0..self.summaries.len() {
            let summary = &self.summaries[f];
            if self.callgraph.potentially_recursive[f] {
                let class = self.cost(f);
                let name = format!("{} (recursion)", summary.name);
                emit_features(&name, &|fc| fc.func_cost(f));
                out.push(Prediction {
                    name,
                    class,
                    cost: steps.func_cost(f),
                    kind: PredictionKind::Recursion,
                    function: summary.name.clone(),
                    line: summary.line,
                    detail: format!(
                        "{} recursion depth × per-level work",
                        match self.recursion_multiplier(f) {
                            ComplexityClass::Exponential => "branching",
                            _ => "linear",
                        }
                    ),
                });
            }
            for l in 0..summary.loops.len() {
                let lp = &summary.loops[l];
                let body = self.loop_body_class(f, l);
                let class = lp.bound.class().nest(body);
                let name = names
                    .get(&(summary.func.0, lp.ordinal))
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("{}:loop{}@L{}", summary.name, lp.ordinal, lp.line));
                emit_features(&name, &|fc| fc.loop_cost(f, l, class));
                out.push(Prediction {
                    name,
                    class,
                    cost: steps.loop_cost(f, l, class),
                    kind: PredictionKind::Loop,
                    function: summary.name.clone(),
                    line: lp.line,
                    detail: format!("bound {} × body {}", lp.bound.describe(), body.big_o()),
                });
            }
        }
        (out, features)
    }

    /// Cost-per-invocation class of function `f`, recursion multiplier
    /// included. Cycles are cut by treating in-progress callees as O(1);
    /// the multiplier applied at each SCC member restores the recursive
    /// blow-up (over-approximating for mutual recursion).
    pub fn cost(&mut self, f: usize) -> ComplexityClass {
        if let Some(c) = self.memo[f] {
            return c;
        }
        if self.in_progress[f] {
            return ComplexityClass::Constant;
        }
        self.in_progress[f] = true;

        let summary = &self.summaries[f];
        let mut per_level = ComplexityClass::Constant;
        let top_calls: Vec<CallSite> = summary.top_calls.clone();
        let top_loops: Vec<usize> = summary
            .loops
            .iter()
            .enumerate()
            .filter(|(_, lp)| lp.parent.is_none())
            .map(|(i, _)| i)
            .collect();
        for site in top_calls {
            let c = self.call_cost(site);
            per_level = per_level.seq(c);
        }
        for l in top_loops {
            let body = self.loop_body_class(f, l);
            let c = self.summaries[f].loops[l].bound.class().nest(body);
            per_level = per_level.seq(c);
        }

        let total = if self.callgraph.potentially_recursive[f] {
            self.recursion_multiplier(f).nest(per_level)
        } else {
            per_level
        };

        self.in_progress[f] = false;
        self.memo[f] = Some(total);
        total
    }

    /// The class of one execution of loop `l`'s body in function `f`:
    /// max over called functions and nested loop subtrees.
    fn loop_body_class(&mut self, f: usize, l: usize) -> ComplexityClass {
        let lp = &self.summaries[f].loops[l];
        let calls: Vec<CallSite> = lp.calls.clone();
        let children: Vec<usize> = lp.children.clone();
        let mut body = ComplexityClass::Constant;
        for site in calls {
            body = body.seq(self.call_cost(site));
        }
        for c in children {
            let child = &self.summaries[f].loops[c];
            let child_bound = child.bound;
            let child_body = self.loop_body_class(f, c);
            body = body.seq(child_bound.class().nest(child_body));
        }
        body
    }

    /// The worst-case cost of one call through `site`.
    fn call_cost(&mut self, site: CallSite) -> ComplexityClass {
        if site.virtual_dispatch {
            let targets = cha_targets(self.program, site.callee);
            let mut worst = ComplexityClass::Constant;
            for t in targets {
                worst = worst.seq(self.cost(t.index()));
            }
            worst
        } else {
            self.cost(site.callee.index())
        }
    }

    /// Depth multiplier for a recursive function: linear for one
    /// straight-line self-similar site, exponential for branching
    /// recursion or a recursive call issued from inside a loop.
    fn recursion_multiplier(&self, f: usize) -> ComplexityClass {
        let my_scc = self.callgraph.scc[f];
        let summary = &self.summaries[f];
        let is_recursive_site = |site: &CallSite| -> bool {
            if site.virtual_dispatch {
                cha_targets(self.program, site.callee)
                    .iter()
                    .any(|t| self.callgraph.scc[t.index()] == my_scc)
            } else {
                self.callgraph.scc[site.callee.index()] == my_scc
            }
        };
        let straight: usize = summary
            .top_calls
            .iter()
            .filter(|s| is_recursive_site(s))
            .count();
        let in_loop: usize = summary
            .loops
            .iter()
            .flat_map(|l| l.calls.iter())
            .filter(|s| is_recursive_site(s))
            .count();
        if in_loop > 0 || straight >= 2 {
            ComplexityClass::Exponential
        } else {
            ComplexityClass::Linear
        }
    }
}

/// Per-feature cost breakdown for one repetition (index-aligned with
/// the predictions it was produced with).
#[derive(Debug, Clone)]
pub struct FeatureCost {
    /// Repetition name, matching [`Prediction::name`].
    pub name: String,
    /// Cost attributed to each feature, in [`Feature::ALL`] order.
    pub features: Vec<(Feature, CostFn)>,
}

/// A prediction lookup keyed by repetition name.
pub fn prediction_map(predictions: &[Prediction]) -> HashMap<String, ComplexityClass> {
    predictions
        .iter()
        .map(|p| (p.name.clone(), p.class))
        .collect()
}

/// A class + cost-function lookup keyed by repetition name.
pub fn cost_map(predictions: &[Prediction]) -> HashMap<String, (ComplexityClass, CostFn)> {
    predictions
        .iter()
        .map(|p| (p.name.clone(), (p.class, p.cost.clone())))
        .collect()
}
