//! Symbolic cost functions: polynomial / log-polynomial bounds **with
//! coefficients** over the input-size parameter `n`.
//!
//! The class lattice in [`compose`](crate::compose) answers "how does
//! cost grow?"; this module answers "by how much?", in the spirit of
//! López-García et al.'s parametric static profiling: every repetition
//! gets a closed-form worst-case cost function such as
//! `0.5*n^2 + 0.5*n - 1`, derived by solving the loop-bound recurrences
//! the interval/induction analysis already computes —
//!
//! * a counted loop's trip count is `(bound − init) / step`, an affine
//!   form in `n` built from the same interval facts that classified its
//!   [`BoundKind`](crate::bounds::BoundKind);
//! * a nest whose inner bound is the outer induction variable is a
//!   **triangular recurrence**: summing the affine trip count over the
//!   outer iteration space gives the closed form
//!   `Σₖ (i₀ + s·k) = i₀·T + s·(T² − T)/2` — the `0.5·n²` of insertion
//!   sort, with the coefficient proven rather than guessed;
//! * multiplicative progress contributes `log₂ n / log₂ step`;
//! * everything the solver cannot prove is **widened** to an `O(class)`
//!   term that keeps the class claim but surrenders the coefficient
//!   (recursion SCCs, bounds behind unanalyzable heap reads, saturated
//!   log products, data-dependent trip counts).
//!
//! A [`CostFn`] therefore has two parts: exact terms (coefficient ×
//! basis) and an optional widened `O(class)` tail. Its leading
//! coefficient is only reported when every term at or above the leading
//! exact term's class is exact — an honest claim, checkable against the
//! empirically fitted coefficient.
//!
//! The same composition, run with per-loop *feature weights* instead of
//! the constant iteration weight, splits a predicted cost by language
//! feature (virtual dispatch, field access, array access, allocation) —
//! feature-specific profiling in the sense of Andersen et al., but
//! static.

use std::collections::BTreeMap;
use std::fmt;

use algoprof_fit::{ComplexityClass, LeadingTerm};
use algoprof_vm::bytecode::CompiledProgram;
use algoprof_vm::callgraph::{cha_targets, CallGraph};
use algoprof_vm::hir::LocalSlot;

use crate::bounds::{CallSite, FunctionSummary};

/// One basis term `n^degree · (log n)^{0,1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Term {
    degree: u8,
    log: bool,
}

impl Term {
    /// The complexity class of this basis term, `None` when the pair is
    /// outside the representable basis (degree > 3, or a log factor on
    /// a degree-2+ term).
    fn class(self) -> Option<ComplexityClass> {
        match (self.degree, self.log) {
            (0, false) => Some(ComplexityClass::Constant),
            (0, true) => Some(ComplexityClass::Logarithmic),
            (1, false) => Some(ComplexityClass::Linear),
            (1, true) => Some(ComplexityClass::Linearithmic),
            (2, false) => Some(ComplexityClass::Quadratic),
            (3, false) => Some(ComplexityClass::Cubic),
            _ => None,
        }
    }

    fn basis_name(self) -> &'static str {
        match (self.degree, self.log) {
            (0, false) => "",
            (0, true) => "log n",
            (1, false) => "n",
            (1, true) => "n log n",
            (2, false) => "n^2",
            _ => "n^3",
        }
    }
}

/// Coefficients smaller than this are treated as zero (they only arise
/// as exact cancellations with rounding noise).
const EPS: f64 = 1e-9;

/// A symbolic worst-case cost function over the input-size parameter
/// `n`: a sum of exact terms `coeff · n^d · (log n)^l` plus an optional
/// widened `O(class)` tail whose coefficient is unprovable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostFn {
    /// Exact terms, keyed by basis.
    terms: BTreeMap<Term, f64>,
    /// The widened tail: an upper bound of this class holds, with an
    /// unknown constant factor.
    widened: Option<ComplexityClass>,
}

impl CostFn {
    /// The zero cost function.
    pub fn zero() -> CostFn {
        CostFn::default()
    }

    /// The constant cost `k`.
    pub fn constant(k: f64) -> CostFn {
        CostFn::from_term(0, false, k)
    }

    /// A single exact term `coeff · n^degree · (log n)^log`. Terms
    /// outside the representable basis widen to their class instead.
    pub fn from_term(degree: u8, log: bool, coeff: f64) -> CostFn {
        let mut out = CostFn::zero();
        out.push_term(Term { degree, log }, coeff);
        out
    }

    /// The fully widened cost `O(class)` — no exact coefficients.
    pub fn widened(class: ComplexityClass) -> CostFn {
        CostFn {
            terms: BTreeMap::new(),
            widened: Some(class),
        }
    }

    /// Whether this is exactly zero (no terms, no widened tail).
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.widened.is_none()
    }

    /// Whether every part of the bound carries an exact coefficient.
    pub fn is_exact(&self) -> bool {
        self.widened.is_none()
    }

    /// The widened tail's class, if any.
    pub fn widened_class(&self) -> Option<ComplexityClass> {
        self.widened
    }

    fn push_term(&mut self, t: Term, coeff: f64) {
        if coeff.abs() <= EPS {
            return;
        }
        if t.class().is_none() || !coeff.is_finite() {
            // Outside the representable basis (or numerically broken):
            // the honest claim is the class alone.
            self.widen(term_overflow_class(t));
            return;
        }
        let entry = self.terms.entry(t).or_insert(0.0);
        *entry += coeff;
        if entry.abs() <= EPS {
            self.terms.remove(&t);
        }
    }

    fn widen(&mut self, class: ComplexityClass) {
        self.widened = Some(match self.widened {
            Some(w) => w.max(class),
            None => class,
        });
    }

    /// The class of the exact part alone (`None` when there are no
    /// exact terms).
    fn exact_class(&self) -> Option<ComplexityClass> {
        self.terms
            .keys()
            .filter_map(|t| t.class())
            .max_by_key(|c| *c as u8)
    }

    /// The overall complexity class this cost function claims.
    pub fn class(&self) -> ComplexityClass {
        match (self.exact_class(), self.widened) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => ComplexityClass::Constant,
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &CostFn) -> CostFn {
        let mut out = self.clone();
        for (t, c) in &other.terms {
            out.push_term(*t, *c);
        }
        if let Some(w) = other.widened {
            out.widen(w);
        }
        out
    }

    /// `k · self`. The widened tail is class-level and absorbs constant
    /// factors unchanged.
    pub fn scale(&self, k: f64) -> CostFn {
        let mut out = CostFn {
            terms: BTreeMap::new(),
            widened: self.widened,
        };
        for (t, c) in &self.terms {
            out.push_term(*t, c * k);
        }
        out
    }

    /// `self · other` — the closed form for "run an `other`-cost body
    /// `self`-many times" when both sides are polynomial. Products that
    /// leave the representable basis (a second log factor, degree > 3)
    /// widen to their class; any widened input widens the corresponding
    /// product by class composition.
    pub fn mul(&self, other: &CostFn) -> CostFn {
        let mut out = CostFn::zero();
        for (ta, ca) in &self.terms {
            for (tb, cb) in &other.terms {
                let t = Term {
                    degree: ta.degree + tb.degree,
                    log: ta.log || tb.log,
                };
                if ta.log && tb.log {
                    // log·log saturates to a single log factor in the
                    // class lattice; the coefficient is no longer exact.
                    out.widen(term_overflow_class(t));
                } else {
                    out.push_term(t, ca * cb);
                }
            }
        }
        let a_exact = self.exact_class();
        let b_exact = other.exact_class();
        if let Some(wa) = self.widened {
            if let Some(be) = b_exact {
                out.widen(wa.nest(be));
            }
            if let Some(wb) = other.widened {
                out.widen(wa.nest(wb));
            }
        }
        if let Some(wb) = other.widened {
            if let Some(ae) = a_exact {
                out.widen(ae.nest(wb));
            }
        }
        out
    }

    /// The leading exact term, reported only when its class strictly
    /// dominates the widened tail — otherwise the coefficient claim
    /// would be hollow (an `O(n²)` tail under an exact `n²` term means
    /// the true leading coefficient is unknown).
    pub fn leading(&self) -> Option<LeadingTerm> {
        let (t, c) = self.terms.iter().next_back()?;
        let t_class = t.class()?;
        if let Some(w) = self.widened {
            if w >= t_class {
                return None;
            }
        }
        Some(LeadingTerm {
            degree: t.degree as u32,
            log: t.log,
            coeff: *c,
        })
    }

    /// Evaluates the **exact terms** at size `n` (`log` clamped at
    /// `n = 1`, matching the fitted basis). The widened tail is not
    /// included — callers must check [`CostFn::is_exact`] (or tolerate
    /// the missing `O(class)` slack) before treating this as a bound.
    pub fn eval_terms(&self, n: f64) -> f64 {
        let ln = if n > 1.0 { n.log2() } else { 0.0 };
        self.terms
            .iter()
            .map(|(t, c)| {
                let mut v = *c;
                for _ in 0..t.degree {
                    v *= n;
                }
                if t.log {
                    v *= ln;
                }
                v
            })
            .sum()
    }

    /// Renders the term list for JSON consumers:
    /// `[[degree, log, coeff], ...]` in descending basis order.
    pub fn term_triples(&self) -> Vec<(u32, bool, f64)> {
        self.terms
            .iter()
            .rev()
            .map(|(t, c)| (t.degree as u32, t.log, *c))
            .collect()
    }
}

/// The class a basis-overflowing term widens to, per the same rules as
/// [`ComplexityClass::nest`]: one log factor saturates the lattice's
/// log bit, anything past the representable basis is `Unknown`.
fn term_overflow_class(t: Term) -> ComplexityClass {
    match (t.degree, t.log) {
        (0, true) => ComplexityClass::Logarithmic,
        (1, true) => ComplexityClass::Linearithmic,
        _ => ComplexityClass::Unknown,
    }
}

/// Formats a coefficient: integers without a decimal point, everything
/// else with Rust's shortest-roundtrip `Display` (deterministic).
fn fmt_coeff(c: f64) -> String {
    if c == c.trunc() && c.abs() < 1e15 {
        format!("{}", c as i64)
    } else {
        format!("{c}")
    }
}

impl fmt::Display for CostFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut first = true;
        for (t, c) in self.terms.iter().rev() {
            let mag = c.abs();
            if first {
                if *c < 0.0 {
                    f.write_str("-")?;
                }
                first = false;
            } else if *c < 0.0 {
                f.write_str(" - ")?;
            } else {
                f.write_str(" + ")?;
            }
            let basis = t.basis_name();
            if basis.is_empty() {
                f.write_str(&fmt_coeff(mag))?;
            } else if (mag - 1.0).abs() <= EPS {
                f.write_str(basis)?;
            } else {
                write!(f, "{}*{}", fmt_coeff(mag), basis)?;
            }
        }
        if let Some(w) = self.widened {
            if first {
                f.write_str(w.big_o())?;
            } else {
                write!(f, " + {}", w.big_o())?;
            }
        }
        Ok(())
    }
}

// ------------------------------------------------- symbolic trip counts

/// A loop's symbolic trip count:
/// `trips = fixed(n) + coeff · value(outer slot)`, where the optional
/// `outer` component references an **enclosing** loop's induction
/// variable — the triangular-nest case the composer sums in closed
/// form.
#[derive(Debug, Clone, PartialEq)]
pub struct TripCount {
    /// The part that depends only on the input-size parameter.
    pub fixed: CostFn,
    /// `(slot, coeff)`: an additional `coeff · v` trips where `v` is
    /// the current value of an enclosing loop's induction variable.
    pub outer: Option<(LocalSlot, f64)>,
}

impl TripCount {
    /// A trip count with no provable coefficient: `O(class)` iterations.
    pub fn widened(class: ComplexityClass) -> TripCount {
        TripCount {
            fixed: CostFn::widened(class),
            outer: None,
        }
    }

    /// An exact trip count depending only on `n`.
    pub fn exact(fixed: CostFn) -> TripCount {
        TripCount { fixed, outer: None }
    }
}

/// The induction variable a counted loop progresses, with the constant
/// initial value and signed additive step when the solver proved them —
/// exactly what the triangular closed form `Σₖ (i₀ + s·k)` needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InductionVar {
    /// The progressing local.
    pub slot: LocalSlot,
    /// Constant initial value, when every non-progress store is one
    /// provable constant.
    pub init: Option<f64>,
    /// Signed additive step, when all progress stores agree on it.
    pub step: Option<f64>,
}

/// Per-region static operation counts for feature attribution. A region
/// is a loop's own straight-line code (nested loops excluded — they
/// carry their own counts) or a function's code outside every loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Virtual (dynamically dispatched) call sites.
    pub virtual_calls: u32,
    /// Field reads (`x.f`).
    pub field_reads: u32,
    /// Field writes (`x.f = v`).
    pub field_writes: u32,
    /// Array element reads (`a[i]`).
    pub array_reads: u32,
    /// Array element writes (`a[i] = v`).
    pub array_writes: u32,
    /// Object and array allocations.
    pub allocs: u32,
}

/// A language feature the cost attribution can split by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feature {
    /// Virtually dispatched calls.
    VirtualDispatch,
    /// Field reads + writes.
    FieldAccess,
    /// Array element reads + writes.
    ArrayAccess,
    /// Object and array allocations (array growth shows up here).
    Allocation,
}

impl Feature {
    /// All features, in report order.
    pub const ALL: [Feature; 4] = [
        Feature::VirtualDispatch,
        Feature::FieldAccess,
        Feature::ArrayAccess,
        Feature::Allocation,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Feature::VirtualDispatch => "virtual-dispatch",
            Feature::FieldAccess => "field-access",
            Feature::ArrayAccess => "array-access",
            Feature::Allocation => "allocation",
        }
    }

    /// The per-region weight of this feature.
    pub fn weight(self, ops: &OpCounts) -> f64 {
        (match self {
            Feature::VirtualDispatch => ops.virtual_calls,
            Feature::FieldAccess => ops.field_reads + ops.field_writes,
            Feature::ArrayAccess => ops.array_reads + ops.array_writes,
            Feature::Allocation => ops.allocs,
        }) as f64
    }
}

// ---------------------------------------------------------- composition

/// Cost of one full execution of a loop (all iterations, nested
/// repetitions and callees folded in): a part depending only on `n`,
/// plus an optional part proportional to an enclosing induction
/// variable's current value (propagated upward until the owning loop
/// sums it in closed form).
struct LoopExec {
    fixed: CostFn,
    outer: Option<(LocalSlot, CostFn)>,
}

/// Composes symbolic [`CostFn`]s over the loop forest and call graph,
/// mirroring the class composition in [`crate::compose`] but carrying
/// coefficients. One composer per *weight model*: the steps model
/// weighs every loop iteration 1 (matching the dynamic profiler's step
/// counter), a feature model weighs each region by its static op count.
pub(crate) struct CostComposer<'a> {
    summaries: &'a [FunctionSummary],
    program: &'a CompiledProgram,
    callgraph: &'a CallGraph,
    /// Steps class per function (recursion multiplier included), from
    /// the class composer — what widened recursion costs collapse to.
    fn_class: &'a [ComplexityClass],
    /// Per-iteration weight for `(function, loop)`.
    loop_w: Vec<Vec<f64>>,
    /// Per-invocation weight of each function's code outside loops.
    top_w: Vec<f64>,
    /// Whether recursion itself carries weight: true for the steps
    /// model (the dynamic profiler counts every recursive call as a
    /// step), false for feature models (a feature absent from an SCC
    /// contributes nothing, multiplier or not).
    recursion_counts: bool,
    memo: Vec<Option<CostFn>>,
    in_progress: Vec<bool>,
}

impl<'a> CostComposer<'a> {
    /// The steps model: every loop iteration costs 1 (recursive calls
    /// are folded in through the widened recursion costs).
    pub(crate) fn steps(
        summaries: &'a [FunctionSummary],
        program: &'a CompiledProgram,
        callgraph: &'a CallGraph,
        fn_class: &'a [ComplexityClass],
    ) -> CostComposer<'a> {
        let loop_w = summaries.iter().map(|s| vec![1.0; s.loops.len()]).collect();
        let top_w = vec![0.0; summaries.len()];
        CostComposer::with_weights(summaries, program, callgraph, fn_class, loop_w, top_w, true)
    }

    /// A feature model: each region weighs its static op count for
    /// `feature`.
    pub(crate) fn feature(
        summaries: &'a [FunctionSummary],
        program: &'a CompiledProgram,
        callgraph: &'a CallGraph,
        fn_class: &'a [ComplexityClass],
        feature: Feature,
    ) -> CostComposer<'a> {
        let loop_w = summaries
            .iter()
            .map(|s| s.loops.iter().map(|l| feature.weight(&l.ops)).collect())
            .collect();
        let top_w = summaries
            .iter()
            .map(|s| feature.weight(&s.top_ops))
            .collect();
        CostComposer::with_weights(
            summaries, program, callgraph, fn_class, loop_w, top_w, false,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn with_weights(
        summaries: &'a [FunctionSummary],
        program: &'a CompiledProgram,
        callgraph: &'a CallGraph,
        fn_class: &'a [ComplexityClass],
        loop_w: Vec<Vec<f64>>,
        top_w: Vec<f64>,
        recursion_counts: bool,
    ) -> CostComposer<'a> {
        let n = summaries.len();
        CostComposer {
            summaries,
            program,
            callgraph,
            fn_class,
            loop_w,
            top_w,
            recursion_counts,
            memo: vec![None; n],
            in_progress: vec![false; n],
        }
    }

    /// Worst-case cost of the repetition rooted at loop `l` of function
    /// `f`, per invocation of the repetition (one full loop execution).
    /// Loops whose per-execution cost depends on an enclosing induction
    /// variable have no invocation-level closed form over `n` alone and
    /// widen to their class.
    pub(crate) fn loop_cost(&mut self, f: usize, l: usize, class: ComplexityClass) -> CostFn {
        let exec = self.loop_exec(f, l);
        match exec.outer {
            None => exec.fixed,
            Some(_) => CostFn::widened(class),
        }
    }

    /// Worst-case cost per invocation of function `f` (what a call site
    /// pays). Recursive functions widen to their class: the recursion
    /// depth multiplier has no provable constant.
    pub(crate) fn func_cost(&mut self, f: usize) -> CostFn {
        if let Some(c) = &self.memo[f] {
            return c.clone();
        }
        if self.in_progress[f] {
            // Cycle cut; the widening below restores the blow-up.
            return CostFn::zero();
        }
        self.in_progress[f] = true;

        let mut cost = CostFn::constant(self.top_w[f]);
        let top_calls: Vec<CallSite> = self.summaries[f].top_calls.clone();
        let top_loops: Vec<usize> = self.summaries[f]
            .loops
            .iter()
            .enumerate()
            .filter(|(_, lp)| lp.parent.is_none())
            .map(|(i, _)| i)
            .collect();
        for site in top_calls {
            cost = cost.add(&self.call_cost(site));
        }
        for l in top_loops {
            let exec = self.loop_exec(f, l);
            cost = cost.add(&exec.fixed);
            if let Some((_, unit)) = exec.outer {
                // A top-level loop cannot depend on an enclosing
                // induction variable; only malformed trip-count facts
                // reach here. Widen honestly.
                cost = cost.add(&CostFn::widened(unit.class().nest(ComplexityClass::Linear)));
            }
        }

        let total = if self.callgraph.potentially_recursive[f] {
            if cost.is_zero() && !self.recursion_counts {
                // Nothing in the SCC carries weight under this model
                // (e.g. a recursion with no array accesses): the exact
                // zero survives the multiplier.
                CostFn::zero()
            } else {
                CostFn::widened(self.fn_class[f])
            }
        } else {
            cost
        };

        self.in_progress[f] = false;
        self.memo[f] = Some(total.clone());
        total
    }

    /// Cost of one full execution of loop `l` in function `f`.
    fn loop_exec(&mut self, f: usize, l: usize) -> LoopExec {
        let lp = &self.summaries[f].loops[l];
        let trips = lp.trips.clone();
        let induction = lp.induction;
        let calls: Vec<CallSite> = lp.calls.clone();
        let children: Vec<usize> = lp.children.clone();
        let w = self.loop_w[f][l];

        // Per-iteration cost: this loop's own weight, plus callees,
        // plus the v-independent part of each nested loop's execution.
        let mut per_iter = CostFn::constant(w);
        // Cost proportional to *our* induction variable's value, from
        // children whose trip counts reference it (triangular nests).
        let mut tri = CostFn::zero();
        // Cost proportional to a further-out loop's variable, constant
        // during our execution: propagate upward scaled by our trips.
        let mut prop: Option<(LocalSlot, CostFn)> = None;
        for site in calls {
            per_iter = per_iter.add(&self.call_cost(site));
        }
        for c in children {
            let ce = self.loop_exec(f, c);
            per_iter = per_iter.add(&ce.fixed);
            if let Some((slot, unit)) = ce.outer {
                if induction.is_some_and(|iv| iv.slot == slot) {
                    tri = tri.add(&unit);
                } else {
                    match &mut prop {
                        None => prop = Some((slot, unit)),
                        Some((ps, pu)) if *ps == slot => *pu = pu.add(&unit),
                        Some(_) => {
                            // A second distinct outer variable: widen it
                            // into the per-iteration cost (its magnitude
                            // is at most linear in the input).
                            per_iter = per_iter
                                .add(&CostFn::widened(unit.class().nest(ComplexityClass::Linear)));
                        }
                    }
                }
            }
        }

        match trips.outer {
            Some((oslot, ocoeff)) => {
                // Our own trip count depends on an enclosing variable
                // `v`: exec(v) = (fixed + ocoeff·v) · per_iter. Any
                // triangular or propagated component under us would be
                // quadratic in `v` — outside the linear outer form —
                // so it widens (induction values are at most linear in
                // the input).
                let mut fixed = trips.fixed.mul(&per_iter);
                if !tri.is_zero() {
                    fixed = fixed.add(&CostFn::widened(
                        tri.class().nest(ComplexityClass::Quadratic),
                    ));
                }
                if let Some((_, pu)) = prop {
                    fixed = fixed.add(&CostFn::widened(
                        pu.class().nest(ComplexityClass::Quadratic),
                    ));
                }
                LoopExec {
                    fixed,
                    outer: Some((oslot, per_iter.scale(ocoeff))),
                }
            }
            None => {
                let t = trips.fixed;
                let mut fixed = t.mul(&per_iter);
                if !tri.is_zero() {
                    // Triangular closed form: our induction variable
                    // takes the values i₀ + s·k for k = 0..T, so
                    //   Σₖ tri·(i₀ + s·k)
                    //     = tri · (i₀·T + s·(T² − T)/2).
                    let solved = induction.and_then(|iv| Some((iv.init?, iv.step?)));
                    match solved {
                        Some((i0, s)) => {
                            let t2 = t.mul(&t);
                            let sum_v = t.scale(i0).add(&t2.add(&t.scale(-1.0)).scale(0.5 * s));
                            fixed = fixed.add(&tri.mul(&sum_v));
                        }
                        None => {
                            // The recurrence has no constant base case:
                            // keep the class (v is bounded by the trip
                            // count's own class), drop the coefficient.
                            let cls = tri.class().nest(t.class()).nest(t.class());
                            fixed = fixed.add(&CostFn::widened(cls));
                        }
                    }
                }
                let outer = prop.map(|(slot, unit)| (slot, unit.mul(&t)));
                LoopExec { fixed, outer }
            }
        }
    }

    /// Worst-case cost of one call through `site`: virtual sites take a
    /// term-wise maximum over the CHA targets (a sound upper bound for
    /// `max(f, g)` with non-negative coefficients).
    fn call_cost(&mut self, site: CallSite) -> CostFn {
        if site.virtual_dispatch {
            let targets = cha_targets(self.program, site.callee);
            let mut worst = CostFn::zero();
            for t in targets {
                let c = self.func_cost(t.index());
                worst = worst_of(&worst, &c);
            }
            worst
        } else {
            self.func_cost(site.callee.index())
        }
    }
}

/// Term-wise maximum of two cost functions: an upper bound for the
/// pointwise `max(a, b)` when all coefficients are non-negative, exact
/// when one argument dominates the other.
fn worst_of(a: &CostFn, b: &CostFn) -> CostFn {
    let mut out = CostFn::zero();
    let keys: std::collections::BTreeSet<Term> =
        a.terms.keys().chain(b.terms.keys()).copied().collect();
    for t in keys {
        let ca = a.terms.get(&t).copied().unwrap_or(0.0);
        let cb = b.terms.get(&t).copied().unwrap_or(0.0);
        out.push_term(t, ca.max(cb));
    }
    match (a.widened, b.widened) {
        (Some(x), Some(y)) => out.widen(x.max(y)),
        (Some(x), None) => out.widen(x),
        (None, Some(y)) => out.widen(y),
        (None, None) => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_leading() {
        let f = CostFn::from_term(2, false, 0.5)
            .add(&CostFn::from_term(1, false, 0.5))
            .add(&CostFn::constant(-1.0));
        assert_eq!(f.to_string(), "0.5*n^2 + 0.5*n - 1");
        let lead = f.leading().expect("leading");
        assert_eq!((lead.degree, lead.log), (2, false));
        assert!((lead.coeff - 0.5).abs() < 1e-12);
        assert_eq!(f.class(), ComplexityClass::Quadratic);
        assert!((f.eval_terms(8.0) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn widened_tail_hides_leading_coefficient() {
        let f = CostFn::from_term(2, false, 1.0).add(&CostFn::widened(ComplexityClass::Quadratic));
        assert_eq!(f.leading(), None);
        assert_eq!(f.to_string(), "n^2 + O(n^2)");
        // A lower-order tail leaves the leading claim intact.
        let g = CostFn::from_term(2, false, 1.0).add(&CostFn::widened(ComplexityClass::Linear));
        assert!(g.leading().is_some());
        assert_eq!(g.to_string(), "n^2 + O(n)");
    }

    #[test]
    fn mul_adds_degrees_and_saturates_logs() {
        let n = CostFn::from_term(1, false, 2.0);
        let n2 = n.mul(&n);
        assert_eq!(n2.to_string(), "4*n^2");
        let log = CostFn::from_term(0, true, 1.0);
        let nlog = n.mul(&log);
        assert_eq!(nlog.class(), ComplexityClass::Linearithmic);
        assert!(nlog.is_exact());
        // log · log saturates: the coefficient is surrendered.
        let loglog = log.mul(&log);
        assert!(!loglog.is_exact());
        assert_eq!(loglog.class(), ComplexityClass::Logarithmic);
        // Past-cubic products widen to Unknown.
        let n3 = n2.mul(&n);
        let n4 = n3.mul(&n);
        assert_eq!(n4.class(), ComplexityClass::Unknown);
    }

    #[test]
    fn widened_products_compose_by_class() {
        let n = CostFn::from_term(1, false, 1.0);
        let w = CostFn::widened(ComplexityClass::Linear);
        let prod = n.mul(&w);
        assert_eq!(prod.class(), ComplexityClass::Quadratic);
        assert_eq!(prod.leading(), None);
        assert_eq!(prod.to_string(), "O(n^2)");
    }

    #[test]
    fn worst_of_is_termwise_max() {
        let a = CostFn::from_term(1, false, 3.0);
        let b = CostFn::from_term(1, false, 1.0).add(&CostFn::constant(5.0));
        let w = worst_of(&a, &b);
        assert_eq!(w.to_string(), "3*n + 5");
    }

    #[test]
    fn zero_display() {
        assert_eq!(CostFn::zero().to_string(), "0");
        assert_eq!(
            CostFn::widened(ComplexityClass::Cubic).to_string(),
            "O(n^3)"
        );
    }
}
