//! Span-carrying diagnostics for the static analyzer.
//!
//! Every finding the analyzer produces — lints and internal notes alike —
//! is a [`Diagnostic`]: a severity [`Level`], a stable [`Code`] from the
//! lint catalog, a [`Span`] locating the finding in the source, and a
//! human-readable message. Codes are stable across releases so tooling
//! (CI gates, editor integrations) can match on them.

use std::fmt;

/// Severity of a diagnostic.
///
/// Only `Error` findings make `algoprof lint` exit non-zero by default;
/// `Warning` findings are advisory (promotable with `--strict`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Advisory: suspicious but not provably wrong.
    Warning,
    /// The program is provably broken (hangs, traps, or dead by
    /// construction).
    Error,
}

impl Level {
    /// Lower-case name used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Warning => "warning",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identifier of a lint in the catalog (see `docs/ANALYSIS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// AP001: a loop makes no progress toward its exit condition.
    NoProgress,
    /// AP002: a recursive function recurses on every path (no base case).
    NoBaseCase,
    /// AP003: a statement is unreachable after a terminator.
    Unreachable,
    /// AP004: a local or field is written but never read.
    WriteOnly,
    /// AP005: a constant array index is provably out of bounds.
    IndexOutOfBounds,
    /// AP006: division (or remainder) by a value provably zero.
    DivisionByZero,
    /// AP007: thread-primitive misuse — `join` of a value no `spawn` can
    /// reach, a double `join` of one handle on a single path, or a
    /// lock/unlock imbalance (a lock still held when the function
    /// leaves, or paths that disagree about the held set).
    ThreadMisuse,
}

impl Code {
    /// The stable `APnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::NoProgress => "AP001",
            Code::NoBaseCase => "AP002",
            Code::Unreachable => "AP003",
            Code::WriteOnly => "AP004",
            Code::IndexOutOfBounds => "AP005",
            Code::DivisionByZero => "AP006",
            Code::ThreadMisuse => "AP007",
        }
    }

    /// The default severity for this lint.
    pub fn level(self) -> Level {
        match self {
            // A loop that cannot exit or a recursion that cannot stop is a
            // guaranteed hang; a provably bad index or zero divisor is a
            // guaranteed trap.
            Code::NoProgress | Code::NoBaseCase | Code::IndexOutOfBounds | Code::DivisionByZero => {
                Level::Error
            }
            // Dead or useless code is suspicious but runs fine; thread
            // misuse is path-sensitive and heuristic (a handle or lock
            // may flow in ways the per-function scan cannot see).
            Code::Unreachable | Code::WriteOnly | Code::ThreadMisuse => Level::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A source location: the enclosing function and the 1-based line.
///
/// The jay front end tracks lines (not columns) through the HIR, so spans
/// are line-granular; the function name disambiguates same-numbered lines
/// across inlined fixtures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Qualified name of the enclosing function (`Class.method`), or the
    /// program itself for whole-program findings.
    pub function: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (line {})", self.function, self.line)
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub level: Level,
    /// Stable lint code.
    pub code: Code,
    /// Where the finding is anchored.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at the lint's default severity.
    pub fn new(code: Code, function: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            level: code.level(),
            code,
            span: Span {
                function: function.to_string(),
                line,
            },
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}:{}",
            self.level, self.code, self.message, self.span.function, self.span.line
        )
    }
}

/// Sorts diagnostics into the canonical report order (line, then code,
/// then function) and returns whether any is error-level.
pub fn finalize(diags: &mut Vec<Diagnostic>) -> bool {
    diags.sort_by(|a, b| {
        (a.span.line, a.code, &a.span.function, &a.message).cmp(&(
            b.span.line,
            b.code,
            &b.span.function,
            &b.message,
        ))
    });
    diags.dedup();
    diags.iter().any(|d| d.level == Level::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_levels() {
        assert_eq!(Code::NoProgress.as_str(), "AP001");
        assert_eq!(Code::DivisionByZero.as_str(), "AP006");
        assert_eq!(Code::ThreadMisuse.as_str(), "AP007");
        assert_eq!(Code::NoProgress.level(), Level::Error);
        assert_eq!(Code::WriteOnly.level(), Level::Warning);
        assert_eq!(Code::ThreadMisuse.level(), Level::Warning);
    }

    #[test]
    fn display_format() {
        let d = Diagnostic::new(Code::Unreachable, "Main.main", 7, "dead code".into());
        let s = d.to_string();
        assert!(s.contains("warning[AP003]"));
        assert!(s.contains("Main.main:7"));
    }

    #[test]
    fn finalize_sorts_and_reports_errors() {
        let mut ds = vec![
            Diagnostic::new(Code::WriteOnly, "A.b", 9, "w".into()),
            Diagnostic::new(Code::NoProgress, "A.a", 3, "e".into()),
        ];
        assert!(finalize(&mut ds));
        assert_eq!(ds[0].span.line, 3);
    }
}
