//! A classic integer interval domain.
//!
//! Values are abstracted as closed intervals `[lo, hi]` over `i64`, with
//! `i64::MIN`/`i64::MAX` standing in for ±∞. The domain supports the
//! arithmetic the const-local evaluator needs (negation, addition,
//! subtraction, multiplication and exact division), the lattice join, and
//! the standard widening operator that jumps unstable bounds to ±∞ so
//! fixpoint iteration terminates.
//!
//! All arithmetic saturates to the unbounded interval on overflow rather
//! than wrapping — an abstract value must over-approximate, never wrap.

/// A closed interval `[lo, hi]`; `lo > hi` never occurs (empty intervals
/// are not representable — the analyzer only abstracts values that exist).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound (`i64::MIN` = −∞).
    pub lo: i64,
    /// Inclusive upper bound (`i64::MAX` = +∞).
    pub hi: i64,
}

// The arithmetic methods intentionally shadow the `std::ops` names:
// they are interval-domain transfer functions (saturating to TOP on
// overflow), not the value semantics operator sugar would suggest.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The unbounded interval ⊤ = [−∞, +∞].
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The singleton interval `[k, k]`.
    pub fn constant(k: i64) -> Interval {
        Interval { lo: k, hi: k }
    }

    /// Builds `[lo, hi]`, normalizing a reversed pair.
    pub fn new(lo: i64, hi: i64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The single value this interval holds, if it is a singleton.
    pub fn as_constant(self) -> Option<i64> {
        if self.lo == self.hi && self.lo != i64::MIN && self.lo != i64::MAX {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Whether every value in the interval is zero.
    pub fn is_zero(self) -> bool {
        self.lo == 0 && self.hi == 0
    }

    /// Whether `v` may be in the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound of two intervals.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard interval widening: any bound that moved since `self`
    /// jumps to ±∞, guaranteeing chains stabilize in two steps.
    pub fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    /// Arithmetic negation.
    pub fn neg(self) -> Interval {
        match (self.hi.checked_neg(), self.lo.checked_neg()) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    /// Interval addition (to ⊤ on overflow).
    pub fn add(self, other: Interval) -> Interval {
        match (self.lo.checked_add(other.lo), self.hi.checked_add(other.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    /// Interval subtraction (to ⊤ on overflow).
    pub fn sub(self, other: Interval) -> Interval {
        self.add(other.neg())
    }

    /// Interval multiplication (to ⊤ on overflow).
    pub fn mul(self, other: Interval) -> Interval {
        let products = [
            self.lo.checked_mul(other.lo),
            self.lo.checked_mul(other.hi),
            self.hi.checked_mul(other.lo),
            self.hi.checked_mul(other.hi),
        ];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for p in products {
            match p {
                Some(v) => {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                None => return Interval::TOP,
            }
        }
        Interval { lo, hi }
    }

    /// Truncating division, defined only when the divisor cannot be zero.
    pub fn div(self, other: Interval) -> Interval {
        if other.contains(0) {
            return Interval::TOP;
        }
        let quotients = [
            self.lo.checked_div(other.lo),
            self.lo.checked_div(other.hi),
            self.hi.checked_div(other.lo),
            self.hi.checked_div(other.hi),
        ];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for q in quotients {
            match q {
                Some(v) => {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                None => return Interval::TOP,
            }
        }
        Interval { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_predicates() {
        let c = Interval::constant(7);
        assert_eq!(c.as_constant(), Some(7));
        assert!(c.contains(7));
        assert!(!c.contains(8));
        assert!(Interval::constant(0).is_zero());
        assert!(!Interval::new(0, 1).is_zero());
        assert_eq!(Interval::TOP.as_constant(), None);
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(1, 3);
        let b = Interval::new(-2, 4);
        assert_eq!(a.add(b), Interval::new(-1, 7));
        assert_eq!(a.sub(b), Interval::new(-3, 5));
        assert_eq!(a.mul(b), Interval::new(-6, 12));
        assert_eq!(a.neg(), Interval::new(-3, -1));
        assert_eq!(
            Interval::new(10, 20).div(Interval::constant(2)),
            Interval::new(5, 10)
        );
        assert_eq!(
            Interval::new(10, 20).div(Interval::new(-1, 1)),
            Interval::TOP
        );
    }

    #[test]
    fn overflow_saturates_to_top() {
        let big = Interval::constant(i64::MAX);
        assert_eq!(big.add(Interval::constant(1)), Interval::TOP);
        assert_eq!(big.mul(Interval::constant(2)), Interval::TOP);
    }

    #[test]
    fn join_and_widen() {
        let a = Interval::new(0, 5);
        let b = Interval::new(3, 9);
        assert_eq!(a.join(b), Interval::new(0, 9));
        // Growing upper bound widens to +∞; stable lower bound is kept.
        let w = a.widen(Interval::new(0, 6));
        assert_eq!(w.lo, 0);
        assert_eq!(w.hi, i64::MAX);
        // Stable interval is a fixpoint.
        assert_eq!(a.widen(a), a);
    }
}
