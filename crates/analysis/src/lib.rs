//! Static algorithmic-complexity analysis and lints for **jay** programs.
//!
//! AlgoProf infers cost functions *empirically* — it runs the program and
//! fits models to ⟨input size, cost⟩ points. This crate builds the static
//! half of that story, in the spirit of the static resource-analysis
//! literature the reproduction cites (López-García et al.'s parametric
//! static profiling framework): an abstract interpretation over the typed
//! HIR that
//!
//! 1. detects induction variables and classifies each loop's iteration
//!    bound (constant / linear-in-local / linear-in-input-length /
//!    logarithmic / unknown) via interval + monotonic-progress analysis
//!    ([`bounds`]),
//! 2. composes those bounds over the static repetition structure — the
//!    loop forest plus recursion SCCs — into a predicted asymptotic class
//!    per repetition ([`compose`]), named exactly like the dynamic
//!    profiler's repetition nodes so predictions and empirical fits can
//!    be cross-validated, and
//! 3. hosts a span-carrying diagnostics framework ([`diag`]) with a
//!    catalog of lints (AP001–AP007; [`bounds`] + [`lints`]).
//!
//! The predictions are intentionally *worst-case* and coarse (a lattice
//! of big-O classes, not closed-form bounds): their purpose is to agree
//! or disagree with an empirical fit, giving the dynamic profiler a
//! correctness oracle and the static analysis a reality check — each
//! side auditing the other.
//!
//! # Example
//!
//! ```
//! use algoprof_analysis::analyze_source;
//! use algoprof_fit::ComplexityClass;
//!
//! let src = r#"
//!     class Main {
//!         static int main() {
//!             int n = readInput();
//!             int s = 0;
//!             for (int i = 0; i < n; i = i + 1) {
//!                 for (int j = 0; j < n; j = j + 1) { s = s + 1; }
//!             }
//!             return s;
//!         }
//!     }
//! "#;
//! let analysis = analyze_source(src).expect("compiles");
//! let outer = analysis
//!     .predictions
//!     .iter()
//!     .find(|p| p.name.contains("loop0"))
//!     .expect("outer loop predicted");
//! assert_eq!(outer.class, ComplexityClass::Quadratic);
//! ```

pub mod bounds;
pub mod compose;
pub mod costfn;
pub mod diag;
pub mod interval;
pub mod lints;
pub mod report;

use algoprof_vm::bytecode::CompiledProgram;
use algoprof_vm::callgraph::CallGraph;
use algoprof_vm::error::CompileError;
use algoprof_vm::hir::HFunction;
use algoprof_vm::{compile, parser::parse, typeck::check, InstrumentOptions};

pub use bounds::{BoundKind, FunctionSummary, LoopSummary};
pub use compose::{cost_map, prediction_map, Composer, FeatureCost, Prediction, PredictionKind};
pub use costfn::{CostFn, Feature, InductionVar, OpCounts, TripCount};
pub use diag::{Code, Diagnostic, Level, Span};
pub use interval::Interval;
pub use report::{render_json, render_text};

/// The complete result of analyzing one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Lint findings, in canonical order (line, code, function).
    pub diagnostics: Vec<Diagnostic>,
    /// Predicted asymptotic class per repetition, in function-table /
    /// pre-order.
    pub predictions: Vec<Prediction>,
    /// Whether any diagnostic is error-level.
    pub has_errors: bool,
}

impl Analysis {
    /// Looks up the prediction for a repetition by its dynamic name
    /// (`Class.method:loopN@Lline` or `Func (recursion)`).
    pub fn prediction(&self, name: &str) -> Option<&Prediction> {
        self.predictions.iter().find(|p| p.name == name)
    }
}

/// Analyzes jay source end to end: parse, type-check, then run the loop
/// bound classifier, lint catalog, and cost composition.
///
/// The program is also compiled and instrumented (with default options)
/// so predictions carry the exact repetition names the dynamic profiler
/// reports.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error; a program
/// that does not compile cannot be analyzed.
pub fn analyze_source(source: &str) -> Result<Analysis, CompileError> {
    Ok(analyze_source_with_features(source)?.0)
}

/// Like [`analyze_source`], additionally splitting each repetition's
/// predicted cost by language feature (virtual dispatch, field access,
/// array access, allocation). The feature list is index-aligned with
/// `Analysis::predictions`.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn analyze_source_with_features(
    source: &str,
) -> Result<(Analysis, Vec<FeatureCost>), CompileError> {
    let ast = parse(source)?;
    let typed = check(&ast)?;
    let compiled = compile(source)?;
    let instrumented = compiled.instrument(&InstrumentOptions::default());
    Ok(analyze_program_with_features(&typed.bodies, &instrumented))
}

/// Analyzes already-lowered bodies against their instrumented program.
///
/// `bodies` and `instrumented` must come from the same source and
/// compile options — loop pre-order ordinals in the HIR are matched
/// positionally against the instrumented program's natural-loop
/// ordinals.
pub fn analyze_program(bodies: &[HFunction], instrumented: &CompiledProgram) -> Analysis {
    analyze_program_with_features(bodies, instrumented).0
}

/// Like [`analyze_program`], also producing the per-feature cost
/// breakdown (index-aligned with the predictions).
pub fn analyze_program_with_features(
    bodies: &[HFunction],
    instrumented: &CompiledProgram,
) -> (Analysis, Vec<FeatureCost>) {
    let callgraph = CallGraph::build(instrumented);

    let mut diagnostics = Vec::new();
    let mut summaries = Vec::with_capacity(bodies.len());
    for body in bodies {
        let facts = bounds::Facts::collect(body);
        let (summary, diags) = bounds::summarize_function(body, &facts);
        summaries.push(summary);
        diagnostics.extend(diags);
    }
    diagnostics.extend(lints::lint_program(bodies, instrumented, &callgraph));

    let (predictions, features) =
        Composer::new(&summaries, instrumented, &callgraph).predictions_with_features(true);
    let has_errors = diag::finalize(&mut diagnostics);
    (
        Analysis {
            diagnostics,
            predictions,
            has_errors,
        },
        features,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_fit::ComplexityClass;

    fn predict(src: &str, name_part: &str) -> ComplexityClass {
        let a = analyze_source(src).expect("analyzes");
        a.predictions
            .iter()
            .find(|p| p.name.contains(name_part))
            .unwrap_or_else(|| panic!("no prediction matching {name_part}: {:?}", a.predictions))
            .class
    }

    #[test]
    fn quadratic_nest_is_predicted() {
        let src = r#"class Main { static int main() {
            int n = readInput();
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                for (int j = 0; j < n; j = j + 1) { s = s + 1; }
            }
            return s;
        } }"#;
        assert_eq!(predict(src, "loop0"), ComplexityClass::Quadratic);
        assert_eq!(predict(src, "loop1"), ComplexityClass::Linear);
    }

    #[test]
    fn linear_loop_calling_linear_helper_is_quadratic() {
        let src = r#"class Main {
            static int walk(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) { s = s + 1; }
                return s;
            }
            static int main() {
                int n = readInput();
                int s = 0;
                for (int i = 0; i < n; i = i + 1) { s = s + Main.walk(n); }
                return s;
            }
        }"#;
        assert_eq!(predict(src, "Main.main:loop0"), ComplexityClass::Quadratic);
    }

    #[test]
    fn single_recursion_is_linear_branching_is_exponential() {
        let src = r#"class Main {
            static int down(int n) {
                if (n <= 0) { return 0; }
                return Main.down(n - 1) + 1;
            }
            static int fib(int n) {
                if (n < 2) { return n; }
                return Main.fib(n - 1) + Main.fib(n - 2);
            }
            static int main() { return Main.down(readInput()) + Main.fib(5); }
        }"#;
        let a = analyze_source(src).expect("analyzes");
        assert_eq!(
            a.prediction("Main.down (recursion)").expect("down").class,
            ComplexityClass::Linear
        );
        assert_eq!(
            a.prediction("Main.fib (recursion)").expect("fib").class,
            ComplexityClass::Exponential
        );
        // Well-formed recursion: no AP002.
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn prediction_names_match_instrumented_loop_names() {
        let src = r#"class Main { static int main() {
            int s = 0;
            for (int i = 0; i < 5; i = i + 1) { s = s + 1; }
            return s;
        } }"#;
        let a = analyze_source(src).expect("analyzes");
        let instrumented = compile(src)
            .expect("compiles")
            .instrument(&InstrumentOptions::default());
        let expected: Vec<String> = instrumented.loops.iter().map(|l| l.name.clone()).collect();
        let got: Vec<String> = a
            .predictions
            .iter()
            .filter(|p| p.kind == PredictionKind::Loop)
            .map(|p| p.name.clone())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn compile_errors_propagate() {
        assert!(analyze_source("class Main { static int main() { return x; } }").is_err());
    }

    const INSERTION_SORT: &str = r#"class Main {
        static int main() {
            int size = readInput();
            int[] a = new int[size];
            Main.fill(a);
            Main.sort(a);
            return a.length;
        }
        static void fill(int[] a) {
            for (int i = 0; i < a.length; i = i + 1) { a[i] = a.length - i; }
        }
        static void sort(int[] a) {
            for (int i = 1; i < a.length; i = i + 1) {
                int key = a[i];
                int j = i;
                while (j > 0 && a[j - 1] > key) {
                    a[j] = a[j - 1];
                    j = j - 1;
                }
                a[j] = key;
            }
        }
    }"#;

    #[test]
    fn insertion_sort_cost_is_half_n_squared() {
        // The triangular recurrence solved in closed form: outer trips
        // n−1; inner trips i with i = 1 + k; Σ = (n−1) + Σₖ(1 + k)
        // = 0.5n² + 0.5n − 1. At n = 8 that is exactly the 35 steps
        // the dynamic profiler measures.
        let a = analyze_source(INSERTION_SORT).expect("analyzes");
        let p = a
            .predictions
            .iter()
            .find(|p| p.name.contains("Main.sort:loop0"))
            .expect("outer sort loop");
        assert_eq!(p.class, ComplexityClass::Quadratic);
        assert_eq!(p.cost.to_string(), "0.5*n^2 + 0.5*n - 1");
        let lead = p.cost.leading().expect("exact leading term");
        assert_eq!((lead.degree, lead.log), (2, false));
        assert!((lead.coeff - 0.5).abs() < 1e-9);
        assert!((p.cost.eval_terms(8.0) - 35.0).abs() < 1e-9);
        // The inner loop alone has no closed form over n (its trip
        // count depends on the outer induction variable): widened.
        let inner = a
            .predictions
            .iter()
            .find(|p| p.name.contains("Main.sort:loop1"))
            .expect("inner sort loop");
        assert!(inner.cost.leading().is_none());
        assert_eq!(inner.cost.class(), ComplexityClass::Linear);
        // The fill loop is exactly n.
        let fill = a
            .predictions
            .iter()
            .find(|p| p.name.contains("Main.fill:loop0"))
            .expect("fill loop");
        assert_eq!(fill.cost.to_string(), "n");
    }

    #[test]
    fn quadratic_nest_cost_is_n_squared_plus_n() {
        let src = r#"class Main { static int main() {
            int n = readInput();
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                for (int j = 0; j < n; j = j + 1) { s = s + 1; }
            }
            return s;
        } }"#;
        let a = analyze_source(src).expect("analyzes");
        let outer = a
            .predictions
            .iter()
            .find(|p| p.name.contains("loop0"))
            .expect("outer");
        // n iterations, each costing 1 (itself) + n (inner execution).
        assert_eq!(outer.cost.to_string(), "n^2 + n");
        let inner = a
            .predictions
            .iter()
            .find(|p| p.name.contains("loop1"))
            .expect("inner");
        assert_eq!(inner.cost.to_string(), "n");
    }

    #[test]
    fn doubling_loop_cost_has_exact_log_coefficient() {
        let src = r#"class Main { static int main() {
            int n = readInput();
            int s = 0;
            for (int i = 1; i < n; i = i * 2) { s = s + 1; }
            return s;
        } }"#;
        let a = analyze_source(src).expect("analyzes");
        let p = a
            .predictions
            .iter()
            .find(|p| p.name.contains("loop0"))
            .expect("loop");
        // log₂(n)/log₂(2) = 1·log n, plus an O(1) tail for the start
        // value: the coefficient is exact, the constant is not.
        assert_eq!(p.cost.to_string(), "log n + O(1)");
        let lead = p.cost.leading().expect("leading log term");
        assert_eq!((lead.degree, lead.log), (0, true));
        assert!((lead.coeff - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_loops_sharing_a_slot_keep_exact_trip_counts() {
        // The compiler reuses local slots, so both `i`s land on one
        // slot; the reaching-store fallback must still find each loop's
        // own initializer instead of widening.
        let src = r#"class Main { static int main() {
            int n = readInput();
            int[] a = new int[n];
            for (int i = 0; i < a.length; i = i + 1) { a[i] = 1; }
            for (int i = 1; i < a.length; i = i + 1) { a[i] = 2; }
            return 0;
        } }"#;
        let a = analyze_source(src).expect("analyzes");
        let costs: Vec<String> = a.predictions.iter().map(|p| p.cost.to_string()).collect();
        assert_eq!(costs, vec!["n".to_string(), "n - 1".to_string()]);
    }

    #[test]
    fn conditional_reinitialization_widens_honestly() {
        // Two inits reach the second loop (one under a branch): no
        // single reaching store, so the trip count must widen rather
        // than guess.
        let src = r#"class Main { static int main() {
            int n = readInput();
            int i = 0;
            for (i = 0; i < n; i = i + 1) { int x = i; }
            if (n > 4) { i = 2; } else { i = 3; }
            while (i < n) { i = i + 1; }
            return 0;
        } }"#;
        let a = analyze_source(src).expect("analyzes");
        let second = a.predictions.last().expect("second loop");
        assert_eq!(second.class, ComplexityClass::Linear);
        assert_eq!(second.cost.to_string(), "O(n)");
    }

    #[test]
    fn recursion_cost_widens_to_class() {
        let src = r#"class Main {
            static int down(int n) {
                if (n <= 0) { return 0; }
                return Main.down(n - 1) + 1;
            }
            static int main() { return Main.down(readInput()); }
        }"#;
        let a = analyze_source(src).expect("analyzes");
        let p = a.prediction("Main.down (recursion)").expect("down");
        assert_eq!(p.cost.to_string(), "O(n)");
        assert!(p.cost.leading().is_none());
    }

    #[test]
    fn feature_attribution_splits_array_accesses() {
        let (a, features) = analyze_source_with_features(INSERTION_SORT).expect("analyzes");
        assert_eq!(a.predictions.len(), features.len());
        let idx = a
            .predictions
            .iter()
            .position(|p| p.name.contains("Main.sort:loop0"))
            .expect("outer sort loop");
        let fc = &features[idx];
        let by_name = |name: &str| -> &CostFn {
            fc.features
                .iter()
                .find(|(f, _)| f.name() == name)
                .map(|(_, c)| c)
                .unwrap()
        };
        // Inner region: 2 reads (condition + shift) + 1 write per
        // iteration; outer region: 1 read + 1 write per iteration.
        // Σ over the triangular nest: 3·(0.5n²−0.5n) + 2·(n−1).
        assert_eq!(by_name("array-access").to_string(), "1.5*n^2 + 0.5*n - 2");
        // No virtual calls, fields, or allocations anywhere in sort.
        assert_eq!(by_name("virtual-dispatch").to_string(), "0");
        assert_eq!(by_name("field-access").to_string(), "0");
        assert_eq!(by_name("allocation").to_string(), "0");
    }
}
