//! Static algorithmic-complexity analysis and lints for **jay** programs.
//!
//! AlgoProf infers cost functions *empirically* — it runs the program and
//! fits models to ⟨input size, cost⟩ points. This crate builds the static
//! half of that story, in the spirit of the static resource-analysis
//! literature the reproduction cites (López-García et al.'s parametric
//! static profiling framework): an abstract interpretation over the typed
//! HIR that
//!
//! 1. detects induction variables and classifies each loop's iteration
//!    bound (constant / linear-in-local / linear-in-input-length /
//!    logarithmic / unknown) via interval + monotonic-progress analysis
//!    ([`bounds`]),
//! 2. composes those bounds over the static repetition structure — the
//!    loop forest plus recursion SCCs — into a predicted asymptotic class
//!    per repetition ([`compose`]), named exactly like the dynamic
//!    profiler's repetition nodes so predictions and empirical fits can
//!    be cross-validated, and
//! 3. hosts a span-carrying diagnostics framework ([`diag`]) with a
//!    catalog of lints (AP001–AP006; [`bounds`] + [`lints`]).
//!
//! The predictions are intentionally *worst-case* and coarse (a lattice
//! of big-O classes, not closed-form bounds): their purpose is to agree
//! or disagree with an empirical fit, giving the dynamic profiler a
//! correctness oracle and the static analysis a reality check — each
//! side auditing the other.
//!
//! # Example
//!
//! ```
//! use algoprof_analysis::analyze_source;
//! use algoprof_fit::ComplexityClass;
//!
//! let src = r#"
//!     class Main {
//!         static int main() {
//!             int n = readInput();
//!             int s = 0;
//!             for (int i = 0; i < n; i = i + 1) {
//!                 for (int j = 0; j < n; j = j + 1) { s = s + 1; }
//!             }
//!             return s;
//!         }
//!     }
//! "#;
//! let analysis = analyze_source(src).expect("compiles");
//! let outer = analysis
//!     .predictions
//!     .iter()
//!     .find(|p| p.name.contains("loop0"))
//!     .expect("outer loop predicted");
//! assert_eq!(outer.class, ComplexityClass::Quadratic);
//! ```

pub mod bounds;
pub mod compose;
pub mod diag;
pub mod interval;
pub mod lints;
pub mod report;

use algoprof_vm::bytecode::CompiledProgram;
use algoprof_vm::callgraph::CallGraph;
use algoprof_vm::error::CompileError;
use algoprof_vm::hir::HFunction;
use algoprof_vm::{compile, parser::parse, typeck::check, InstrumentOptions};

pub use bounds::{BoundKind, FunctionSummary, LoopSummary};
pub use compose::{prediction_map, Composer, Prediction, PredictionKind};
pub use diag::{Code, Diagnostic, Level, Span};
pub use interval::Interval;
pub use report::{render_json, render_text};

/// The complete result of analyzing one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Lint findings, in canonical order (line, code, function).
    pub diagnostics: Vec<Diagnostic>,
    /// Predicted asymptotic class per repetition, in function-table /
    /// pre-order.
    pub predictions: Vec<Prediction>,
    /// Whether any diagnostic is error-level.
    pub has_errors: bool,
}

impl Analysis {
    /// Looks up the prediction for a repetition by its dynamic name
    /// (`Class.method:loopN@Lline` or `Func (recursion)`).
    pub fn prediction(&self, name: &str) -> Option<&Prediction> {
        self.predictions.iter().find(|p| p.name == name)
    }
}

/// Analyzes jay source end to end: parse, type-check, then run the loop
/// bound classifier, lint catalog, and cost composition.
///
/// The program is also compiled and instrumented (with default options)
/// so predictions carry the exact repetition names the dynamic profiler
/// reports.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error; a program
/// that does not compile cannot be analyzed.
pub fn analyze_source(source: &str) -> Result<Analysis, CompileError> {
    let ast = parse(source)?;
    let typed = check(&ast)?;
    let compiled = compile(source)?;
    let instrumented = compiled.instrument(&InstrumentOptions::default());
    Ok(analyze_program(&typed.bodies, &instrumented))
}

/// Analyzes already-lowered bodies against their instrumented program.
///
/// `bodies` and `instrumented` must come from the same source and
/// compile options — loop pre-order ordinals in the HIR are matched
/// positionally against the instrumented program's natural-loop
/// ordinals.
pub fn analyze_program(bodies: &[HFunction], instrumented: &CompiledProgram) -> Analysis {
    let callgraph = CallGraph::build(instrumented);

    let mut diagnostics = Vec::new();
    let mut summaries = Vec::with_capacity(bodies.len());
    for body in bodies {
        let facts = bounds::Facts::collect(body);
        let (summary, diags) = bounds::summarize_function(body, &facts);
        summaries.push(summary);
        diagnostics.extend(diags);
    }
    diagnostics.extend(lints::lint_program(bodies, instrumented, &callgraph));

    let predictions = Composer::new(&summaries, instrumented, &callgraph).predictions();
    let has_errors = diag::finalize(&mut diagnostics);
    Analysis {
        diagnostics,
        predictions,
        has_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_fit::ComplexityClass;

    fn predict(src: &str, name_part: &str) -> ComplexityClass {
        let a = analyze_source(src).expect("analyzes");
        a.predictions
            .iter()
            .find(|p| p.name.contains(name_part))
            .unwrap_or_else(|| panic!("no prediction matching {name_part}: {:?}", a.predictions))
            .class
    }

    #[test]
    fn quadratic_nest_is_predicted() {
        let src = r#"class Main { static int main() {
            int n = readInput();
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                for (int j = 0; j < n; j = j + 1) { s = s + 1; }
            }
            return s;
        } }"#;
        assert_eq!(predict(src, "loop0"), ComplexityClass::Quadratic);
        assert_eq!(predict(src, "loop1"), ComplexityClass::Linear);
    }

    #[test]
    fn linear_loop_calling_linear_helper_is_quadratic() {
        let src = r#"class Main {
            static int walk(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) { s = s + 1; }
                return s;
            }
            static int main() {
                int n = readInput();
                int s = 0;
                for (int i = 0; i < n; i = i + 1) { s = s + Main.walk(n); }
                return s;
            }
        }"#;
        assert_eq!(predict(src, "Main.main:loop0"), ComplexityClass::Quadratic);
    }

    #[test]
    fn single_recursion_is_linear_branching_is_exponential() {
        let src = r#"class Main {
            static int down(int n) {
                if (n <= 0) { return 0; }
                return Main.down(n - 1) + 1;
            }
            static int fib(int n) {
                if (n < 2) { return n; }
                return Main.fib(n - 1) + Main.fib(n - 2);
            }
            static int main() { return Main.down(readInput()) + Main.fib(5); }
        }"#;
        let a = analyze_source(src).expect("analyzes");
        assert_eq!(
            a.prediction("Main.down (recursion)").expect("down").class,
            ComplexityClass::Linear
        );
        assert_eq!(
            a.prediction("Main.fib (recursion)").expect("fib").class,
            ComplexityClass::Exponential
        );
        // Well-formed recursion: no AP002.
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn prediction_names_match_instrumented_loop_names() {
        let src = r#"class Main { static int main() {
            int s = 0;
            for (int i = 0; i < 5; i = i + 1) { s = s + 1; }
            return s;
        } }"#;
        let a = analyze_source(src).expect("analyzes");
        let instrumented = compile(src)
            .expect("compiles")
            .instrument(&InstrumentOptions::default());
        let expected: Vec<String> = instrumented.loops.iter().map(|l| l.name.clone()).collect();
        let got: Vec<String> = a
            .predictions
            .iter()
            .filter(|p| p.kind == PredictionKind::Loop)
            .map(|p| p.name.clone())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn compile_errors_propagate() {
        assert!(analyze_source("class Main { static int main() { return x; } }").is_err());
    }
}
