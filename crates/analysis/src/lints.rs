//! Statement-level lints: AP002–AP006.
//!
//! (AP001, *loop makes no progress*, lives with the bound classifier in
//! [`crate::bounds`] — it shares the loop-effects walk.)

use std::collections::{BTreeMap, BTreeSet};

use algoprof_vm::ast::BinOp;
use algoprof_vm::bytecode::{CompiledProgram, FieldId};
use algoprof_vm::callgraph::{cha_targets, CallGraph};
use algoprof_vm::hir::{HExpr, HFunction, HStmt};

use crate::bounds::{expr_line, for_each_child, stmt_line, Facts};
use crate::diag::{Code, Diagnostic};

/// Runs every statement-level lint over the program.
pub fn lint_program(
    bodies: &[HFunction],
    compiled: &CompiledProgram,
    callgraph: &CallGraph,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for func in bodies {
        let facts = Facts::collect(func);
        lint_no_base_case(func, compiled, callgraph, &mut diags);
        lint_unreachable(func, &mut diags);
        lint_write_only_locals(func, &facts, &mut diags);
        lint_const_traps(func, &facts, &mut diags);
    }
    lint_write_only_fields(bodies, compiled, &mut diags);
    diags
}

// ---------------------------------------------------------------------------
// AP002: recursion with no base case
// ---------------------------------------------------------------------------

/// Outcome of symbolically executing a statement list for AP002.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    /// Every path through the list reaches a recursive call (line of the
    /// first witness).
    Recurses(u32),
    /// Some path leaves the function without recursing — a base case.
    Exits,
    /// Control may fall through to the statements that follow.
    Falls,
}

fn lint_no_base_case(
    func: &HFunction,
    compiled: &CompiledProgram,
    callgraph: &CallGraph,
    diags: &mut Vec<Diagnostic>,
) {
    let f = func.id.index();
    if !callgraph.potentially_recursive[f] {
        return;
    }
    let my_scc = callgraph.scc[f];
    let is_rec = |e: &HExpr| -> bool {
        let (callee, virt) = match e {
            HExpr::CallStatic { func, .. } | HExpr::CallDirect { func, .. } => (*func, false),
            HExpr::CallVirtual { func, .. } => (*func, true),
            HExpr::NewObject { ctor: Some(c), .. } => (*c, false),
            _ => return false,
        };
        if virt {
            cha_targets(compiled, callee)
                .iter()
                .any(|t| callgraph.scc[t.index()] == my_scc)
        } else {
            callgraph.scc[callee.index()] == my_scc
        }
    };
    if let Path::Recurses(line) = scan_stmts(&func.body, &is_rec) {
        diags.push(Diagnostic::new(
            Code::NoBaseCase,
            &func.name,
            line,
            format!(
                "'{}' recurses on every path: no base case can stop the recursion",
                func.name
            ),
        ));
    }
}

fn scan_stmts(stmts: &[HStmt], is_rec: &dyn Fn(&HExpr) -> bool) -> Path {
    for stmt in stmts {
        // A recursive call in a position that always evaluates settles it.
        if let Some(line) = stmt_rec_call(stmt, is_rec) {
            return Path::Recurses(line);
        }
        match stmt {
            HStmt::Return { .. } | HStmt::Throw { .. } => return Path::Exits,
            // Leaving the list via a loop jump: treat as an escaping
            // path so the lint stays conservative inside loops.
            HStmt::Break | HStmt::Continue => return Path::Exits,
            HStmt::If { then, els, .. } => {
                match (scan_stmts(then, is_rec), scan_stmts(els, is_rec)) {
                    (Path::Recurses(l), Path::Recurses(_)) => return Path::Recurses(l),
                    (Path::Exits, _) | (_, Path::Exits) => return Path::Exits,
                    // At least one arm falls through: keep scanning.
                    _ => {}
                }
            }
            HStmt::Try { body, handler, .. } => {
                match (scan_stmts(body, is_rec), scan_stmts(handler, is_rec)) {
                    (Path::Recurses(l), Path::Recurses(_)) => return Path::Recurses(l),
                    (Path::Exits, _) | (_, Path::Exits) => return Path::Exits,
                    _ => {}
                }
            }
            // A loop body may run zero times: only its condition (checked
            // by `stmt_rec_call`) evaluates unconditionally.
            _ => {}
        }
    }
    Path::Falls
}

/// A recursive call in an always-evaluated position of `stmt`, if any.
fn stmt_rec_call(stmt: &HStmt, is_rec: &dyn Fn(&HExpr) -> bool) -> Option<u32> {
    let mut exprs: Vec<&HExpr> = Vec::new();
    match stmt {
        HStmt::Expr(e) => exprs.push(e),
        HStmt::StoreLocal { value, .. } => exprs.push(value),
        HStmt::StoreField { obj, value, .. } => {
            exprs.push(obj);
            exprs.push(value);
        }
        HStmt::StoreIndex {
            arr, idx, value, ..
        } => {
            exprs.push(arr);
            exprs.push(idx);
            exprs.push(value);
        }
        // If and Loop conditions evaluate at least once.
        HStmt::If { cond, .. } | HStmt::Loop { cond, .. } => exprs.push(cond),
        HStmt::Return { value: Some(v), .. } => exprs.push(v),
        HStmt::Throw { value, .. } => exprs.push(value),
        HStmt::Return { value: None, .. } | HStmt::Break | HStmt::Continue | HStmt::Try { .. } => {}
    }
    exprs
        .into_iter()
        .find_map(|e| unconditional_rec_call(e, is_rec))
}

/// Searches `expr` for a recursive call, skipping short-circuited
/// right-hand sides (which may never evaluate).
fn unconditional_rec_call(expr: &HExpr, is_rec: &dyn Fn(&HExpr) -> bool) -> Option<u32> {
    if is_rec(expr) {
        return expr_line(expr);
    }
    match expr {
        HExpr::Binary {
            op: BinOp::And | BinOp::Or,
            lhs,
            ..
        } => unconditional_rec_call(lhs, is_rec),
        _ => {
            let mut found = None;
            for_each_child(expr, |c| {
                if found.is_none() {
                    found = unconditional_rec_call(c, is_rec);
                }
            });
            found
        }
    }
}

// ---------------------------------------------------------------------------
// AP003: unreachable statement after a terminator
// ---------------------------------------------------------------------------

fn lint_unreachable(func: &HFunction, diags: &mut Vec<Diagnostic>) {
    check_list(&func.body, func, diags);

    fn check_list(stmts: &[HStmt], func: &HFunction, diags: &mut Vec<Diagnostic>) {
        for (i, stmt) in stmts.iter().enumerate() {
            // Recurse into live nested lists.
            match stmt {
                HStmt::If { then, els, .. } => {
                    check_list(then, func, diags);
                    check_list(els, func, diags);
                }
                HStmt::Loop { body, update, .. } => {
                    check_list(body, func, diags);
                    check_list(update, func, diags);
                }
                HStmt::Try { body, handler, .. } => {
                    check_list(body, func, diags);
                    check_list(handler, func, diags);
                }
                _ => {}
            }
            if terminates(stmt) {
                if let Some(next) = stmts.get(i + 1) {
                    let line = stmt_line(next)
                        .or_else(|| stmt_line(stmt))
                        .unwrap_or(func.line);
                    diags.push(Diagnostic::new(
                        Code::Unreachable,
                        &func.name,
                        line,
                        format!(
                            "unreachable statement: control never passes the preceding {}",
                            terminator_name(stmt)
                        ),
                    ));
                }
                // Everything after the terminator is dead; one report per
                // list is enough.
                return;
            }
        }
    }
}

/// Whether control can never flow past `stmt`.
fn terminates(stmt: &HStmt) -> bool {
    match stmt {
        HStmt::Return { .. } | HStmt::Throw { .. } | HStmt::Break | HStmt::Continue => true,
        HStmt::If { cond, then, els } => match cond {
            HExpr::Bool(true) => list_terminates(then),
            HExpr::Bool(false) => list_terminates(els),
            _ => list_terminates(then) && list_terminates(els),
        },
        // `while (true)` without a break at its own level never falls
        // through (it loops or leaves the whole function).
        HStmt::Loop {
            cond: HExpr::Bool(true),
            body,
            update,
            ..
        } => !has_direct_break(body) && !has_direct_break(update),
        _ => false,
    }
}

fn list_terminates(stmts: &[HStmt]) -> bool {
    stmts.iter().any(terminates)
}

fn has_direct_break(stmts: &[HStmt]) -> bool {
    stmts.iter().any(|s| match s {
        HStmt::Break => true,
        HStmt::If { then, els, .. } => has_direct_break(then) || has_direct_break(els),
        HStmt::Try { body, handler, .. } => has_direct_break(body) || has_direct_break(handler),
        // A nested loop captures its own breaks.
        _ => false,
    })
}

fn terminator_name(stmt: &HStmt) -> &'static str {
    match stmt {
        HStmt::Return { .. } => "return",
        HStmt::Throw { .. } => "throw",
        HStmt::Break => "break",
        HStmt::Continue => "continue",
        HStmt::Loop { .. } => "infinite loop",
        _ => "branch (both arms leave the block)",
    }
}

// ---------------------------------------------------------------------------
// AP004: write-only locals and fields
// ---------------------------------------------------------------------------

fn lint_write_only_locals(func: &HFunction, facts: &Facts<'_>, diags: &mut Vec<Diagnostic>) {
    for slot in facts.n_params..facts.stores.len() as u16 {
        let stores = &facts.stores[slot as usize];
        if stores.is_empty() || facts.reads[slot as usize] > 0 || facts.catch_slots.contains(&slot)
        {
            continue;
        }
        let line = stores
            .iter()
            .find_map(|v| expr_line(v))
            .unwrap_or(func.line);
        diags.push(Diagnostic::new(
            Code::WriteOnly,
            &func.name,
            line,
            format!(
                "local variable (slot {slot}) in '{}' is written but never read",
                func.name
            ),
        ));
    }
}

fn lint_write_only_fields(
    bodies: &[HFunction],
    compiled: &CompiledProgram,
    diags: &mut Vec<Diagnostic>,
) {
    let mut written: BTreeMap<FieldId, (String, u32)> = BTreeMap::new();
    let mut read: BTreeSet<FieldId> = BTreeSet::new();

    fn visit_expr(e: &HExpr, read: &mut BTreeSet<FieldId>) {
        if let HExpr::GetField { field, .. } = e {
            read.insert(*field);
        }
        for_each_child(e, |c| visit_expr(c, read));
    }
    fn visit_stmts(
        stmts: &[HStmt],
        func: &HFunction,
        written: &mut BTreeMap<FieldId, (String, u32)>,
        read: &mut BTreeSet<FieldId>,
    ) {
        for s in stmts {
            match s {
                HStmt::Expr(e) => visit_expr(e, read),
                HStmt::StoreLocal { value, .. } => visit_expr(value, read),
                HStmt::StoreField {
                    obj,
                    field,
                    value,
                    line,
                } => {
                    written
                        .entry(*field)
                        .or_insert_with(|| (func.name.clone(), *line));
                    visit_expr(obj, read);
                    visit_expr(value, read);
                }
                HStmt::StoreIndex {
                    arr, idx, value, ..
                } => {
                    visit_expr(arr, read);
                    visit_expr(idx, read);
                    visit_expr(value, read);
                }
                HStmt::If { cond, then, els } => {
                    visit_expr(cond, read);
                    visit_stmts(then, func, written, read);
                    visit_stmts(els, func, written, read);
                }
                HStmt::Loop {
                    cond, body, update, ..
                } => {
                    visit_expr(cond, read);
                    visit_stmts(body, func, written, read);
                    visit_stmts(update, func, written, read);
                }
                HStmt::Return { value, .. } => {
                    if let Some(v) = value {
                        visit_expr(v, read);
                    }
                }
                HStmt::Break | HStmt::Continue => {}
                HStmt::Throw { value, .. } => visit_expr(value, read),
                HStmt::Try { body, handler, .. } => {
                    visit_stmts(body, func, written, read);
                    visit_stmts(handler, func, written, read);
                }
            }
        }
    }

    for func in bodies {
        visit_stmts(&func.body, func, &mut written, &mut read);
    }
    for (field, (func_name, line)) in written {
        if read.contains(&field) {
            continue;
        }
        let info = compiled.field(field);
        let class = &compiled.class(info.class).name;
        diags.push(Diagnostic::new(
            Code::WriteOnly,
            &func_name,
            line,
            format!("field '{class}.{}' is written but never read", info.name),
        ));
    }
}

// ---------------------------------------------------------------------------
// AP005 / AP006: provable traps (interval analysis)
// ---------------------------------------------------------------------------

fn lint_const_traps(func: &HFunction, facts: &Facts<'_>, diags: &mut Vec<Diagnostic>) {
    // Arrays with a compile-time-known length: single-assignment locals
    // initialized from `new T[k]` or an array literal.
    let mut known_len: BTreeMap<u16, i64> = BTreeMap::new();
    for (slot, stores) in facts.stores.iter().enumerate() {
        if let [single] = stores.as_slice() {
            match single {
                HExpr::NewArray { len, .. } => {
                    if let Some(k) = facts.const_eval(len).and_then(|i| i.as_constant()) {
                        known_len.insert(slot as u16, k);
                    }
                }
                HExpr::ArrayLit { elems, .. } => {
                    known_len.insert(slot as u16, elems.len() as i64);
                }
                _ => {}
            }
        }
    }

    let mut check_expr = |e: &HExpr, diags: &mut Vec<Diagnostic>| match e {
        HExpr::GetIndex { arr, idx, line } => {
            check_index(arr, idx, *line, facts, &known_len, func, diags);
        }
        HExpr::Binary {
            op: BinOp::Div | BinOp::Rem,
            rhs,
            line,
            ..
        } if facts.const_eval(rhs).is_some_and(|i| i.is_zero()) => {
            diags.push(Diagnostic::new(
                Code::DivisionByZero,
                &func.name,
                *line,
                "division by a value that is provably zero".to_string(),
            ));
        }
        _ => {}
    };

    fn walk_exprs(
        e: &HExpr,
        f: &mut dyn FnMut(&HExpr, &mut Vec<Diagnostic>),
        d: &mut Vec<Diagnostic>,
    ) {
        f(e, d);
        for_each_child(e, |c| walk_exprs(c, f, d));
    }
    fn walk(
        stmts: &[HStmt],
        f: &mut dyn FnMut(&HExpr, &mut Vec<Diagnostic>),
        facts: &Facts<'_>,
        known_len: &BTreeMap<u16, i64>,
        func: &HFunction,
        d: &mut Vec<Diagnostic>,
    ) {
        for s in stmts {
            match s {
                HStmt::Expr(e) => walk_exprs(e, f, d),
                HStmt::StoreLocal { value, .. } => walk_exprs(value, f, d),
                HStmt::StoreField { obj, value, .. } => {
                    walk_exprs(obj, f, d);
                    walk_exprs(value, f, d);
                }
                HStmt::StoreIndex {
                    arr,
                    idx,
                    value,
                    line,
                } => {
                    check_index(arr, idx, *line, facts, known_len, func, d);
                    walk_exprs(arr, f, d);
                    walk_exprs(idx, f, d);
                    walk_exprs(value, f, d);
                }
                HStmt::If { cond, then, els } => {
                    walk_exprs(cond, f, d);
                    walk(then, f, facts, known_len, func, d);
                    walk(els, f, facts, known_len, func, d);
                }
                HStmt::Loop {
                    cond, body, update, ..
                } => {
                    walk_exprs(cond, f, d);
                    walk(body, f, facts, known_len, func, d);
                    walk(update, f, facts, known_len, func, d);
                }
                HStmt::Return { value, .. } => {
                    if let Some(v) = value {
                        walk_exprs(v, f, d);
                    }
                }
                HStmt::Break | HStmt::Continue => {}
                HStmt::Throw { value, .. } => walk_exprs(value, f, d),
                HStmt::Try { body, handler, .. } => {
                    walk(body, f, facts, known_len, func, d);
                    walk(handler, f, facts, known_len, func, d);
                }
            }
        }
    }
    walk(&func.body, &mut check_expr, facts, &known_len, func, diags);
}

#[allow(clippy::too_many_arguments)]
fn check_index(
    arr: &HExpr,
    idx: &HExpr,
    line: u32,
    facts: &Facts<'_>,
    known_len: &BTreeMap<u16, i64>,
    func: &HFunction,
    diags: &mut Vec<Diagnostic>,
) {
    let HExpr::Local(slot) = arr else { return };
    let Some(&len) = known_len.get(slot) else {
        return;
    };
    let Some(interval) = facts.const_eval(idx) else {
        return;
    };
    // Provably out of bounds: the whole interval misses [0, len).
    if interval.hi < 0 || interval.lo >= len {
        let shown = match interval.as_constant() {
            Some(k) => k.to_string(),
            None => format!("[{}, {}]", interval.lo, interval.hi),
        };
        diags.push(Diagnostic::new(
            Code::IndexOutOfBounds,
            &func.name,
            line,
            format!("array index {shown} is provably out of bounds for length {len}"),
        ));
    }
}
