//! Statement-level lints: AP002–AP007.
//!
//! (AP001, *loop makes no progress*, lives with the bound classifier in
//! [`crate::bounds`] — it shares the loop-effects walk.)

use std::collections::{BTreeMap, BTreeSet};

use algoprof_vm::ast::BinOp;
use algoprof_vm::bytecode::{CompiledProgram, FieldId};
use algoprof_vm::callgraph::{cha_targets, CallGraph};
use algoprof_vm::hir::{HExpr, HFunction, HStmt};

use crate::bounds::{expr_line, for_each_child, stmt_line, Facts};
use crate::diag::{Code, Diagnostic};

/// Runs every statement-level lint over the program.
pub fn lint_program(
    bodies: &[HFunction],
    compiled: &CompiledProgram,
    callgraph: &CallGraph,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for func in bodies {
        let facts = Facts::collect(func);
        lint_no_base_case(func, compiled, callgraph, &mut diags);
        lint_unreachable(func, &mut diags);
        lint_write_only_locals(func, &facts, &mut diags);
        lint_const_traps(func, &facts, &mut diags);
        lint_thread_misuse(func, &facts, &mut diags);
    }
    lint_write_only_fields(bodies, compiled, &mut diags);
    diags
}

// ---------------------------------------------------------------------------
// AP002: recursion with no base case
// ---------------------------------------------------------------------------

/// Outcome of symbolically executing a statement list for AP002.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    /// Every path through the list reaches a recursive call (line of the
    /// first witness).
    Recurses(u32),
    /// Some path leaves the function without recursing — a base case.
    Exits,
    /// Control may fall through to the statements that follow.
    Falls,
}

fn lint_no_base_case(
    func: &HFunction,
    compiled: &CompiledProgram,
    callgraph: &CallGraph,
    diags: &mut Vec<Diagnostic>,
) {
    let f = func.id.index();
    if !callgraph.potentially_recursive[f] {
        return;
    }
    let my_scc = callgraph.scc[f];
    let is_rec = |e: &HExpr| -> bool {
        let (callee, virt) = match e {
            HExpr::CallStatic { func, .. } | HExpr::CallDirect { func, .. } => (*func, false),
            HExpr::CallVirtual { func, .. } => (*func, true),
            HExpr::NewObject { ctor: Some(c), .. } => (*c, false),
            _ => return false,
        };
        if virt {
            cha_targets(compiled, callee)
                .iter()
                .any(|t| callgraph.scc[t.index()] == my_scc)
        } else {
            callgraph.scc[callee.index()] == my_scc
        }
    };
    if let Path::Recurses(line) = scan_stmts(&func.body, &is_rec) {
        diags.push(Diagnostic::new(
            Code::NoBaseCase,
            &func.name,
            line,
            format!(
                "'{}' recurses on every path: no base case can stop the recursion",
                func.name
            ),
        ));
    }
}

fn scan_stmts(stmts: &[HStmt], is_rec: &dyn Fn(&HExpr) -> bool) -> Path {
    for stmt in stmts {
        // A recursive call in a position that always evaluates settles it.
        if let Some(line) = stmt_rec_call(stmt, is_rec) {
            return Path::Recurses(line);
        }
        match stmt {
            HStmt::Return { .. } | HStmt::Throw { .. } => return Path::Exits,
            // Leaving the list via a loop jump: treat as an escaping
            // path so the lint stays conservative inside loops.
            HStmt::Break | HStmt::Continue => return Path::Exits,
            HStmt::If { then, els, .. } => {
                match (scan_stmts(then, is_rec), scan_stmts(els, is_rec)) {
                    (Path::Recurses(l), Path::Recurses(_)) => return Path::Recurses(l),
                    (Path::Exits, _) | (_, Path::Exits) => return Path::Exits,
                    // At least one arm falls through: keep scanning.
                    _ => {}
                }
            }
            HStmt::Try { body, handler, .. } => {
                match (scan_stmts(body, is_rec), scan_stmts(handler, is_rec)) {
                    (Path::Recurses(l), Path::Recurses(_)) => return Path::Recurses(l),
                    (Path::Exits, _) | (_, Path::Exits) => return Path::Exits,
                    _ => {}
                }
            }
            // A loop body may run zero times: only its condition (checked
            // by `stmt_rec_call`) evaluates unconditionally.
            _ => {}
        }
    }
    Path::Falls
}

/// A recursive call in an always-evaluated position of `stmt`, if any.
fn stmt_rec_call(stmt: &HStmt, is_rec: &dyn Fn(&HExpr) -> bool) -> Option<u32> {
    let mut exprs: Vec<&HExpr> = Vec::new();
    match stmt {
        HStmt::Expr(e) => exprs.push(e),
        HStmt::StoreLocal { value, .. } => exprs.push(value),
        HStmt::StoreField { obj, value, .. } => {
            exprs.push(obj);
            exprs.push(value);
        }
        HStmt::StoreIndex {
            arr, idx, value, ..
        } => {
            exprs.push(arr);
            exprs.push(idx);
            exprs.push(value);
        }
        // If and Loop conditions evaluate at least once.
        HStmt::If { cond, .. } | HStmt::Loop { cond, .. } => exprs.push(cond),
        HStmt::Return { value: Some(v), .. } => exprs.push(v),
        HStmt::Throw { value, .. } => exprs.push(value),
        HStmt::Lock { obj, .. } | HStmt::Unlock { obj, .. } => exprs.push(obj),
        HStmt::Return { value: None, .. } | HStmt::Break | HStmt::Continue | HStmt::Try { .. } => {}
    }
    exprs
        .into_iter()
        .find_map(|e| unconditional_rec_call(e, is_rec))
}

/// Searches `expr` for a recursive call, skipping short-circuited
/// right-hand sides (which may never evaluate).
fn unconditional_rec_call(expr: &HExpr, is_rec: &dyn Fn(&HExpr) -> bool) -> Option<u32> {
    if is_rec(expr) {
        return expr_line(expr);
    }
    match expr {
        HExpr::Binary {
            op: BinOp::And | BinOp::Or,
            lhs,
            ..
        } => unconditional_rec_call(lhs, is_rec),
        _ => {
            let mut found = None;
            for_each_child(expr, |c| {
                if found.is_none() {
                    found = unconditional_rec_call(c, is_rec);
                }
            });
            found
        }
    }
}

// ---------------------------------------------------------------------------
// AP003: unreachable statement after a terminator
// ---------------------------------------------------------------------------

fn lint_unreachable(func: &HFunction, diags: &mut Vec<Diagnostic>) {
    check_list(&func.body, func, diags);

    fn check_list(stmts: &[HStmt], func: &HFunction, diags: &mut Vec<Diagnostic>) {
        for (i, stmt) in stmts.iter().enumerate() {
            // Recurse into live nested lists.
            match stmt {
                HStmt::If { then, els, .. } => {
                    check_list(then, func, diags);
                    check_list(els, func, diags);
                }
                HStmt::Loop { body, update, .. } => {
                    check_list(body, func, diags);
                    check_list(update, func, diags);
                }
                HStmt::Try { body, handler, .. } => {
                    check_list(body, func, diags);
                    check_list(handler, func, diags);
                }
                _ => {}
            }
            if terminates(stmt) {
                if let Some(next) = stmts.get(i + 1) {
                    let line = stmt_line(next)
                        .or_else(|| stmt_line(stmt))
                        .unwrap_or(func.line);
                    diags.push(Diagnostic::new(
                        Code::Unreachable,
                        &func.name,
                        line,
                        format!(
                            "unreachable statement: control never passes the preceding {}",
                            terminator_name(stmt)
                        ),
                    ));
                }
                // Everything after the terminator is dead; one report per
                // list is enough.
                return;
            }
        }
    }
}

/// Whether control can never flow past `stmt`.
fn terminates(stmt: &HStmt) -> bool {
    match stmt {
        HStmt::Return { .. } | HStmt::Throw { .. } | HStmt::Break | HStmt::Continue => true,
        HStmt::If { cond, then, els } => match cond {
            HExpr::Bool(true) => list_terminates(then),
            HExpr::Bool(false) => list_terminates(els),
            _ => list_terminates(then) && list_terminates(els),
        },
        // `while (true)` without a break at its own level never falls
        // through (it loops or leaves the whole function).
        HStmt::Loop {
            cond: HExpr::Bool(true),
            body,
            update,
            ..
        } => !has_direct_break(body) && !has_direct_break(update),
        _ => false,
    }
}

fn list_terminates(stmts: &[HStmt]) -> bool {
    stmts.iter().any(terminates)
}

fn has_direct_break(stmts: &[HStmt]) -> bool {
    stmts.iter().any(|s| match s {
        HStmt::Break => true,
        HStmt::If { then, els, .. } => has_direct_break(then) || has_direct_break(els),
        HStmt::Try { body, handler, .. } => has_direct_break(body) || has_direct_break(handler),
        // A nested loop captures its own breaks.
        _ => false,
    })
}

fn terminator_name(stmt: &HStmt) -> &'static str {
    match stmt {
        HStmt::Return { .. } => "return",
        HStmt::Throw { .. } => "throw",
        HStmt::Break => "break",
        HStmt::Continue => "continue",
        HStmt::Loop { .. } => "infinite loop",
        _ => "branch (both arms leave the block)",
    }
}

// ---------------------------------------------------------------------------
// AP004: write-only locals and fields
// ---------------------------------------------------------------------------

fn lint_write_only_locals(func: &HFunction, facts: &Facts<'_>, diags: &mut Vec<Diagnostic>) {
    for slot in facts.n_params..facts.stores.len() as u16 {
        let stores = &facts.stores[slot as usize];
        if stores.is_empty() || facts.reads[slot as usize] > 0 || facts.catch_slots.contains(&slot)
        {
            continue;
        }
        let line = stores
            .iter()
            .find_map(|v| expr_line(v))
            .unwrap_or(func.line);
        diags.push(Diagnostic::new(
            Code::WriteOnly,
            &func.name,
            line,
            format!(
                "local variable (slot {slot}) in '{}' is written but never read",
                func.name
            ),
        ));
    }
}

fn lint_write_only_fields(
    bodies: &[HFunction],
    compiled: &CompiledProgram,
    diags: &mut Vec<Diagnostic>,
) {
    let mut written: BTreeMap<FieldId, (String, u32)> = BTreeMap::new();
    let mut read: BTreeSet<FieldId> = BTreeSet::new();

    fn visit_expr(e: &HExpr, read: &mut BTreeSet<FieldId>) {
        if let HExpr::GetField { field, .. } = e {
            read.insert(*field);
        }
        for_each_child(e, |c| visit_expr(c, read));
    }
    fn visit_stmts(
        stmts: &[HStmt],
        func: &HFunction,
        written: &mut BTreeMap<FieldId, (String, u32)>,
        read: &mut BTreeSet<FieldId>,
    ) {
        for s in stmts {
            match s {
                HStmt::Expr(e) => visit_expr(e, read),
                HStmt::StoreLocal { value, .. } => visit_expr(value, read),
                HStmt::StoreField {
                    obj,
                    field,
                    value,
                    line,
                } => {
                    written
                        .entry(*field)
                        .or_insert_with(|| (func.name.clone(), *line));
                    visit_expr(obj, read);
                    visit_expr(value, read);
                }
                HStmt::StoreIndex {
                    arr, idx, value, ..
                } => {
                    visit_expr(arr, read);
                    visit_expr(idx, read);
                    visit_expr(value, read);
                }
                HStmt::If { cond, then, els } => {
                    visit_expr(cond, read);
                    visit_stmts(then, func, written, read);
                    visit_stmts(els, func, written, read);
                }
                HStmt::Loop {
                    cond, body, update, ..
                } => {
                    visit_expr(cond, read);
                    visit_stmts(body, func, written, read);
                    visit_stmts(update, func, written, read);
                }
                HStmt::Return { value, .. } => {
                    if let Some(v) = value {
                        visit_expr(v, read);
                    }
                }
                HStmt::Break | HStmt::Continue => {}
                HStmt::Throw { value, .. } => visit_expr(value, read),
                HStmt::Try { body, handler, .. } => {
                    visit_stmts(body, func, written, read);
                    visit_stmts(handler, func, written, read);
                }
                HStmt::Lock { obj, .. } | HStmt::Unlock { obj, .. } => visit_expr(obj, read),
            }
        }
    }

    for func in bodies {
        visit_stmts(&func.body, func, &mut written, &mut read);
    }
    for (field, (func_name, line)) in written {
        if read.contains(&field) {
            continue;
        }
        let info = compiled.field(field);
        let class = &compiled.class(info.class).name;
        diags.push(Diagnostic::new(
            Code::WriteOnly,
            &func_name,
            line,
            format!("field '{class}.{}' is written but never read", info.name),
        ));
    }
}

// ---------------------------------------------------------------------------
// AP005 / AP006: provable traps (interval analysis)
// ---------------------------------------------------------------------------

fn lint_const_traps(func: &HFunction, facts: &Facts<'_>, diags: &mut Vec<Diagnostic>) {
    // Arrays with a compile-time-known length: single-assignment locals
    // initialized from `new T[k]` or an array literal.
    let mut known_len: BTreeMap<u16, i64> = BTreeMap::new();
    for (slot, stores) in facts.stores.iter().enumerate() {
        if let [single] = stores.as_slice() {
            match single {
                HExpr::NewArray { len, .. } => {
                    if let Some(k) = facts.const_eval(len).and_then(|i| i.as_constant()) {
                        known_len.insert(slot as u16, k);
                    }
                }
                HExpr::ArrayLit { elems, .. } => {
                    known_len.insert(slot as u16, elems.len() as i64);
                }
                _ => {}
            }
        }
    }

    let mut check_expr = |e: &HExpr, diags: &mut Vec<Diagnostic>| match e {
        HExpr::GetIndex { arr, idx, line } => {
            check_index(arr, idx, *line, facts, &known_len, func, diags);
        }
        HExpr::Binary {
            op: BinOp::Div | BinOp::Rem,
            rhs,
            line,
            ..
        } if facts.const_eval(rhs).is_some_and(|i| i.is_zero()) => {
            diags.push(Diagnostic::new(
                Code::DivisionByZero,
                &func.name,
                *line,
                "division by a value that is provably zero".to_string(),
            ));
        }
        _ => {}
    };

    fn walk_exprs(
        e: &HExpr,
        f: &mut dyn FnMut(&HExpr, &mut Vec<Diagnostic>),
        d: &mut Vec<Diagnostic>,
    ) {
        f(e, d);
        for_each_child(e, |c| walk_exprs(c, f, d));
    }
    fn walk(
        stmts: &[HStmt],
        f: &mut dyn FnMut(&HExpr, &mut Vec<Diagnostic>),
        facts: &Facts<'_>,
        known_len: &BTreeMap<u16, i64>,
        func: &HFunction,
        d: &mut Vec<Diagnostic>,
    ) {
        for s in stmts {
            match s {
                HStmt::Expr(e) => walk_exprs(e, f, d),
                HStmt::StoreLocal { value, .. } => walk_exprs(value, f, d),
                HStmt::StoreField { obj, value, .. } => {
                    walk_exprs(obj, f, d);
                    walk_exprs(value, f, d);
                }
                HStmt::StoreIndex {
                    arr,
                    idx,
                    value,
                    line,
                } => {
                    check_index(arr, idx, *line, facts, known_len, func, d);
                    walk_exprs(arr, f, d);
                    walk_exprs(idx, f, d);
                    walk_exprs(value, f, d);
                }
                HStmt::If { cond, then, els } => {
                    walk_exprs(cond, f, d);
                    walk(then, f, facts, known_len, func, d);
                    walk(els, f, facts, known_len, func, d);
                }
                HStmt::Loop {
                    cond, body, update, ..
                } => {
                    walk_exprs(cond, f, d);
                    walk(body, f, facts, known_len, func, d);
                    walk(update, f, facts, known_len, func, d);
                }
                HStmt::Return { value, .. } => {
                    if let Some(v) = value {
                        walk_exprs(v, f, d);
                    }
                }
                HStmt::Break | HStmt::Continue => {}
                HStmt::Throw { value, .. } => walk_exprs(value, f, d),
                HStmt::Try { body, handler, .. } => {
                    walk(body, f, facts, known_len, func, d);
                    walk(handler, f, facts, known_len, func, d);
                }
                HStmt::Lock { obj, .. } | HStmt::Unlock { obj, .. } => walk_exprs(obj, f, d),
            }
        }
    }
    walk(&func.body, &mut check_expr, facts, &known_len, func, diags);
}

// ---------------------------------------------------------------------------
// AP007: thread-primitive misuse
// ---------------------------------------------------------------------------

/// Flags the ways jay's thread primitives go wrong without tripping the
/// compiler: a `join` of a value that no `spawn` result can reach, the
/// same handle joined twice along one path, an `unlock` with no matching
/// `lock`, a lock still held when the function leaves, and branches or
/// loop bodies that disagree about which locks are held.
///
/// Everything here is per-function and keyed by local slot, so handles
/// and lock objects that flow through fields, arrays, or calls are out
/// of scope — the lint stays conservative (warning-level) by design.
fn lint_thread_misuse(func: &HFunction, facts: &Facts<'_>, diags: &mut Vec<Diagnostic>) {
    let mut joined = BTreeSet::new();
    scan_joins(&func.body, facts, &mut joined, func, diags);

    let mut held: BTreeMap<u16, (u32, u32)> = BTreeMap::new();
    if scan_locks(&func.body, &mut held, func, diags) {
        for (&slot, &(depth, line)) in &held {
            if depth > 0 {
                diags.push(Diagnostic::new(
                    Code::ThreadMisuse,
                    &func.name,
                    line,
                    format!(
                        "lock on local (slot {slot}) in '{}' is never unlocked before the function ends",
                        func.name
                    ),
                ));
            }
        }
    }
}

/// Whether `expr` contains a `spawn` anywhere.
fn contains_spawn(expr: &HExpr) -> bool {
    if matches!(expr, HExpr::Spawn { .. }) {
        return true;
    }
    let mut found = false;
    for_each_child(expr, |c| found = found || contains_spawn(c));
    found
}

/// Whether every store to `slot` is a `spawn` result — the slot is then
/// definitely a thread handle, so a second `join` of it is misuse.
fn is_spawn_local(facts: &Facts<'_>, slot: u16) -> bool {
    facts
        .stores
        .get(slot as usize)
        .is_some_and(|stores| !stores.is_empty() && stores.iter().all(|v| contains_spawn(v)))
}

/// The expressions of `stmt` that evaluate whenever the statement runs
/// (branch and loop bodies excluded — those are path-scanned separately).
fn stmt_exprs(stmt: &HStmt) -> Vec<&HExpr> {
    match stmt {
        HStmt::Expr(e) => vec![e],
        HStmt::StoreLocal { value, .. } => vec![value],
        HStmt::StoreField { obj, value, .. } => vec![obj, value],
        HStmt::StoreIndex {
            arr, idx, value, ..
        } => vec![arr, idx, value],
        HStmt::If { cond, .. } | HStmt::Loop { cond, .. } => vec![cond],
        HStmt::Return { value: Some(v), .. } => vec![v],
        HStmt::Throw { value, .. } => vec![value],
        HStmt::Lock { obj, .. } | HStmt::Unlock { obj, .. } => vec![obj],
        HStmt::Return { value: None, .. } | HStmt::Break | HStmt::Continue | HStmt::Try { .. } => {
            vec![]
        }
    }
}

/// Path-sensitive scan for join misuse. `joined` holds the handle slots
/// already joined on every path reaching the current point.
fn scan_joins(
    stmts: &[HStmt],
    facts: &Facts<'_>,
    joined: &mut BTreeSet<u16>,
    func: &HFunction,
    diags: &mut Vec<Diagnostic>,
) {
    for stmt in stmts {
        for e in stmt_exprs(stmt) {
            check_join_expr(e, facts, joined, func, diags);
        }
        match stmt {
            // A re-store makes the slot a fresh handle (the value was
            // already scanned above, so `t = join t` counts the read).
            HStmt::StoreLocal { slot, .. } => {
                joined.remove(slot);
            }
            HStmt::If { then, els, .. } => {
                let mut a = joined.clone();
                let mut b = joined.clone();
                scan_joins(then, facts, &mut a, func, diags);
                scan_joins(els, facts, &mut b, func, diags);
                // Joined-for-sure afterwards = joined on both arms.
                *joined = &a & &b;
            }
            HStmt::Loop { body, update, .. } => {
                // The body may run zero times: scan it on a throwaway
                // path and keep the pre-loop state. (A join that repeats
                // across iterations is real misuse but not provable
                // here without trip counts.)
                let mut a = joined.clone();
                scan_joins(body, facts, &mut a, func, diags);
                scan_joins(update, facts, &mut a, func, diags);
            }
            HStmt::Try { body, handler, .. } => {
                let mut a = joined.clone();
                let mut b = joined.clone();
                scan_joins(body, facts, &mut a, func, diags);
                scan_joins(handler, facts, &mut b, func, diags);
                *joined = &a & &b;
            }
            _ => {}
        }
    }
}

fn check_join_expr(
    expr: &HExpr,
    facts: &Facts<'_>,
    joined: &mut BTreeSet<u16>,
    func: &HFunction,
    diags: &mut Vec<Diagnostic>,
) {
    if let HExpr::Join { handle, line } = expr {
        if facts.const_eval(handle).is_some() {
            // A compile-time constant can never be a spawn result: the
            // join either traps or waits on an unrelated thread.
            diags.push(Diagnostic::new(
                Code::ThreadMisuse,
                &func.name,
                *line,
                "'join' of a constant value that no 'spawn' result reaches".to_string(),
            ));
        } else if let HExpr::Local(slot) = handle.as_ref() {
            if is_spawn_local(facts, *slot) && !joined.insert(*slot) {
                diags.push(Diagnostic::new(
                    Code::ThreadMisuse,
                    &func.name,
                    *line,
                    format!(
                        "thread handle (slot {slot}) in '{}' is joined twice on the same path",
                        func.name
                    ),
                ));
            }
        }
    }
    for_each_child(expr, |c| check_join_expr(c, facts, joined, func, diags));
}

/// The positive-depth entries of a held-lock map (for path comparison).
fn held_depths(held: &BTreeMap<u16, (u32, u32)>) -> BTreeMap<u16, u32> {
    held.iter()
        .filter(|(_, &(d, _))| d > 0)
        .map(|(&s, &(d, _))| (s, d))
        .collect()
}

/// Per-slot minimum of two held-lock maps (the state that is certain
/// after diverging paths rejoin; avoids cascading reports).
fn held_min(
    a: &BTreeMap<u16, (u32, u32)>,
    b: &BTreeMap<u16, (u32, u32)>,
) -> BTreeMap<u16, (u32, u32)> {
    a.iter()
        .map(|(&s, &(da, line))| {
            let db = b.get(&s).map_or(0, |&(d, _)| d);
            (s, (da.min(db), line))
        })
        .collect()
}

/// Path-sensitive lock-depth scan. `held` maps a lock object's local
/// slot to (depth, line of the first `lock`). Returns whether control
/// can fall out the end of the list.
fn scan_locks(
    stmts: &[HStmt],
    held: &mut BTreeMap<u16, (u32, u32)>,
    func: &HFunction,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    for stmt in stmts {
        match stmt {
            HStmt::Lock {
                obj: HExpr::Local(slot),
                line,
            } => {
                held.entry(*slot).or_insert((0, *line)).0 += 1;
            }
            HStmt::Unlock {
                obj: HExpr::Local(slot),
                line,
            } => match held.get_mut(slot) {
                Some(e) if e.0 > 0 => e.0 -= 1,
                _ => diags.push(Diagnostic::new(
                    Code::ThreadMisuse,
                    &func.name,
                    *line,
                    format!(
                        "'unlock' of local (slot {slot}) in '{}' without a matching 'lock' on this path",
                        func.name
                    ),
                )),
            },
            HStmt::Return { line, .. } | HStmt::Throw { line, .. } => {
                for (&slot, &(depth, _)) in held.iter() {
                    if depth > 0 {
                        diags.push(Diagnostic::new(
                            Code::ThreadMisuse,
                            &func.name,
                            *line,
                            format!(
                                "'{}' leaves while still holding the lock on local (slot {slot})",
                                func.name
                            ),
                        ));
                    }
                }
                return false;
            }
            // A loop jump escapes this list; the enclosing loop's
            // imbalance check covers whatever it left held.
            HStmt::Break | HStmt::Continue => return false,
            HStmt::If { then, els, .. } => {
                let mut a = held.clone();
                let mut b = held.clone();
                let fa = scan_locks(then, &mut a, func, diags);
                let fb = scan_locks(els, &mut b, func, diags);
                match (fa, fb) {
                    (true, true) => {
                        if held_depths(&a) != held_depths(&b) {
                            let line = stmt_line(stmt).unwrap_or(func.line);
                            diags.push(Diagnostic::new(
                                Code::ThreadMisuse,
                                &func.name,
                                line,
                                format!(
                                    "branches of 'if' in '{}' disagree about which locks are held afterwards",
                                    func.name
                                ),
                            ));
                        }
                        *held = held_min(&a, &b);
                    }
                    (true, false) => *held = a,
                    (false, true) => *held = b,
                    (false, false) => return false,
                }
            }
            HStmt::Loop {
                body, update, line, ..
            } => {
                let mut a = held.clone();
                if scan_locks(body, &mut a, func, diags) {
                    scan_locks(update, &mut a, func, diags);
                }
                if held_depths(&a) != held_depths(held) {
                    diags.push(Diagnostic::new(
                        Code::ThreadMisuse,
                        &func.name,
                        *line,
                        format!(
                            "loop body in '{}' changes which locks are held across iterations",
                            func.name
                        ),
                    ));
                }
                // The zero-trip path continues with the pre-loop state.
            }
            HStmt::Try { body, handler, .. } => {
                let mut a = held.clone();
                let mut b = held.clone();
                let fa = scan_locks(body, &mut a, func, diags);
                let fb = scan_locks(handler, &mut b, func, diags);
                match (fa, fb) {
                    (true, true) => *held = held_min(&a, &b),
                    (true, false) => *held = a,
                    (false, true) => *held = b,
                    (false, false) => return false,
                }
            }
            _ => {}
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn check_index(
    arr: &HExpr,
    idx: &HExpr,
    line: u32,
    facts: &Facts<'_>,
    known_len: &BTreeMap<u16, i64>,
    func: &HFunction,
    diags: &mut Vec<Diagnostic>,
) {
    let HExpr::Local(slot) = arr else { return };
    let Some(&len) = known_len.get(slot) else {
        return;
    };
    let Some(interval) = facts.const_eval(idx) else {
        return;
    };
    // Provably out of bounds: the whole interval misses [0, len).
    if interval.hi < 0 || interval.lo >= len {
        let shown = match interval.as_constant() {
            Some(k) => k.to_string(),
            None => format!("[{}, {}]", interval.lo, interval.hi),
        };
        diags.push(Diagnostic::new(
            Code::IndexOutOfBounds,
            &func.name,
            line,
            format!("array index {shown} is provably out of bounds for length {len}"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_source;
    use crate::diag::{Code, Level};

    fn ap007_lines(src: &str) -> Vec<u32> {
        let a = analyze_source(src).expect("compiles");
        a.diagnostics
            .iter()
            .filter(|d| d.code == Code::ThreadMisuse)
            .inspect(|d| assert_eq!(d.level, Level::Warning, "AP007 is advisory"))
            .map(|d| d.span.line)
            .collect()
    }

    #[test]
    fn join_of_constant_fires() {
        let src = "class Main { static int main() {
            int t = 3;
            return join t;
        } }";
        assert_eq!(ap007_lines(src), vec![3]);
    }

    #[test]
    fn double_join_on_one_path_fires() {
        let src = "class Main {
            static int main() {
                int t1 = spawn work(4);
                int a = join t1;
                int b = join t1;
                return a + b;
            }
            static int work(int n) { return n * 2; }
        }";
        assert_eq!(ap007_lines(src), vec![5]);
    }

    #[test]
    fn joins_on_separate_branches_are_clean() {
        let src = "class Main {
            static int main() {
                int t1 = spawn work(4);
                int r = 0;
                if (1 < 2) { r = join t1; } else { r = join t1; }
                return r;
            }
            static int work(int n) { return n * 2; }
        }";
        assert_eq!(ap007_lines(src), Vec::<u32>::new());
    }

    #[test]
    fn respawn_resets_the_joined_state() {
        let src = "class Main {
            static int main() {
                int t = spawn work(4);
                int a = join t;
                t = spawn work(5);
                int b = join t;
                return a + b;
            }
            static int work(int n) { return n * 2; }
        }";
        assert_eq!(ap007_lines(src), Vec::<u32>::new());
    }

    #[test]
    fn lock_without_unlock_fires_at_function_end() {
        let src = "class Main { static int main() {
            Box b = new Box();
            lock b;
            b.v = 1;
            unlock b;
            lock b;
            return b.v;
        } }
        class Box { int v; }";
        // Line 7: the return leaves with the second lock still held.
        assert_eq!(ap007_lines(src), vec![7]);
    }

    #[test]
    fn unlock_without_lock_fires() {
        let src = "class Main { static int main() {
            Box b = new Box();
            b.v = 2;
            unlock b;
            return b.v;
        } }
        class Box { int v; }";
        assert_eq!(ap007_lines(src), vec![4]);
    }

    #[test]
    fn branch_that_forgets_to_unlock_fires() {
        let src = "class Main { static int main() {
            Box b = new Box();
            b.v = 3;
            lock b;
            if (b.v > 0) { unlock b; }
            return b.v;
        } }
        class Box { int v; }";
        assert_eq!(ap007_lines(src), vec![5]);
    }

    #[test]
    fn balanced_critical_sections_are_clean() {
        let src = "class Main {
            static int main() {
                Box b = new Box();
                int t1 = spawn bump(b);
                lock b;
                b.v = b.v + 1;
                unlock b;
                return join t1 + b.v;
            }
            static int bump(Box b) {
                lock b;
                b.v = b.v + 1;
                unlock b;
                return b.v;
            }
        }
        class Box { int v; }";
        assert_eq!(ap007_lines(src), Vec::<u32>::new());
    }

    #[test]
    fn balanced_lock_inside_loop_is_clean() {
        let src = "class Main { static int main() {
            Box b = new Box();
            for (int i = 0; i < 4; i = i + 1) {
                lock b;
                b.v = b.v + 1;
                unlock b;
            }
            return b.v;
        } }
        class Box { int v; }";
        assert_eq!(ap007_lines(src), Vec::<u32>::new());
    }
}
