//! Text and JSON rendering of an [`Analysis`](crate::Analysis).
//!
//! Both renderers are deterministic (diagnostics and predictions are
//! already in canonical order) and the JSON is hand-rolled like the
//! sweep reports — the workspace is dependency-free by design.

use std::fmt::Write as _;

use crate::compose::PredictionKind;
use crate::diag::Level;
use crate::Analysis;

/// Renders the human-readable lint report.
pub fn render_text(analysis: &Analysis, file: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# algoprof lint: {file}");
    let _ = writeln!(out);
    if analysis.diagnostics.is_empty() {
        let _ = writeln!(out, "no findings");
    } else {
        for d in &analysis.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.level, d.code, d.message);
            let _ = writeln!(out, "  --> {}:{}", d.span.function, d.span.line);
        }
    }
    let errors = analysis
        .diagnostics
        .iter()
        .filter(|d| d.level == Level::Error)
        .count();
    let warnings = analysis.diagnostics.len() - errors;
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{errors} error{}, {warnings} warning{}",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    );

    if !analysis.predictions.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "predicted complexity:");
        for p in &analysis.predictions {
            let _ = writeln!(out, "  {}  {}  ({})", p.name, p.class.big_o(), p.detail);
        }
    }
    out
}

/// Renders the machine-readable report.
pub fn render_json(analysis: &Analysis, file: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"file\": {},", json_str(file));
    let _ = writeln!(out, "  \"errors\": {},", analysis.has_errors);
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in analysis.diagnostics.iter().enumerate() {
        let comma = if i + 1 < analysis.diagnostics.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"level\": {}, \"code\": {}, \"function\": {}, \"line\": {}, \"message\": {}}}{comma}",
            json_str(d.level.as_str()),
            json_str(d.code.as_str()),
            json_str(&d.span.function),
            d.span.line,
            json_str(&d.message),
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"predictions\": [\n");
    for (i, p) in analysis.predictions.iter().enumerate() {
        let comma = if i + 1 < analysis.predictions.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"kind\": {}, \"class\": {}, \"function\": {}, \"line\": {}, \"detail\": {}}}{comma}",
            json_str(&p.name),
            json_str(match p.kind {
                PredictionKind::Loop => "loop",
                PredictionKind::Recursion => "recursion",
            }),
            json_str(p.class.big_o()),
            json_str(&p.function),
            p.line,
            json_str(&p.detail),
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }
}
