//! Static-analysis cost: compiling and instrumenting the whole guest
//! corpus (lexer → parser → type checker → codegen → CFG/dominators/
//! loops → call graph SCC → recursive-type detection → rewriting).

use algoprof_bench::harness::Criterion;
use algoprof_bench::{criterion_group, criterion_main};

use algoprof_programs::{insertion_sort_program, table1_programs, SortWorkload};
use algoprof_vm::{compile, InstrumentOptions};

fn bench_analysis(c: &mut Criterion) {
    let sources: Vec<String> = table1_programs()
        .into_iter()
        .map(|p| p.source)
        .chain(std::iter::once(insertion_sort_program(
            SortWorkload::Random,
            100,
            10,
            3,
        )))
        .collect();

    let mut group = c.benchmark_group("analysis");

    group.bench_function("compile_corpus", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for src in &sources {
                total += compile(src).expect("compiles").functions.len();
            }
            total
        })
    });

    let compiled: Vec<_> = sources
        .iter()
        .map(|s| compile(s).expect("compiles"))
        .collect();
    group.bench_function("instrument_corpus", |b| {
        b.iter(|| {
            let mut loops = 0usize;
            for p in &compiled {
                loops += p.instrument(&InstrumentOptions::default()).loops.len();
            }
            loops
        })
    });

    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
