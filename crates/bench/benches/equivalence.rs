//! Ablation: cost of the §2.4 snapshot-equivalence criteria during
//! profiling (SomeElements is the default; AllElements compares full
//! snapshots; SameType scans the registry).

use algoprof_bench::harness::Criterion;
use algoprof_bench::{criterion_group, criterion_main};

use algoprof::{AlgoProf, AlgoProfOptions, EquivalenceCriterion};
use algoprof_programs::{insertion_sort_program, SortWorkload};
use algoprof_vm::{compile, InstrumentOptions, Interp};

fn bench_criteria(c: &mut Criterion) {
    let src = insertion_sort_program(SortWorkload::Random, 41, 10, 1);
    let program = compile(&src)
        .expect("compiles")
        .instrument(&InstrumentOptions::default());

    let mut group = c.benchmark_group("equivalence_criterion");
    for (name, criterion) in [
        ("some_elements", EquivalenceCriterion::SomeElements),
        ("all_elements", EquivalenceCriterion::AllElements),
        ("same_type", EquivalenceCriterion::SameType),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut profiler = AlgoProf::with_options(AlgoProfOptions {
                    criterion,
                    ..AlgoProfOptions::default()
                });
                Interp::new(&program).run(&mut profiler).expect("runs");
                profiler.finish(&program).registry().inputs().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_criteria);
criterion_main!(benches);
