//! Event-pipeline benchmark: per-event dispatch overhead of the unified
//! `EventSink` path and the payoff of single-pass multi-ablation
//! profiling. Records the comparison in `BENCH_events.json` at the
//! workspace root.
//!
//! Two questions, one workload (the fig5 ArrayList-growth program):
//! 1. per-event overhead — the same instrumented execution driving a
//!    `NoopSink`, one live `AlgoProf`, and a `Fanout` of 4 `AlgoProf`s
//!    (one per equivalence criterion);
//! 2. single-pass payoff — `Tee(recorder, Fanout×4)` in one execution
//!    vs the old pipeline of one recording plus 4 replays.
//!
//! Not a `criterion_group!` bench: each measured unit is a whole guest
//! execution, so this harness times runs with `std::time::Instant` and
//! reports min-of-N like the offline harness does.

use std::time::{Duration, Instant};

use algoprof::{profile_trace_with, AlgoProf, AlgoProfOptions, EquivalenceCriterion};
use algoprof_programs::{array_list_program, GrowthPolicy};
use algoprof_trace::{TraceHeader, TraceRecorder};
use algoprof_vm::{compile, CompiledProgram, Fanout, InstrumentOptions, Interp, NoopSink, Tee};

const CRITERIA: [EquivalenceCriterion; 4] = [
    EquivalenceCriterion::SomeElements,
    EquivalenceCriterion::AllElements,
    EquivalenceCriterion::SameArray,
    EquivalenceCriterion::SameType,
];

fn quick_mode() -> bool {
    std::env::var_os("ALGOPROF_BENCH_QUICK").is_some()
}

fn ablation_profilers() -> Vec<AlgoProf> {
    CRITERIA
        .iter()
        .map(|&criterion| {
            AlgoProf::with_options(AlgoProfOptions {
                criterion,
                ..AlgoProfOptions::default()
            })
        })
        .collect()
}

/// Min-of-N wall-clock time of `f`, with the result of the best rep.
fn min_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<(Duration, T)> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let t = start.elapsed();
        if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
            best = Some((t, out));
        }
    }
    best.expect("at least one rep")
}

/// Instructions executed by one run — the per-event denominator.
fn run_events(program: &CompiledProgram) -> u64 {
    Interp::new(program)
        .run(&mut NoopSink)
        .expect("runs")
        .instructions
}

fn main() {
    let (n, reps) = if quick_mode() { (200, 2) } else { (1000, 5) };
    // The noop runs are the headline ns/instr numbers and cheap (~2 ms
    // each), so take many more samples: min-of-k only converges on the
    // true cost once some iteration lands in a quiet scheduling window.
    let noop_reps = if quick_mode() { 2 } else { 40 };
    let src = array_list_program(GrowthPolicy::Doubling, n, 100, 1);
    let instrument = InstrumentOptions::default();
    let program = compile(&src).expect("compiles").instrument(&instrument);
    let fused = program.fuse();
    let header = TraceHeader::new(&src, &instrument, &[]);
    let instructions = run_events(&program);
    assert_eq!(
        instructions,
        run_events(&fused),
        "fusion must not change the logical instruction count"
    );
    println!("group events");
    println!("  workload: fig5 arraylist n={n}, {instructions} instructions, {reps} reps");

    // 1. Per-event dispatch overhead of increasingly loaded sinks —
    //    plus the payoff of profile-guided superinstruction dispatch
    //    (same logical event stream, fewer dispatch-loop iterations).
    let (t_noop, _) = min_of(noop_reps, || run_events(&program));
    let (t_noop_fused, _) = min_of(noop_reps, || run_events(&fused));
    let (t_one, algos_one) = min_of(reps, || {
        let mut prof = AlgoProf::new();
        Interp::new(&program).run(&mut prof).expect("runs");
        prof.finish(&program).algorithms().len()
    });
    let (t_fan4, algos_fan) = min_of(reps, || {
        let mut fan = Fanout::new(ablation_profilers());
        Interp::new(&program).run(&mut fan).expect("runs");
        fan.into_sinks()
            .into_iter()
            .map(|p| p.finish(&program).algorithms().len())
            .sum::<usize>()
    });
    assert!(algos_one > 0 && algos_fan >= 4 * algos_one);
    let per_event = |t: Duration| t.as_secs_f64() * 1e9 / instructions as f64;
    println!(
        "  events/noop_sink        min {t_noop:>12.3?}   ({:.1} ns/instr)",
        per_event(t_noop)
    );
    println!(
        "  events/noop_sink_fused  min {t_noop_fused:>12.3?}   ({:.1} ns/instr)",
        per_event(t_noop_fused)
    );
    println!(
        "  events/fused_dispatch_speedup            {:>12.2}x",
        t_noop.as_secs_f64() / t_noop_fused.as_secs_f64().max(1e-9)
    );
    println!(
        "  events/algoprof_live    min {t_one:>12.3?}   ({:.1} ns/instr)",
        per_event(t_one)
    );
    println!(
        "  events/fanout_4x        min {t_fan4:>12.3?}   ({:.1} ns/instr)",
        per_event(t_fan4)
    );

    // 2. Single pass (Tee + Fanout×4) vs record once + replay 4 times.
    let (t_single, single_algos) = min_of(reps, || {
        let mut bytes = Vec::new();
        let mut sink = Tee::new(
            TraceRecorder::new(&header, &mut bytes),
            Fanout::new(ablation_profilers()),
        );
        Interp::new(&program).run(&mut sink).expect("runs");
        let Tee {
            a: recorder,
            b: fanout,
        } = sink;
        recorder.finish().expect("finishes");
        fanout
            .into_sinks()
            .into_iter()
            .map(|p| p.finish(&program).algorithms().len())
            .sum::<usize>()
    });
    let (t_replay, replay_algos) = min_of(reps, || {
        let mut bytes = Vec::new();
        let mut recorder = TraceRecorder::new(&header, &mut bytes);
        Interp::new(&program).run(&mut recorder).expect("runs");
        recorder.finish().expect("finishes");
        CRITERIA
            .iter()
            .map(|&criterion| {
                let options = AlgoProfOptions {
                    criterion,
                    ..AlgoProfOptions::default()
                };
                profile_trace_with(&bytes, options)
                    .expect("replays")
                    .algorithms()
                    .len()
            })
            .sum::<usize>()
    });
    assert_eq!(single_algos, replay_algos, "both pipelines must agree");
    let speedup = t_replay.as_secs_f64() / t_single.as_secs_f64().max(1e-9);
    println!("  events/single_pass_4x   min {t_single:>12.3?}");
    println!("  events/record_4replays  min {t_replay:>12.3?}");
    println!("  events/single_pass_speedup               {speedup:>12.2}x");

    let json = format!(
        "{{\n  \"bench\": \"events\",\n  \"workload\": \"fig5 arraylist doubling n={n}\",\n  \
         \"quick\": {},\n  \"instructions\": {instructions},\n  \
         \"ns_per_instr\": {{\n    \"noop_sink\": {:.3},\n    \"noop_sink_fused\": {:.3},\n    \
         \"algoprof_live\": {:.3},\n    \
         \"fanout_4x\": {:.3}\n  }},\n  \
         \"wall_ms\": {{\n    \"noop_sink\": {:.3},\n    \"noop_sink_fused\": {:.3},\n    \
         \"algoprof_live\": {:.3},\n    \
         \"fanout_4x\": {:.3},\n    \"single_pass_4x\": {:.3},\n    \
         \"record_4replays\": {:.3}\n  }},\n  \
         \"fused_dispatch_speedup\": {:.3},\n  \
         \"single_pass_speedup\": {speedup:.3}\n}}\n",
        quick_mode(),
        per_event(t_noop),
        per_event(t_noop_fused),
        per_event(t_one),
        per_event(t_fan4),
        t_noop.as_secs_f64() * 1e3,
        t_noop_fused.as_secs_f64() * 1e3,
        t_one.as_secs_f64() * 1e3,
        t_fan4.as_secs_f64() * 1e3,
        t_single.as_secs_f64() * 1e3,
        t_replay.as_secs_f64() * 1e3,
        t_noop.as_secs_f64() / t_noop_fused.as_secs_f64().max(1e-9),
    );
    // cargo runs benches with the package as cwd; anchor the artifact at
    // the workspace root regardless.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_events.json");
    std::fs::write(out, json).expect("writes BENCH_events.json");
    println!("  wrote {out}");
}
