//! Figure 1 as a Criterion benchmark: end-to-end algorithmic profiling
//! of the insertion-sort sweep for each workload, verifying the fitted
//! model class on every iteration.

use algoprof_bench::harness::Criterion;
use algoprof_bench::{criterion_group, criterion_main};

use algoprof_fit::Model;
use algoprof_programs::{insertion_sort_program, SortWorkload};
use algoprof_vm::{compile, InstrumentOptions, Interp};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_sort");
    for (name, workload, expected) in [
        ("random", SortWorkload::Random, Model::Quadratic),
        ("sorted", SortWorkload::Sorted, Model::Linear),
        ("reversed", SortWorkload::Reversed, Model::Quadratic),
    ] {
        let src = insertion_sort_program(workload, 41, 10, 1);
        let program = compile(&src)
            .expect("compiles")
            .instrument(&InstrumentOptions::default());
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut profiler = algoprof::AlgoProf::new();
                Interp::new(&program).run(&mut profiler).expect("runs");
                let profile = profiler.finish(&program);
                let algo = profile
                    .algorithm_by_root_name("List.sort:loop0")
                    .expect("sort algorithm");
                let fit = profile
                    .fit_invocation_steps(algo.id)
                    .expect("enough points");
                assert_eq!(fit.model, expected);
                fit.coeff
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
