//! Figure 5 as a Criterion benchmark: profiling the array-backed list
//! under both growth policies, verifying the crossover (quadratic vs
//! linear) on every iteration.

use algoprof_bench::harness::Criterion;
use algoprof_bench::{criterion_group, criterion_main};

use algoprof_fit::Model;
use algoprof_programs::{array_list_program, GrowthPolicy};
use algoprof_vm::{compile, InstrumentOptions, Interp};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_growth");
    for (name, policy, expected) in [
        ("grow_by_1", GrowthPolicy::ByOne, Model::Quadratic),
        ("doubling", GrowthPolicy::Doubling, Model::Linear),
    ] {
        let src = array_list_program(policy, 65, 8, 1);
        let program = compile(&src)
            .expect("compiles")
            .instrument(&InstrumentOptions::default());
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut profiler = algoprof::AlgoProf::new();
                Interp::new(&program).run(&mut profiler).expect("runs");
                let profile = profiler.finish(&program);
                let algo = profile
                    .algorithm_by_root_name("Main.testForSize:loop0")
                    .expect("append algorithm");
                let fit = profile
                    .fit_invocation_steps(algo.id)
                    .expect("enough points");
                assert_eq!(fit.model, expected);
                fit.coeff
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
