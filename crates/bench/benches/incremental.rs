//! Incremental snapshot cache vs from-scratch traversal.
//!
//! Measures both wall time and the traversal-work counters
//! ([`algoprof::SnapshotStats`]) on the two listings whose re-measurement
//! cost dominates: the ArrayList growth study (Listing 6) and the
//! insertion sort of the running example (Listing 1). The counter report
//! is printed once per workload before the timing runs; `objects` is the
//! figure the incremental cache exists to shrink.

use algoprof_bench::harness::Criterion;
use algoprof_bench::{criterion_group, criterion_main};

use algoprof::{AlgoProf, AlgoProfOptions, IncrementalMode, SnapshotStats};
use algoprof_programs::{array_list_program, insertion_sort_program, GrowthPolicy, SortWorkload};
use algoprof_vm::instrument::MethodInstrumentation;
use algoprof_vm::{compile, CompiledProgram, InstrumentOptions, Interp};

fn run_with(program: &CompiledProgram, incremental: IncrementalMode) -> SnapshotStats {
    let mut profiler = AlgoProf::with_options(AlgoProfOptions {
        incremental,
        ..AlgoProfOptions::default()
    });
    Interp::new(program).run(&mut profiler).expect("runs");
    profiler.snapshot_stats()
}

fn report(label: &str, full: &SnapshotStats, inc: &SnapshotStats) {
    let ratio = |a: u64, b: u64| a as f64 / b.max(1) as f64;
    println!(
        "  {label}: objects {} -> {} ({:.1}x), arrays {} -> {} ({:.1}x), elements {} -> {} ({:.1}x)",
        full.objects_traversed,
        inc.objects_traversed,
        ratio(full.objects_traversed, inc.objects_traversed),
        full.arrays_traversed,
        inc.arrays_traversed,
        ratio(full.arrays_traversed, inc.arrays_traversed),
        full.elements_scanned,
        inc.elements_scanned,
        ratio(full.elements_scanned, inc.elements_scanned),
    );
    println!(
        "  {label}: full walks {} -> {}, cache hits {}, partial redos {}",
        full.full_walks, inc.full_walks, inc.cache_hits, inc.partial_redos
    );
}

fn bench_workload(c: &mut Criterion, group_name: &str, src: &str, opts: &InstrumentOptions) {
    let program = compile(src).expect("compiles").instrument(opts);

    let full = run_with(&program, IncrementalMode::Disabled);
    let inc = run_with(&program, IncrementalMode::Enabled);
    println!("group {group_name} (traversal work)");
    report("reduction", &full, &inc);

    let mut group = c.benchmark_group(group_name);
    for (name, mode) in [
        ("full", IncrementalMode::Disabled),
        ("incremental", IncrementalMode::Enabled),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| run_with(&program, mode).traversal_work())
        });
    }
    group.finish();
}

fn bench_arraylist_growth(c: &mut Criterion) {
    // One testForSize run of 10^4 appends (plus a size-1 warmup pass),
    // doubling growth so the guest itself stays near-linear. Full
    // method instrumentation makes every append() a measured algorithm,
    // so the backing array is re-measured once per append — the regime
    // where the from-scratch traversal goes quadratic and the write-log
    // replay stays linear.
    let src = array_list_program(GrowthPolicy::Doubling, 10_002, 10_000, 1);
    let opts = InstrumentOptions {
        methods: MethodInstrumentation::All,
        ..InstrumentOptions::default()
    };
    bench_workload(c, "incremental_arraylist", &src, &opts);
}

fn bench_insertion_sort(c: &mut Criterion) {
    // Sizes 0, 40, 80, ..., 240 of the paper's running example.
    let src = insertion_sort_program(SortWorkload::Random, 241, 40, 1);
    bench_workload(c, "incremental_sort", &src, &InstrumentOptions::default());
}

criterion_group!(benches, bench_arraylist_growth, bench_insertion_sort);
criterion_main!(benches);
