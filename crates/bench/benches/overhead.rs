//! Criterion benchmark: interpretation overhead of each profiling level
//! (paper §5's overhead discussion, measured rigorously).

use algoprof_bench::harness::Criterion;
use algoprof_bench::{criterion_group, criterion_main};

use algoprof::AlgoProf;
use algoprof_cct::CctProfiler;
use algoprof_programs::{insertion_sort_program, SortWorkload};
use algoprof_vm::instrument::{InstrumentOptions, MethodInstrumentation};
use algoprof_vm::{compile, CompiledProgram, Interp, NoopProfiler};

fn programs() -> (CompiledProgram, CompiledProgram, CompiledProgram) {
    let src = insertion_sort_program(SortWorkload::Random, 41, 10, 1);
    let plain = compile(&src).expect("compiles");
    let instrumented = plain.instrument(&InstrumentOptions::default());
    let cct = plain.instrument(&InstrumentOptions {
        methods: MethodInstrumentation::All,
        ..InstrumentOptions::default()
    });
    (plain, instrumented, cct)
}

fn bench_overhead(c: &mut Criterion) {
    let (plain, instrumented, cct_program) = programs();
    let mut group = c.benchmark_group("overhead");

    group.bench_function("uninstrumented", |b| {
        b.iter(|| {
            Interp::new(&plain)
                .run(&mut NoopProfiler)
                .expect("runs")
                .instructions
        })
    });

    group.bench_function("instrumented_noop", |b| {
        b.iter(|| {
            Interp::new(&instrumented)
                .run(&mut NoopProfiler)
                .expect("runs")
                .instructions
        })
    });

    group.bench_function("cct_profiler", |b| {
        b.iter(|| {
            let mut profiler = CctProfiler::new();
            Interp::new(&cct_program).run(&mut profiler).expect("runs");
            profiler.finish(&cct_program).nodes().len()
        })
    });

    group.bench_function("algoprof", |b| {
        b.iter(|| {
            let mut profiler = AlgoProf::new();
            Interp::new(&instrumented).run(&mut profiler).expect("runs");
            profiler.finish(&instrumented).algorithms().len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
