//! Ablation: array sizing strategies (§3.4) — capacity vs
//! unique-element counting — on the array-heavy Listing-6 workload.

use algoprof_bench::harness::Criterion;
use algoprof_bench::{criterion_group, criterion_main};

use algoprof::{AlgoProf, AlgoProfOptions, ArraySizeStrategy};
use algoprof_programs::{array_list_program, GrowthPolicy};
use algoprof_vm::{compile, InstrumentOptions, Interp};

fn bench_sizing(c: &mut Criterion) {
    let src = array_list_program(GrowthPolicy::Doubling, 65, 8, 1);
    let program = compile(&src)
        .expect("compiles")
        .instrument(&InstrumentOptions::default());

    let mut group = c.benchmark_group("array_sizing");
    for (name, strategy) in [
        ("capacity", ArraySizeStrategy::Capacity),
        ("unique_elements", ArraySizeStrategy::UniqueElements),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut profiler = AlgoProf::with_options(AlgoProfOptions {
                    array_strategy: strategy,
                    ..AlgoProfOptions::default()
                });
                Interp::new(&program).run(&mut profiler).expect("runs");
                profiler.finish(&program).algorithms().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sizing);
criterion_main!(benches);
