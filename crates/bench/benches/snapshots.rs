//! Ablation: the paper's `remeasureInputs` first/last snapshot
//! optimization vs snapshotting at every access (§3.4).

use algoprof_bench::harness::Criterion;
use algoprof_bench::{criterion_group, criterion_main};

use algoprof::{AlgoProf, AlgoProfOptions, SnapshotPolicy};
use algoprof_programs::{insertion_sort_program, SortWorkload};
use algoprof_vm::{compile, InstrumentOptions, Interp};

fn bench_snapshot_policies(c: &mut Criterion) {
    let src = insertion_sort_program(SortWorkload::Random, 41, 10, 1);
    let program = compile(&src)
        .expect("compiles")
        .instrument(&InstrumentOptions::default());

    let mut group = c.benchmark_group("snapshot_policy");
    for (name, policy) in [
        ("first_and_last", SnapshotPolicy::FirstAndLast),
        ("every_access", SnapshotPolicy::EveryAccess),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut profiler = AlgoProf::with_options(AlgoProfOptions {
                    snapshot_policy: policy,
                    ..AlgoProfOptions::default()
                });
                Interp::new(&program).run(&mut profiler).expect("runs");
                profiler.finish(&program).algorithms().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot_policies);
criterion_main!(benches);
