//! Sweep-engine benchmark: profiles the fig5/listings corpus as one
//! batch at `-j 1` and `-j 4`, verifies the two reports are
//! byte-identical (the engine's determinism contract), and records the
//! parallel speedup in `BENCH_sweep.json` at the workspace root.
//!
//! Not a `criterion_group!` bench: the measured unit is a whole sweep,
//! so this harness times full `run_sweep` calls with `std::time::Instant`
//! and reports min-of-N like the offline harness does.

use std::time::{Duration, Instant};

use algoprof::{
    run_sweep, AlgoProfOptions, EquivalenceCriterion, JobSpec, SweepAblation, SweepConfig,
    SweepJob, SweepReport,
};
use algoprof_programs::{
    sized_array_list_program, sized_insertion_sort_program, GrowthPolicy, SortWorkload,
};
use algoprof_serve::{client, Server, ServerAddr, ServerConfig};

fn quick_mode() -> bool {
    std::env::var_os("ALGOPROF_BENCH_QUICK").is_some()
}

/// The benchmark corpus: every sweep-corpus listing × every size.
fn corpus_jobs(sizes: &[u64]) -> Vec<SweepJob> {
    let programs = [
        (
            "arraylist_by1",
            sized_array_list_program(GrowthPolicy::ByOne),
        ),
        (
            "arraylist_dbl",
            sized_array_list_program(GrowthPolicy::Doubling),
        ),
        (
            "insertion_sort",
            sized_insertion_sort_program(SortWorkload::Random),
        ),
    ];
    let mut jobs = Vec::new();
    for (name, source) in &programs {
        for &size in sizes {
            jobs.push(SweepJob::for_program_size(name, source, size));
        }
    }
    jobs
}

/// All four equivalence-criterion ablations, exercising the
/// single-pass fanout half of the engine.
fn ablations() -> Vec<SweepAblation> {
    [
        ("some", EquivalenceCriterion::SomeElements),
        ("all", EquivalenceCriterion::AllElements),
        ("array", EquivalenceCriterion::SameArray),
        ("type", EquivalenceCriterion::SameType),
    ]
    .into_iter()
    .map(|(name, criterion)| {
        let mut a = SweepAblation {
            name: name.to_string(),
            ..SweepAblation::default()
        };
        a.options.criterion = criterion;
        a
    })
    .collect()
}

/// Runs the corpus sweep once at the given worker count, returning the
/// report and the wall-clock time.
fn timed_sweep(jobs: &[SweepJob], workers: usize) -> (SweepReport, Duration) {
    let config = SweepConfig {
        ablations: ablations(),
        workers,
        progress: false,
        program: "fig5/listings corpus".to_string(),
    };
    let start = Instant::now();
    let report = run_sweep(jobs, &config).expect("corpus sweep succeeds");
    (report, start.elapsed())
}

/// Distinct profile jobs for the serve throughput phase: every corpus
/// listing × every size is its own cache key.
fn serve_jobs(sizes: &[u64]) -> Vec<JobSpec> {
    let programs = [
        (
            "arraylist_by1",
            sized_array_list_program(GrowthPolicy::ByOne),
        ),
        (
            "arraylist_dbl",
            sized_array_list_program(GrowthPolicy::Doubling),
        ),
        (
            "insertion_sort",
            sized_insertion_sort_program(SortWorkload::Random),
        ),
    ];
    let mut jobs = Vec::new();
    for (name, source) in &programs {
        for &size in sizes {
            jobs.push(JobSpec::Profile {
                program: (*name).to_string(),
                source: source.clone(),
                input: vec![size as i64],
                options: AlgoProfOptions::default(),
            });
        }
    }
    jobs
}

/// Submits every job from `clients` concurrent threads and waits for
/// all of them, returning the wall-clock time.
fn saturate(addr: &ServerAddr, jobs: &[JobSpec], clients: usize) -> Duration {
    let next = std::sync::atomic::AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let Some(spec) = jobs.get(i) else { break };
                let submitted = client::submit(addr, spec).expect("submit accepted");
                client::wait(addr, &submitted.id).expect("job finishes");
            });
        }
    });
    start.elapsed()
}

/// Measures the serve daemon: jobs/sec with every client thread busy
/// (cold cache, all misses) and the cache hit rate when the identical
/// batch is resubmitted warm.
fn serve_benchmark(sizes: &[u64]) -> (f64, f64) {
    let jobs = serve_jobs(sizes);
    let clients = 4;
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("serve daemon binds");
    let addr = ServerAddr::Tcp(server.addr().expect("tcp address").to_string());

    let cold = saturate(&addr, &jobs, clients);
    let before = client::cache_stats(&addr).expect("cache stats");
    let warm = saturate(&addr, &jobs, clients);
    let after = client::cache_stats(&addr).expect("cache stats");
    server.shutdown();

    let jobs_per_sec = jobs.len() as f64 / cold.as_secs_f64().max(1e-9);
    let hit_rate = (after.hits - before.hits) as f64 / jobs.len() as f64;
    println!(
        "  serve/jobs_per_sec(cold, {clients} clients)    {jobs_per_sec:>12.1}   ({} jobs in {cold:.3?})",
        jobs.len()
    );
    println!(
        "  serve/cache_hit_rate(warm resubmission)  {hit_rate:>12.3}   (warm pass {warm:.3?})"
    );
    (jobs_per_sec, hit_rate)
}

fn main() {
    let sizes: &[u64] = if quick_mode() {
        &[8, 16, 24]
    } else {
        &[16, 32, 48, 64, 96, 128]
    };
    let reps = if quick_mode() { 1 } else { 3 };
    let jobs = corpus_jobs(sizes);
    let analyses = jobs.len() * 4;
    println!("group sweep");
    println!(
        "  corpus: {} jobs ({} analyses), sizes {:?}",
        jobs.len(),
        analyses,
        sizes
    );

    let mut results: Vec<(usize, Duration, SweepReport)> = Vec::new();
    for workers in [1usize, 4] {
        let mut best: Option<(SweepReport, Duration)> = None;
        for _ in 0..reps {
            let (report, t) = timed_sweep(&jobs, workers);
            if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                best = Some((report, t));
            }
        }
        let (report, t) = best.expect("at least one rep");
        println!("  sweep/-j{workers:<38} min {t:>12.3?}   ({reps} reps)");
        results.push((workers, t, report));
    }

    let (_, t1, report1) = &results[0];
    let (_, t4, report4) = &results[1];

    // Determinism contract: the merged report must not depend on -j.
    assert_eq!(
        report1.render_json(),
        report4.render_json(),
        "-j 1 and -j 4 reports must be byte-identical"
    );
    assert_eq!(report1.render_text(), report4.render_text());

    let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
    let cpus = algoprof::default_workers();
    println!("  sweep/speedup(-j4 vs -j1)                {speedup:>12.2}x   (host cpus: {cpus})");
    if !quick_mode() && speedup < 2.0 && cpus >= 4 {
        println!("  WARNING: speedup below the 2x target (machine may be loaded)");
    }
    if cpus < 2 {
        println!("  NOTE: single-cpu host; speedup here measures scheduling overhead only");
    }

    // The persistent-service half: throughput at saturation and the
    // warm-resubmission hit rate (1.0 means every repeat skipped
    // execution).
    let (serve_jobs_per_sec, serve_cache_hit_rate) = serve_benchmark(sizes);

    // Persist the run: timings plus the deterministic report itself.
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"corpus\": \"fig5/listings\",\n  \
         \"jobs\": {},\n  \"analyses\": {},\n  \"quick\": {},\n  \"host_cpus\": {cpus},\n  \
         \"wall_ms_j1\": {:.3},\n  \"wall_ms_j4\": {:.3},\n  \"speedup_j4\": {:.3},\n  \
         \"serve_jobs_per_sec\": {serve_jobs_per_sec:.1},\n  \
         \"serve_cache_hit_rate\": {serve_cache_hit_rate:.3},\n  \
         \"report\": {}\n}}\n",
        jobs.len(),
        analyses,
        quick_mode(),
        t1.as_secs_f64() * 1e3,
        t4.as_secs_f64() * 1e3,
        speedup,
        indent_tail(&report1.render_json(), "  "),
    );
    // cargo runs benches with the package as cwd; anchor the artifact at
    // the workspace root regardless.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(out, json).expect("writes BENCH_sweep.json");
    println!("  wrote {out}");
}

/// Re-indents every line after the first so nested JSON stays readable.
fn indent_tail(json: &str, pad: &str) -> String {
    let mut lines = json.trim_end().lines();
    let mut out = String::from(lines.next().unwrap_or("{}"));
    for line in lines {
        out.push('\n');
        out.push_str(pad);
        out.push_str(line);
    }
    out
}
