//! Sweep-engine benchmark: profiles the fig5/listings corpus as one
//! batch at `-j 1` and `-j 4`, verifies the two reports are
//! byte-identical (the engine's determinism contract), and records the
//! parallel speedup in `BENCH_sweep.json` at the workspace root.
//!
//! Not a `criterion_group!` bench: the measured unit is a whole sweep,
//! so this harness times full `run_sweep` calls with `std::time::Instant`
//! and reports min-of-N like the offline harness does.

use std::time::{Duration, Instant};

use algoprof::{
    run_sweep, EquivalenceCriterion, SweepAblation, SweepConfig, SweepJob, SweepReport,
};
use algoprof_programs::{
    sized_array_list_program, sized_insertion_sort_program, GrowthPolicy, SortWorkload,
};

fn quick_mode() -> bool {
    std::env::var_os("ALGOPROF_BENCH_QUICK").is_some()
}

/// The benchmark corpus: every sweep-corpus listing × every size.
fn corpus_jobs(sizes: &[u64]) -> Vec<SweepJob> {
    let programs = [
        (
            "arraylist_by1",
            sized_array_list_program(GrowthPolicy::ByOne),
        ),
        (
            "arraylist_dbl",
            sized_array_list_program(GrowthPolicy::Doubling),
        ),
        (
            "insertion_sort",
            sized_insertion_sort_program(SortWorkload::Random),
        ),
    ];
    let mut jobs = Vec::new();
    for (name, source) in &programs {
        for &size in sizes {
            jobs.push(SweepJob::for_program_size(name, source, size));
        }
    }
    jobs
}

/// All four equivalence-criterion ablations, exercising the
/// single-pass fanout half of the engine.
fn ablations() -> Vec<SweepAblation> {
    [
        ("some", EquivalenceCriterion::SomeElements),
        ("all", EquivalenceCriterion::AllElements),
        ("array", EquivalenceCriterion::SameArray),
        ("type", EquivalenceCriterion::SameType),
    ]
    .into_iter()
    .map(|(name, criterion)| {
        let mut a = SweepAblation {
            name: name.to_string(),
            ..SweepAblation::default()
        };
        a.options.criterion = criterion;
        a
    })
    .collect()
}

/// Runs the corpus sweep once at the given worker count, returning the
/// report and the wall-clock time.
fn timed_sweep(jobs: &[SweepJob], workers: usize) -> (SweepReport, Duration) {
    let config = SweepConfig {
        ablations: ablations(),
        workers,
        progress: false,
        program: "fig5/listings corpus".to_string(),
    };
    let start = Instant::now();
    let report = run_sweep(jobs, &config).expect("corpus sweep succeeds");
    (report, start.elapsed())
}

fn main() {
    let sizes: &[u64] = if quick_mode() {
        &[8, 16, 24]
    } else {
        &[16, 32, 48, 64, 96, 128]
    };
    let reps = if quick_mode() { 1 } else { 3 };
    let jobs = corpus_jobs(sizes);
    let analyses = jobs.len() * 4;
    println!("group sweep");
    println!(
        "  corpus: {} jobs ({} analyses), sizes {:?}",
        jobs.len(),
        analyses,
        sizes
    );

    let mut results: Vec<(usize, Duration, SweepReport)> = Vec::new();
    for workers in [1usize, 4] {
        let mut best: Option<(SweepReport, Duration)> = None;
        for _ in 0..reps {
            let (report, t) = timed_sweep(&jobs, workers);
            if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                best = Some((report, t));
            }
        }
        let (report, t) = best.expect("at least one rep");
        println!("  sweep/-j{workers:<38} min {t:>12.3?}   ({reps} reps)");
        results.push((workers, t, report));
    }

    let (_, t1, report1) = &results[0];
    let (_, t4, report4) = &results[1];

    // Determinism contract: the merged report must not depend on -j.
    assert_eq!(
        report1.render_json(),
        report4.render_json(),
        "-j 1 and -j 4 reports must be byte-identical"
    );
    assert_eq!(report1.render_text(), report4.render_text());

    let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
    let cpus = algoprof::default_workers();
    println!("  sweep/speedup(-j4 vs -j1)                {speedup:>12.2}x   (host cpus: {cpus})");
    if !quick_mode() && speedup < 2.0 && cpus >= 4 {
        println!("  WARNING: speedup below the 2x target (machine may be loaded)");
    }
    if cpus < 2 {
        println!("  NOTE: single-cpu host; speedup here measures scheduling overhead only");
    }

    // Persist the run: timings plus the deterministic report itself.
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"corpus\": \"fig5/listings\",\n  \
         \"jobs\": {},\n  \"analyses\": {},\n  \"quick\": {},\n  \"host_cpus\": {cpus},\n  \
         \"wall_ms_j1\": {:.3},\n  \"wall_ms_j4\": {:.3},\n  \"speedup_j4\": {:.3},\n  \
         \"report\": {}\n}}\n",
        jobs.len(),
        analyses,
        quick_mode(),
        t1.as_secs_f64() * 1e3,
        t4.as_secs_f64() * 1e3,
        speedup,
        indent_tail(&report1.render_json(), "  "),
    );
    // cargo runs benches with the package as cwd; anchor the artifact at
    // the workspace root regardless.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(out, json).expect("writes BENCH_sweep.json");
    println!("  wrote {out}");
}

/// Re-indents every line after the first so nested JSON stays readable.
fn indent_tail(json: &str, pad: &str) -> String {
    let mut lines = json.trim_end().lines();
    let mut out = String::from(lines.next().unwrap_or("{}"));
    for line in lines {
        out.push('\n');
        out.push_str(pad);
        out.push_str(line);
    }
    out
}
