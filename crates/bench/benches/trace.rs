//! Criterion benchmark: cost of trace recording and the payoff of
//! replay-based re-analysis (`algoprof-trace`).
//!
//! Three questions, one workload (the fig5 ArrayList-growth program):
//! 1. recording overhead — instrumented run + `TraceRecorder` vs the
//!    same run with `NoopProfiler`;
//! 2. record-while-profiling overhead — `TraceRecorder` teeing into a
//!    live `AlgoProf` vs the live `AlgoProf` alone;
//! 3. re-analysis speedup — the 4-criteria ablation served from one
//!    recording vs 4 full live re-executions.

use algoprof_bench::harness::Criterion;
use algoprof_bench::{criterion_group, criterion_main};

use algoprof::{
    profile_source_with, profile_trace_with, record_source_with, AlgoProf, AlgoProfOptions,
    EquivalenceCriterion,
};
use algoprof_programs::{array_list_program, GrowthPolicy};
use algoprof_trace::{TraceHeader, TraceRecorder};
use algoprof_vm::{compile, InstrumentOptions, Interp, NoopProfiler, Tee};

const CRITERIA: [EquivalenceCriterion; 4] = [
    EquivalenceCriterion::SomeElements,
    EquivalenceCriterion::AllElements,
    EquivalenceCriterion::SameArray,
    EquivalenceCriterion::SameType,
];

fn bench_trace(c: &mut Criterion) {
    let src = array_list_program(GrowthPolicy::Doubling, 1000, 100, 1);
    let instrument = InstrumentOptions::default();
    let program = compile(&src).expect("compiles").instrument(&instrument);
    let header = TraceHeader::new(&src, &instrument, &[]);

    let mut group = c.benchmark_group("trace");

    // 1. Recording overhead over a no-op instrumented run.
    group.bench_function("instrumented_noop", |b| {
        b.iter(|| {
            Interp::new(&program)
                .run(&mut NoopProfiler)
                .expect("runs")
                .instructions
        })
    });
    group.bench_function("record_only", |b| {
        b.iter(|| {
            let mut rec = TraceRecorder::new(&header, Vec::new());
            Interp::new(&program).run(&mut rec).expect("runs");
            rec.finish().expect("finishes").total_bytes
        })
    });

    // 2. Recording while profiling (tee) over plain live profiling.
    group.bench_function("live_algoprof", |b| {
        b.iter(|| {
            let mut prof = AlgoProf::new();
            Interp::new(&program).run(&mut prof).expect("runs");
            prof.finish(&program).algorithms().len()
        })
    });
    group.bench_function("record_tee_algoprof", |b| {
        b.iter(|| {
            let mut sink = Tee::new(TraceRecorder::new(&header, Vec::new()), AlgoProf::new());
            Interp::new(&program).run(&mut sink).expect("runs");
            let Tee { a: rec, b: prof } = sink;
            let stats = rec.finish().expect("finishes");
            (stats.total_bytes, prof.finish(&program).algorithms().len())
        })
    });

    // 3. The ablation study: one recording analyzed 4 ways vs 4 live runs.
    let trace = record_source_with(&src, &instrument, &[]).expect("records");
    group.bench_function("ablation_4x_replay", |b| {
        b.iter(|| {
            let mut algos = 0usize;
            for criterion in CRITERIA {
                let options = AlgoProfOptions {
                    criterion,
                    ..AlgoProfOptions::default()
                };
                algos += profile_trace_with(&trace, options)
                    .expect("replays")
                    .algorithms()
                    .len();
            }
            algos
        })
    });
    group.bench_function("ablation_4x_live", |b| {
        b.iter(|| {
            let mut algos = 0usize;
            for criterion in CRITERIA {
                let options = AlgoProfOptions {
                    criterion,
                    ..AlgoProfOptions::default()
                };
                algos += profile_source_with(&src, &instrument, options, &[])
                    .expect("profiles")
                    .algorithms()
                    .len();
            }
            algos
        })
    });

    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
