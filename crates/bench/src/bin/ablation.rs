//! Ablation: grouping strategies over Table 1.
//!
//! Replays the 18 Table-1 programs under each grouping strategy:
//!
//! * `SharedInput` — the paper's heuristic (reproduces the x/*/− column);
//! * `SharedInputOrIndexFlow` — the paper's §4.1 proposed dataflow fix
//!   (implemented in `algoprof_vm::indexflow`), which repairs the two
//!   `−` rows without disturbing the others;
//! * `SameMethod` — the coarse alternative §2.5 mentions.

use algoprof::{AlgoProfOptions, GroupingStrategy};
use algoprof_programs::table1_programs;
use algoprof_vm::InstrumentOptions;

fn main() {
    let strategies = [
        ("shared-input", GroupingStrategy::SharedInput),
        ("index-flow", GroupingStrategy::SharedInputOrIndexFlow),
        ("same-method", GroupingStrategy::SameMethod),
    ];

    println!("Grouping-strategy ablation over Table 1");
    println!(
        "{:35} {:>14} {:>14} {:>14}",
        "program", "shared-input", "index-flow", "same-method"
    );
    println!("{}", "-".repeat(80));

    let mut grouped_counts = [0usize; 3];
    for p in table1_programs() {
        let mut cells = Vec::new();
        for (i, (_, strategy)) in strategies.iter().enumerate() {
            let opts = AlgoProfOptions {
                grouping: *strategy,
                ..AlgoProfOptions::default()
            };
            let profile =
                algoprof::profile_source_with(&p.source, &InstrumentOptions::default(), opts, &[])
                    .expect("profiles");
            let outcome = p.evaluate(&profile);
            if outcome.observed_grouped {
                grouped_counts[i] += 1;
            }
            cells.push(if outcome.observed_grouped {
                "grouped"
            } else {
                "split"
            });
        }
        println!(
            "{:35} {:>14} {:>14} {:>14}",
            p.name, cells[0], cells[1], cells[2]
        );
    }
    println!("{}", "-".repeat(80));
    println!(
        "{:35} {:>14} {:>14} {:>14}",
        "rows grouped (of 18)", grouped_counts[0], grouped_counts[1], grouped_counts[2]
    );
    println!(
        "\npaper: shared-input groups 16/18 (the two 2-d array rows split);\n\
         the section-4.1 dataflow refinement is expected to reach 18/18."
    );
}
