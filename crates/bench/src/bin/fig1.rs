//! Figure 1 — cost functions of insertion sort.
//!
//! Runs the paper's running example (Listing 1 + Listing 2 harness) under
//! the algorithmic profiler for three workloads and prints the
//! ⟨list length, algorithmic steps⟩ series the figure plots, with the
//! automatically fitted cost functions:
//!
//! * (a) random input  → steps ≈ 0.25·n²,
//! * (b) sorted input  → steps ≈ n,
//! * (c) reversed input → steps ≈ 0.5·n².

use algoprof_bench::{report_algorithm, SweepArgs};
use algoprof_programs::{insertion_sort_program, SortWorkload};

fn main() {
    let args = SweepArgs::parse(121, 10, 3);
    println!("Figure 1: insertion sort cost functions");
    println!(
        "(sizes 0..{} step {}, {} runs per size)\n",
        args.max_size, args.step, args.reps
    );

    for (panel, workload) in [
        ("a", SortWorkload::Random),
        ("b", SortWorkload::Sorted),
        ("c", SortWorkload::Reversed),
    ] {
        let src = insertion_sort_program(workload, args.max_size, args.step, args.reps);
        let profile = algoprof::profile_source(&src).expect("running example profiles");
        println!("--- Figure 1({panel}): {workload} input ---");
        report_algorithm(&profile, "List.sort:loop0", "List.sort");
        println!();
    }
}
