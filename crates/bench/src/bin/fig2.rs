//! Figure 2 — the traditional profile the paper contrasts with.
//!
//! Runs the same running example under the calling-context-tree baseline
//! profiler and prints the CCT with call counts and inclusive/exclusive
//! "time" (interpreted instructions). The expected shape: `List.append`
//! and the `Node` constructor are the most frequently called methods,
//! and `List.sort` is the hottest by exclusive time.

use algoprof_bench::SweepArgs;
use algoprof_cct::CctProfiler;
use algoprof_programs::{insertion_sort_program, SortWorkload};
use algoprof_vm::instrument::{InstrumentOptions, MethodInstrumentation};
use algoprof_vm::{compile, Interp};

fn main() {
    let args = SweepArgs::parse(61, 10, 2);
    println!("Figure 2: traditional calling-context-tree profile");
    println!(
        "(sizes 0..{} step {}, {} runs per size)\n",
        args.max_size, args.step, args.reps
    );

    let src = insertion_sort_program(SortWorkload::Random, args.max_size, args.step, args.reps);
    let opts = InstrumentOptions {
        methods: MethodInstrumentation::All,
        ..InstrumentOptions::default()
    };
    let program = compile(&src).expect("compiles").instrument(&opts);
    let mut cct = CctProfiler::new();
    Interp::new(&program).run(&mut cct).expect("runs");
    let profile = cct.finish(&program);

    println!("{}", profile.render_text());

    println!("most-called methods:");
    for (name, calls) in profile.most_called_methods().into_iter().take(6) {
        println!("  {name:30} {calls:>10} calls");
    }
    println!("\nhottest methods (exclusive instructions):");
    for (name, excl) in profile.hottest_methods().into_iter().take(6) {
        println!("  {name:30} {excl:>10}");
    }
}
