//! Figure 3 — the algorithmic profile (repetition tree) of the running
//! example.
//!
//! Prints the dynamic loop/recursion nesting tree with each node's
//! algorithm, the automatic classifications ("Construction / Modification
//! of a Node-based recursive structure", "Data-structure-less"), and the
//! fitted cost function — the paper's headline annotation is
//! `steps = 0.25·size²` for the sort on random inputs.

use algoprof_bench::SweepArgs;
use algoprof_programs::{insertion_sort_program, SortWorkload};

fn main() {
    let args = SweepArgs::parse(121, 10, 3);
    println!("Figure 3: repetition tree of the running example\n");

    let src = insertion_sort_program(SortWorkload::Random, args.max_size, args.step, args.reps);
    let profile = algoprof::profile_source(&src).expect("running example profiles");
    println!("{}", profile.render_text());

    if let Some(algo) = profile.algorithm_by_root_name("List.sort:loop0") {
        if let Some(fit) = profile.fit_invocation_steps(algo.id) {
            println!(
                "paper annotation: steps = 0.25*size^2; measured: {} (coefficient {:.4})",
                fit, fit.coeff
            );
        }
        if let Some(p) = profile.fit_invocation_power_law(algo.id) {
            println!("empirical order of growth: {p}");
        }
    }
}
