//! Figure 4 — repetition tree for growing an array-backed list.
//!
//! Three repetition nodes in two algorithms: the harness loop running
//! `testForSize` (data-structure-less), and the append loop fused with
//! the inner grow loop (one algorithm, since both access the backing
//! array).

use algoprof_bench::SweepArgs;
use algoprof_programs::{array_list_program, GrowthPolicy};

fn main() {
    let args = SweepArgs::parse(65, 8, 1);
    println!("Figure 4: repetition tree for the growing array-backed list\n");

    for policy in [GrowthPolicy::ByOne, GrowthPolicy::Doubling] {
        let src = array_list_program(policy, args.max_size, args.step, args.reps);
        let profile = algoprof::profile_source(&src).expect("profiles");
        println!("--- {policy} ---");
        println!("{}", profile.render_text());

        // The figure's key fact: the append loop and the grow loop form
        // one algorithm.
        let append = profile.algorithm_by_root_name("Main.testForSize:loop0");
        match append {
            Some(a) => {
                let fused = a
                    .members
                    .iter()
                    .any(|&m| profile.node_name(m).contains("growIfFull"));
                println!(
                    "append+grow fused into one algorithm: {}\n",
                    if fused { "yes" } else { "NO (unexpected)" }
                );
            }
            None => println!("append algorithm not found (unexpected)\n"),
        }
    }
}
