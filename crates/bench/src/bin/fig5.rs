//! Figure 5 — cost functions for growing an array by 1 vs doubling.
//!
//! The naive grow-by-1 list costs Θ(n²) element accesses to append n
//! elements; the doubling list costs Θ(n). We plot combined structure
//! accesses (appends + copies), the figure's cost measure, against the
//! number of appended elements (unique-element array sizing, so the
//! x-axis is the used size rather than the capacity).

use algoprof::{AlgoProfOptions, ArraySizeStrategy, CostMetric};
use algoprof_bench::{print_series, SweepArgs};
use algoprof_programs::{array_list_program, GrowthPolicy};
use algoprof_vm::InstrumentOptions;

fn main() {
    let args = SweepArgs::parse(129, 8, 1);
    println!("Figure 5: grow-by-1 (quadratic) vs doubling (linear)");
    println!("(sizes 1..{} step {})\n", args.max_size, args.step);

    for policy in [GrowthPolicy::ByOne, GrowthPolicy::Doubling] {
        let src = array_list_program(policy, args.max_size, args.step, args.reps);
        let opts = AlgoProfOptions {
            array_strategy: ArraySizeStrategy::UniqueElements,
            ..AlgoProfOptions::default()
        };
        let profile = algoprof::profile_source_with(&src, &InstrumentOptions::default(), opts, &[])
            .expect("profiles");
        let algo = profile
            .algorithm_by_root_name("Main.testForSize:loop0")
            .expect("append algorithm exists");

        let reads = profile.invocation_series(algo.id, CostMetric::Reads);
        let writes = profile.invocation_series(algo.id, CostMetric::Writes);
        let accesses: Vec<(f64, f64)> = reads
            .iter()
            .zip(&writes)
            .map(|(r, w)| (r.0, r.1 + w.1))
            .collect();

        println!("--- {policy} ---");
        print_series("array accesses (appends + copies) vs elements", &accesses);
        print_series(
            "algorithmic steps vs elements",
            &profile.invocation_series(algo.id, CostMetric::Steps),
        );
        println!();
    }
}
