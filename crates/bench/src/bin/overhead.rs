//! §5 — profiling overhead.
//!
//! The paper reports that realistic benchmarks run "several orders of
//! magnitude" slower under AlgoProf. This harness measures wall-clock
//! slowdowns of the running example under increasing levels of
//! instrumentation:
//!
//! 1. uninstrumented interpretation (baseline),
//! 2. instrumented bytecode with a no-op profiler (event dispatch cost),
//! 3. the traditional CCT profiler,
//! 4. the full algorithmic profiler with first/last snapshots,
//! 5. the algorithmic profiler snapshotting at every access.

use algoprof::{AlgoProf, AlgoProfOptions, SnapshotPolicy};
use algoprof_bench::{time_it, SweepArgs};
use algoprof_cct::CctProfiler;
use algoprof_programs::{insertion_sort_program, SortWorkload};
use algoprof_vm::instrument::{InstrumentOptions, MethodInstrumentation};
use algoprof_vm::{compile, Interp, NoopProfiler};

fn main() {
    let args = SweepArgs::parse(81, 10, 2);
    println!("Overhead study (paper section 5)");
    println!(
        "workload: insertion sort, sizes 0..{} step {}, {} reps\n",
        args.max_size, args.step, args.reps
    );

    let src = insertion_sort_program(SortWorkload::Random, args.max_size, args.step, args.reps);
    let plain = compile(&src).expect("compiles");
    let instrumented = plain.instrument(&InstrumentOptions::default());
    let cct_opts = InstrumentOptions {
        methods: MethodInstrumentation::All,
        ..InstrumentOptions::default()
    };
    let cct_program = plain.instrument(&cct_opts);

    let (_, base) = time_it(|| {
        Interp::new(&plain).run(&mut NoopProfiler).expect("runs");
    });
    println!("{:42} {:>10.4}s  {:>8.1}x", "uninstrumented", base, 1.0);

    let (_, noop) = time_it(|| {
        Interp::new(&instrumented)
            .run(&mut NoopProfiler)
            .expect("runs");
    });
    println!(
        "{:42} {:>10.4}s  {:>8.1}x",
        "instrumented + no-op profiler",
        noop,
        noop / base
    );

    let (_, cct) = time_it(|| {
        let mut profiler = CctProfiler::new();
        Interp::new(&cct_program).run(&mut profiler).expect("runs");
        profiler.finish(&cct_program)
    });
    println!(
        "{:42} {:>10.4}s  {:>8.1}x",
        "CCT profiler (traditional baseline)",
        cct,
        cct / base
    );

    let (_, algo) = time_it(|| {
        let mut profiler = AlgoProf::new();
        Interp::new(&instrumented).run(&mut profiler).expect("runs");
        profiler.finish(&instrumented)
    });
    println!(
        "{:42} {:>10.4}s  {:>8.1}x",
        "AlgoProf (first/last snapshots)",
        algo,
        algo / base
    );

    let (_, every) = time_it(|| {
        let mut profiler = AlgoProf::with_options(AlgoProfOptions {
            snapshot_policy: SnapshotPolicy::EveryAccess,
            ..AlgoProfOptions::default()
        });
        Interp::new(&instrumented).run(&mut profiler).expect("runs");
        profiler.finish(&instrumented)
    });
    println!(
        "{:42} {:>10.4}s  {:>8.1}x",
        "AlgoProf (snapshot at every access)",
        every,
        every / base
    );

    println!(
        "\npaper claim: algorithmic profiling costs orders of magnitude; \
         the snapshot optimization recovers a {:.1}x factor here",
        every / algo
    );
}
