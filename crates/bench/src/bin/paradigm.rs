//! §4.3 — paradigm agnosticism.
//!
//! Profiles the imperative, mutating insertion sort (Listing 1) and a
//! functional, recursive, immutable insertion sort on the same workloads
//! and shows that the automatically inferred complexities agree: both are
//! quadratic on random inputs and the fitted exponents match closely,
//! even though one is a loop nest that modifies a structure and the other
//! is a recursion nest that constructs new structures.

use algoprof::{AlgoProfOptions, CostMetric, EquivalenceCriterion};
use algoprof_bench::SweepArgs;
use algoprof_programs::{functional_sort_program, insertion_sort_program, SortWorkload};
use algoprof_vm::InstrumentOptions;

/// The immutable sort builds a *fresh* structure disjoint from its input,
/// so the reference-overlap criterion sees two inputs and keeps `sort`
/// (traversing the original) apart from `insert` (constructing the
/// result). The paper's Same-Type equivalence criterion (§2.4) treats
/// disconnected instances of one node type as the same input — exactly
/// what makes the two paradigms comparable.
fn profile_same_type(src: &str) -> algoprof::AlgorithmicProfile {
    let opts = AlgoProfOptions {
        criterion: EquivalenceCriterion::SameType,
        ..AlgoProfOptions::default()
    };
    algoprof::profile_source_with(src, &InstrumentOptions::default(), opts, &[]).expect("profiles")
}

fn main() {
    let args = SweepArgs::parse(81, 8, 2);
    println!("Paradigm agnosticism (paper section 4.3)\n");

    for workload in [SortWorkload::Random, SortWorkload::Reversed] {
        println!("=== workload: {workload} ===");

        let imperative = profile_same_type(&insertion_sort_program(
            workload,
            args.max_size,
            args.step,
            args.reps,
        ));
        let functional = profile_same_type(&functional_sort_program(
            workload,
            args.max_size,
            args.step,
            args.reps,
        ));

        let imp = imperative
            .algorithm_by_root_name("List.sort:loop0")
            .expect("imperative sort algorithm");
        let fun_algo = functional
            .algorithm_by_root_name("FList.sort")
            .expect("functional sort algorithm");

        let imp_fit = imperative
            .fit_invocation_power_law(imp.id)
            .expect("imperative fit");
        let fun_fit = functional
            .fit_invocation_power_law(fun_algo.id)
            .expect("functional fit");

        println!(
            "  imperative  ({}): {}",
            imperative.describe_algorithm(imp.id),
            imp_fit
        );
        println!(
            "  functional  ({}): {}",
            functional.describe_algorithm(fun_algo.id),
            fun_fit
        );
        println!(
            "  exponents: {:.3} vs {:.3} (difference {:.3})",
            imp_fit.exponent,
            fun_fit.exponent,
            (imp_fit.exponent - fun_fit.exponent).abs()
        );
        let steps_i: f64 = imperative
            .invocation_series(imp.id, CostMetric::Steps)
            .iter()
            .map(|p| p.1)
            .sum();
        let steps_f: f64 = functional
            .invocation_series(fun_algo.id, CostMetric::Steps)
            .iter()
            .map(|p| p.1)
            .sum();
        println!("  total steps: imperative {steps_i}, functional {steps_f}\n");
    }
}
