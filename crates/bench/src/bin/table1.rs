//! Table 1 — the 18 data-structure example programs.
//!
//! Profiles each program and prints the paper's table with measured
//! columns: I (inputs detected), S (sizes correct), and G (grouping),
//! alongside the expected marks.

use algoprof_programs::table1_programs;

fn main() {
    println!("Table 1: data structure examples");
    println!(
        "{:8} {:7} {:12} {:2} {:10} | {:2} {:2} {:5} {:8} match",
        "Struct", "Impl.", "Linkage", "T", "Rem.", "I", "S", "G", "size"
    );
    println!("{}", "-".repeat(78));

    let mut all_match = true;
    for p in table1_programs() {
        let profile = match p.profile() {
            Ok(prof) => prof,
            Err(e) => {
                println!("{:45} FAILED: {e}", p.name);
                all_match = false;
                continue;
            }
        };
        let o = p.evaluate(&profile);
        let row_matches = o.inputs_detected && o.size_correct && o.grouping_matches_paper;
        all_match &= row_matches;
        let g_mark = if o.observed_grouped {
            p.expected_grouping.mark() // grouped: report the paper's nuance (x vs *)
        } else {
            "-"
        };
        println!(
            "{:8} {:7} {:12} {:2} {:10} | {:2} {:2} {:5} {:8} {}",
            p.structure,
            p.implementation,
            p.linkage,
            p.typing,
            p.remark,
            if o.inputs_detected { "x" } else { "-" },
            if o.size_correct { "x" } else { "-" },
            g_mark,
            o.measured_size,
            if row_matches { "ok" } else { "MISMATCH" },
        );
    }
    println!("{}", "-".repeat(78));
    println!(
        "all rows match the paper: {}",
        if all_match { "yes" } else { "NO" }
    );
}
