//! Minimal offline benchmark harness.
//!
//! The container this repository builds in has no network access, so the
//! benches cannot depend on an external benchmarking crate. This module
//! implements the small slice of the `criterion` API surface the benches
//! use (`Criterion::benchmark_group`, `BenchmarkGroup::bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros),
//! backed by plain `std::time::Instant` timing.
//!
//! Tuning via environment variables:
//!
//! * `ALGOPROF_BENCH_WARMUP_MS` — warm-up budget per benchmark (default 200).
//! * `ALGOPROF_BENCH_MEASURE_MS` — measurement budget per benchmark
//!   (default 1000).
//! * `ALGOPROF_BENCH_QUICK` — when set, run each benchmark exactly once
//!   (smoke-test mode, used by CI).

use std::hint::black_box;
use std::time::{Duration, Instant};

fn env_ms(name: &str, default_ms: u64) -> Duration {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

fn quick_mode() -> bool {
    std::env::var_os("ALGOPROF_BENCH_QUICK").is_some()
}

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, f);
    }
}

/// A named collection of benchmarks, printed together.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, id, f);
        self
    }

    /// Ends the group (printing-only in this harness).
    pub fn finish(self) {}
}

/// Passed to the measured closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine `self.iters` times and records the elapsed time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(group: &str, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };

    if quick_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("  {label:<40} {:>12.3?} (quick, 1 iter)", b.elapsed);
        return;
    }

    // Warm-up: run single iterations until the warm-up budget is spent,
    // estimating per-iteration cost as we go.
    let warmup = env_ms("ALGOPROF_BENCH_WARMUP_MS", 200);
    let measure = env_ms("ALGOPROF_BENCH_MEASURE_MS", 1000);
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_micros(1);
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warmup || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }

    // Measurement: pick an iteration count that fills the budget, split
    // into a handful of samples so we can report a minimum (least-noise)
    // estimate alongside the mean.
    let total_iters = (measure.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64;
    let samples = 5u64.min(total_iters);
    let iters_per_sample = (total_iters / samples).max(1);
    let mut times: Vec<Duration> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed / iters_per_sample as u32);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / samples as u32;
    println!(
        "  {label:<40} mean {mean:>12.3?}   min {min:>12.3?}   ({} iters x {samples} samples)",
        iters_per_sample
    );
}

/// Registers benchmark functions under a group name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        std::env::set_var("ALGOPROF_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        std::env::remove_var("ALGOPROF_BENCH_QUICK");
        assert_eq!(calls, 1);
    }
}
