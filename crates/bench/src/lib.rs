//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts `--max-size N`, `--step N`, and `--reps N` to
//! scale its workload sweep (defaults chosen so a debug build finishes in
//! seconds; release builds can afford the paper's full 0..1000 sweep).

use std::time::Instant;

use algoprof::{AlgorithmicProfile, CostMetric};
use algoprof_fit::{best_fit, Fit};

pub mod harness;

/// Sweep parameters parsed from the command line.
#[derive(Debug, Clone, Copy)]
pub struct SweepArgs {
    /// Exclusive upper bound on the input size.
    pub max_size: usize,
    /// Size increment.
    pub step: usize,
    /// Repetitions per size.
    pub reps: usize,
}

impl SweepArgs {
    /// Parses `--max-size`, `--step`, `--reps` from `std::env::args`,
    /// falling back to the given defaults.
    pub fn parse(default_max: usize, default_step: usize, default_reps: usize) -> SweepArgs {
        let mut out = SweepArgs {
            max_size: default_max,
            step: default_step,
            reps: default_reps,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--max-size" => out.max_size = args[i + 1].parse().unwrap_or(out.max_size),
                "--step" => out.step = args[i + 1].parse().unwrap_or(out.step),
                "--reps" => out.reps = args[i + 1].parse().unwrap_or(out.reps),
                _ => {
                    i += 1;
                    continue;
                }
            }
            i += 2;
        }
        out
    }
}

/// Prints a ⟨size, cost⟩ series as aligned columns with its best fit.
pub fn print_series(title: &str, series: &[(f64, f64)]) -> Option<Fit> {
    println!("  {title}:");
    println!("    {:>8} {:>14}", "size", "cost");
    for (s, c) in series {
        println!("    {s:>8} {c:>14}");
    }
    let fit = best_fit(series);
    match &fit {
        Some(f) => println!("    fit: {f}   [{}]", f.model.big_o()),
        None => println!("    fit: (not enough points)"),
    }
    fit
}

/// Extracts and prints the steps-vs-size series for the algorithm rooted
/// at `root_needle`.
pub fn report_algorithm(
    profile: &AlgorithmicProfile,
    root_needle: &str,
    title: &str,
) -> Option<Fit> {
    let algo = profile.algorithm_by_root_name(root_needle)?;
    let series = profile.invocation_series(algo.id, CostMetric::Steps);
    println!(
        "algorithm {title} ({}):",
        profile.describe_algorithm(algo.id)
    );
    print_series("steps vs input size", &series)
}

/// Wall-clock helper for the overhead study.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_args_defaults() {
        let a = SweepArgs::parse(100, 10, 3);
        assert_eq!(a.max_size, 100);
        assert_eq!(a.step, 10);
        assert_eq!(a.reps, 3);
    }

    #[test]
    fn print_series_fits_linear() {
        let series: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let fit = print_series("test", &series).expect("fits");
        assert_eq!(fit.model, algoprof_fit::Model::Linear);
    }

    #[test]
    fn time_it_returns_value() {
        let (v, secs) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
