//! Traditional calling-context-tree (CCT) hotness profiler for the jay
//! VM — the baseline that Figure 2 of the paper contrasts with
//! algorithmic profiles.
//!
//! Each calling context (a path of methods from `Main.main`) is annotated
//! with its call count and its *inclusive* and *exclusive* "time",
//! measured in interpreted bytecode instructions — a deterministic,
//! platform-independent proxy for the wall-clock hotness that Java's
//! hprof reports.
//!
//! Use with `InstrumentOptions { methods: MethodInstrumentation::All, .. }`
//! so every call produces entry/exit events.
//!
//! # Example
//!
//! ```
//! use algoprof_cct::CctProfiler;
//! use algoprof_vm::instrument::{InstrumentOptions, MethodInstrumentation};
//! use algoprof_vm::{compile, Interp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     class Main {
//!         static int main() { return f() + f(); }
//!         static int f() { return 21; }
//!     }
//! "#;
//! let opts = InstrumentOptions {
//!     methods: MethodInstrumentation::All,
//!     ..InstrumentOptions::default()
//! };
//! let program = compile(src)?.instrument(&opts);
//! let mut cct = CctProfiler::new();
//! Interp::new(&program).run(&mut cct)?;
//! let profile = cct.finish(&program);
//! let f = profile.find("Main.f").expect("context exists");
//! assert_eq!(profile.node(f).calls, 2);
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use algoprof_vm::{CompiledProgram, Event, EventCx, EventSink, FuncId};

/// Index of a node in the [`CctProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CctNodeId(pub u32);

impl CctNodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One calling context.
#[derive(Debug, Clone)]
pub struct CctNode {
    /// This node's id.
    pub id: CctNodeId,
    /// The method executing in this context (`None` for the synthetic
    /// root).
    pub func: Option<FuncId>,
    /// Parent context.
    pub parent: Option<CctNodeId>,
    /// Child contexts in first-call order.
    pub children: Vec<CctNodeId>,
    /// Number of times this context was entered.
    pub calls: u64,
    /// Instructions executed in this context including callees.
    pub inclusive: u64,
    /// Instructions executed in this context excluding callees.
    pub exclusive: u64,
}

/// A finished CCT profile.
#[derive(Debug, Clone)]
pub struct CctProfile {
    nodes: Vec<CctNode>,
    names: Vec<String>,
}

impl CctProfile {
    /// The synthetic root.
    pub fn root(&self) -> CctNodeId {
        CctNodeId(0)
    }

    /// All contexts.
    pub fn nodes(&self) -> &[CctNode] {
        &self.nodes
    }

    /// One context by id.
    pub fn node(&self, id: CctNodeId) -> &CctNode {
        &self.nodes[id.index()]
    }

    /// Display name of a context.
    pub fn name(&self, id: CctNodeId) -> &str {
        &self.names[id.index()]
    }

    /// Finds the first context (preorder) whose method name contains
    /// `needle`.
    pub fn find(&self, needle: &str) -> Option<CctNodeId> {
        (0..self.nodes.len())
            .map(|i| CctNodeId(i as u32))
            .find(|&id| self.names[id.index()].contains(needle))
    }

    /// Total calls of every context matching `needle` (a method may
    /// appear in several contexts).
    pub fn total_calls(&self, needle: &str) -> u64 {
        self.nodes
            .iter()
            .filter(|n| self.names[n.id.index()].contains(needle))
            .map(|n| n.calls)
            .sum()
    }

    /// Total exclusive instruction count of every context matching
    /// `needle`.
    pub fn total_exclusive(&self, needle: &str) -> u64 {
        self.nodes
            .iter()
            .filter(|n| self.names[n.id.index()].contains(needle))
            .map(|n| n.exclusive)
            .sum()
    }

    /// The methods ranked by total exclusive cost, hottest first.
    pub fn hottest_methods(&self) -> Vec<(String, u64)> {
        let mut by_method: std::collections::BTreeMap<String, u64> = Default::default();
        for n in &self.nodes {
            if n.func.is_some() {
                *by_method
                    .entry(self.names[n.id.index()].clone())
                    .or_insert(0) += n.exclusive;
            }
        }
        let mut out: Vec<(String, u64)> = by_method.into_iter().collect();
        out.sort_by_key(|(_, v)| std::cmp::Reverse(*v));
        out
    }

    /// The methods ranked by total call count, most-called first.
    pub fn most_called_methods(&self) -> Vec<(String, u64)> {
        let mut by_method: std::collections::BTreeMap<String, u64> = Default::default();
        for n in &self.nodes {
            if n.func.is_some() {
                *by_method
                    .entry(self.names[n.id.index()].clone())
                    .or_insert(0) += n.calls;
            }
        }
        let mut out: Vec<(String, u64)> = by_method.into_iter().collect();
        out.sort_by_key(|(_, v)| std::cmp::Reverse(*v));
        out
    }

    /// Graphviz DOT rendering of the calling-context tree.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph cct {\n  node [shape=box];\n");
        for n in &self.nodes {
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\\ncalls={} excl={}\"];",
                n.id.0,
                self.name(n.id).replace('"', "'"),
                n.calls,
                n.exclusive
            );
            if let Some(p) = n.parent {
                let _ = writeln!(out, "  n{} -> n{};", p.0, n.id.0);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the Figure-2-style tree: each context with calls and
    /// inclusive/exclusive instruction counts.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Calling context tree (time = interpreted instructions)\n");
        self.render_node(self.root(), "", true, &mut out);
        out
    }

    fn render_node(&self, id: CctNodeId, prefix: &str, is_last: bool, out: &mut String) {
        let n = self.node(id);
        let connector = if prefix.is_empty() {
            ""
        } else if is_last {
            "`- "
        } else {
            "|- "
        };
        let _ = writeln!(
            out,
            "{prefix}{connector}{} calls={} incl={} excl={}",
            self.name(id),
            n.calls,
            n.inclusive,
            n.exclusive
        );
        let child_prefix = if prefix.is_empty() {
            "  ".to_owned()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "|  " })
        };
        let k = n.children.len();
        for (i, &c) in n.children.iter().enumerate() {
            self.render_node(c, &child_prefix, i + 1 == k, out);
        }
    }
}

/// The CCT profiler: plug into [`Interp::run`](algoprof_vm::Interp::run).
#[derive(Debug)]
pub struct CctProfiler {
    nodes: Vec<CctNode>,
    stack: Vec<CctNodeId>,
}

impl CctProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        CctProfiler {
            nodes: vec![CctNode {
                id: CctNodeId(0),
                func: None,
                parent: None,
                children: Vec::new(),
                calls: 1,
                inclusive: 0,
                exclusive: 0,
            }],
            stack: vec![CctNodeId(0)],
        }
    }

    /// Produces the profile, resolving method names against `program`.
    pub fn finish(mut self, program: &CompiledProgram) -> CctProfile {
        self.propagate_inclusive();
        let names = self
            .nodes
            .iter()
            .map(|n| match n.func {
                None => "<root>".to_owned(),
                Some(f) => program.func(f).name.clone(),
            })
            .collect();
        CctProfile {
            nodes: self.nodes,
            names,
        }
    }

    fn propagate_inclusive(&mut self) {
        // Children have larger ids than parents, so a reverse sweep
        // accumulates bottom-up.
        for i in (1..self.nodes.len()).rev() {
            self.nodes[i].inclusive += self.nodes[i].exclusive;
            let incl = self.nodes[i].inclusive;
            if let Some(p) = self.nodes[i].parent {
                self.nodes[p.index()].inclusive += incl;
            }
        }
        self.nodes[0].inclusive += self.nodes[0].exclusive;
    }

    fn current(&self) -> CctNodeId {
        *self.stack.last().expect("CCT stack is never empty")
    }
}

impl Default for CctProfiler {
    fn default() -> Self {
        CctProfiler::new()
    }
}

impl CctProfiler {
    fn enter(&mut self, func: FuncId) {
        let parent = self.current();
        let child = self.nodes[parent.index()]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c.index()].func == Some(func));
        let child = match child {
            Some(c) => c,
            None => {
                let id = CctNodeId(self.nodes.len() as u32);
                self.nodes.push(CctNode {
                    id,
                    func: Some(func),
                    parent: Some(parent),
                    children: Vec::new(),
                    calls: 0,
                    inclusive: 0,
                    exclusive: 0,
                });
                self.nodes[parent.index()].children.push(id);
                id
            }
        };
        self.nodes[child.index()].calls += 1;
        self.stack.push(child);
    }
}

impl EventSink for CctProfiler {
    fn event(&mut self, ev: &Event, _cx: &EventCx<'_>) {
        match *ev {
            Event::MethodEntry { func } => self.enter(func),
            Event::MethodExit { .. } if self.stack.len() > 1 => {
                self.stack.pop();
            }
            Event::Instruction { .. } => {
                let cur = self.current();
                self.nodes[cur.index()].exclusive += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_vm::instrument::{InstrumentOptions, MethodInstrumentation};
    use algoprof_vm::{compile, Interp};

    fn profile(src: &str) -> CctProfile {
        let opts = InstrumentOptions {
            methods: MethodInstrumentation::All,
            ..InstrumentOptions::default()
        };
        let program = compile(src).expect("compiles").instrument(&opts);
        let mut cct = CctProfiler::new();
        Interp::new(&program).run(&mut cct).expect("runs");
        cct.finish(&program)
    }

    #[test]
    fn counts_calls_per_context() {
        let p = profile(
            r#"class Main {
                static int main() {
                    int s = 0;
                    for (int i = 0; i < 10; i = i + 1) { s = s + leaf(); }
                    return s + other();
                }
                static int leaf() { return 1; }
                static int other() { return leaf(); }
            }"#,
        );
        // leaf appears in two contexts: under main (10 calls) and under
        // other (1 call).
        assert_eq!(p.total_calls("Main.leaf"), 11);
        let contexts: Vec<u64> = p
            .nodes()
            .iter()
            .filter(|n| p.name(n.id).contains("Main.leaf"))
            .map(|n| n.calls)
            .collect();
        let mut sorted = contexts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 10]);
    }

    #[test]
    fn inclusive_contains_exclusive_of_callees() {
        let p = profile(
            r#"class Main {
                static int main() { return mid(); }
                static int mid() { return leaf() + leaf(); }
                static int leaf() {
                    int s = 0;
                    for (int i = 0; i < 50; i = i + 1) { s = s + 1; }
                    return s;
                }
            }"#,
        );
        let mid = p.find("Main.mid").expect("mid context");
        let leaf = p.find("Main.leaf").expect("leaf context");
        assert!(p.node(mid).inclusive > p.node(mid).exclusive);
        assert!(p.node(mid).inclusive >= p.node(leaf).inclusive);
        assert!(p.node(leaf).exclusive > 100, "loop body dominates");
    }

    #[test]
    fn hottest_and_most_called_rankings() {
        let p = profile(
            r#"class Main {
                static int main() {
                    int s = 0;
                    for (int i = 0; i < 100; i = i + 1) { s = s + cheap(); }
                    s = s + expensive();
                    return s;
                }
                static int cheap() { return 1; }
                static int expensive() {
                    int s = 0;
                    for (int i = 0; i < 10000; i = i + 1) { s = s + 1; }
                    return s;
                }
            }"#,
        );
        let most_called = p.most_called_methods();
        assert_eq!(most_called[0].0, "Main.cheap");
        let hottest = p.hottest_methods();
        assert_eq!(hottest[0].0, "Main.expensive");
    }

    #[test]
    fn recursion_grows_context_chain() {
        let p = profile(
            r#"class Main {
                static int main() { return fact(5); }
                static int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
            }"#,
        );
        // Plain CCTs do not fold recursion: fact appears in a chain of
        // contexts.
        let fact_contexts = p
            .nodes()
            .iter()
            .filter(|n| p.name(n.id).contains("Main.fact"))
            .count();
        assert_eq!(fact_contexts, 5);
    }

    #[test]
    fn render_contains_counts() {
        let p = profile("class Main { static int main() { return 1; } }");
        let text = p.render_text();
        assert!(text.contains("Main.main"));
        assert!(text.contains("calls=1"));
    }
}
