//! Grouping repetition nodes into algorithms (paper §2.5) and combining
//! costs (paper §2.6).
//!
//! An *algorithm* is a connected subtree of the repetition tree. Parent
//! and child repetitions are grouped when they directly access at least
//! one common input — the heuristic that correctly fuses the two loops of
//! the insertion sort but (deliberately, as the paper reports in Table 1)
//! fails to fuse 2-d array loop nests whose outer loop performs no array
//! access itself.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use algoprof_vm::{CompiledProgram, LoopId};

use crate::cost::CostMap;
use crate::inputs::InputId;
use crate::reptree::{NodeId, RepKind, RepTree};

/// How repetition nodes are grouped into algorithms (paper §2.5 defines
/// the input-sharing heuristic and envisions alternatives; §4.1 sketches
/// the index-dataflow refinement implemented in
/// [`algoprof_vm::indexflow`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingStrategy {
    /// Group parent and child when they directly access a common input —
    /// AlgoProf's default.
    #[default]
    SharedInput,
    /// [`GroupingStrategy::SharedInput`] plus the §4.1 fix: also group a
    /// loop nest when the outer loop drives an index used by the inner
    /// loop's array accesses (repairs the two `-` rows of Table 1).
    SharedInputOrIndexFlow,
    /// Group loops declared in the same method (the alternative §2.5
    /// mentions). Coarser: fuses unrelated sibling loops.
    SameMethod,
}

/// Index of an algorithm within a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AlgorithmId(pub u32);

impl AlgorithmId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "algorithm#{}", self.0)
    }
}

/// One ⟨input sizes, combined cost⟩ observation: a single invocation of
/// the algorithm's root repetition with all member costs folded in.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Ordinal of the root repetition's invocation.
    pub root_invocation: usize,
    /// Combined costs: the root invocation's own costs plus the costs of
    /// every member invocation nested (transitively) inside it.
    pub costs: CostMap,
    /// Largest size observed for each input during this invocation.
    pub input_sizes: BTreeMap<InputId, usize>,
}

/// A group of repetition-tree nodes forming one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct Algorithm {
    /// The algorithm's id.
    pub id: AlgorithmId,
    /// The shallowest member (cost and input sizes attribute here).
    pub root: NodeId,
    /// All members, root first, in tree preorder.
    pub members: Vec<NodeId>,
    /// Inputs directly accessed by any member.
    pub inputs: Vec<InputId>,
    /// One combined data point per root invocation.
    pub points: Vec<DataPoint>,
    /// Combined costs across all invocations.
    pub total_costs: CostMap,
}

impl Algorithm {
    /// The ⟨size, steps⟩ series for `input`, suitable for
    /// [`algoprof_fit::best_fit`].
    pub fn steps_series(&self, input: InputId) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| {
                p.input_sizes
                    .get(&input)
                    .map(|&s| (s as f64, p.costs.steps() as f64))
            })
            .collect()
    }

    /// Number of times the algorithm ran.
    pub fn invocation_count(&self) -> usize {
        self.points.len()
    }
}

/// Partitions the repetition tree into algorithms with the default
/// input-sharing heuristic.
pub fn group_algorithms(tree: &RepTree) -> Vec<Algorithm> {
    group_algorithms_with(tree, None, GroupingStrategy::SharedInput)
}

/// Partitions the repetition tree into algorithms: a node joins its
/// parent's algorithm when the chosen [`GroupingStrategy`] says so.
/// `program` supplies loop metadata for the non-default strategies (pass
/// `None` with [`GroupingStrategy::SharedInput`]).
pub fn group_algorithms_with(
    tree: &RepTree,
    program: Option<&CompiledProgram>,
    strategy: GroupingStrategy,
) -> Vec<Algorithm> {
    let n = tree.len();
    let mut accessed: Vec<Vec<InputId>> = Vec::with_capacity(n);
    for node in tree.nodes() {
        accessed.push(node.accessed_inputs());
    }

    let hints: HashSet<(LoopId, LoopId)> = match (strategy, program) {
        (GroupingStrategy::SharedInputOrIndexFlow, Some(p)) => {
            p.loop_hints.iter().copied().collect()
        }
        _ => HashSet::new(),
    };
    let loop_func = |l: LoopId| program.map(|p| p.loop_info(l).func);

    let joins_parent = |parent: NodeId, child: NodeId| -> bool {
        let shares = accessed[child.index()]
            .iter()
            .any(|i| accessed[parent.index()].contains(i));
        if shares {
            return true;
        }
        let (pk, ck) = (tree.node(parent).kind, tree.node(child).kind);
        match strategy {
            GroupingStrategy::SharedInput => false,
            GroupingStrategy::SharedInputOrIndexFlow => match (pk, ck) {
                (RepKind::Loop(a), RepKind::Loop(b)) => {
                    // The outer loop may drive an index used deeper than
                    // the immediate child (e.g. the middle loop of a
                    // matrix-multiply nest performs no access itself);
                    // a hint into any loop nested within `b` fuses the
                    // chain link.
                    hints.iter().any(|&(outer, inner)| {
                        outer == a
                            && program.is_some_and(|p| {
                                let mut cur = Some(inner);
                                while let Some(l) = cur {
                                    if l == b {
                                        return true;
                                    }
                                    cur = p.loop_info(l).parent;
                                }
                                false
                            })
                    })
                }
                _ => false,
            },
            GroupingStrategy::SameMethod => match (pk, ck) {
                (RepKind::Loop(a), RepKind::Loop(b)) => {
                    loop_func(a).is_some() && loop_func(a) == loop_func(b)
                }
                _ => false,
            },
        }
    };

    let mut algo_of: Vec<usize> = vec![usize::MAX; n];
    let mut algos: Vec<Vec<NodeId>> = Vec::new();

    // Preorder walk from the root; parents are visited before children.
    let mut stack = vec![tree.root()];
    while let Some(id) = stack.pop() {
        let idx = id.index();
        match tree.node(id).parent {
            None => {
                algo_of[idx] = algos.len();
                algos.push(vec![id]);
            }
            #[allow(clippy::collapsible_match)] // reads better as a guard
            Some(p) => {
                if joins_parent(p, id) {
                    let a = algo_of[p.index()];
                    algo_of[idx] = a;
                    algos[a].push(id);
                } else {
                    algo_of[idx] = algos.len();
                    algos.push(vec![id]);
                }
            }
        }
        // Push children in reverse so preorder matches creation order.
        for &c in tree.node(id).children.iter().rev() {
            stack.push(c);
        }
    }

    algos
        .into_iter()
        .enumerate()
        .map(|(i, members)| build_algorithm(tree, AlgorithmId(i as u32), members, &accessed))
        .collect()
}

/// Combines member invocation costs into per-root-invocation data points
/// (paper §2.6: "the child's cost is added to the parent's cost").
fn build_algorithm(
    tree: &RepTree,
    id: AlgorithmId,
    members: Vec<NodeId>,
    accessed: &[Vec<InputId>],
) -> Algorithm {
    let root = members[0];
    let mut inputs: Vec<InputId> = members
        .iter()
        .flat_map(|m| accessed[m.index()].iter().copied())
        .collect();
    inputs.sort_unstable();
    inputs.dedup();

    let root_invocations = tree.node(root).invocations.len();
    let mut points: Vec<DataPoint> = (0..root_invocations)
        .map(|i| DataPoint {
            root_invocation: i,
            costs: CostMap::new(),
            input_sizes: BTreeMap::new(),
        })
        .collect();

    let member_set: Vec<bool> = {
        let mut v = vec![false; tree.len()];
        for &m in &members {
            v[m.index()] = true;
        }
        v
    };

    // Maps a member invocation to the root invocation containing it.
    let mut memo: HashMap<(NodeId, usize), Option<usize>> = HashMap::new();
    fn resolve(
        tree: &RepTree,
        root: NodeId,
        member_set: &[bool],
        memo: &mut HashMap<(NodeId, usize), Option<usize>>,
        node: NodeId,
        ord: usize,
    ) -> Option<usize> {
        if node == root {
            return Some(ord);
        }
        if let Some(&r) = memo.get(&(node, ord)) {
            return r;
        }
        let inv = tree.node(node).invocations.get(ord)?;
        let result = match inv.parent {
            Some((p, po)) if member_set[p.index()] => resolve(tree, root, member_set, memo, p, po),
            _ => None,
        };
        memo.insert((node, ord), result);
        result
    }

    for &m in &members {
        for (ord, inv) in tree.node(m).invocations.iter().enumerate() {
            let Some(ri) = resolve(tree, root, &member_set, &mut memo, m, ord) else {
                continue;
            };
            let point = &mut points[ri];
            point.costs.merge(&inv.costs);
            for (&input, obs) in &inv.inputs {
                let e = point.input_sizes.entry(input).or_insert(0);
                *e = (*e).max(obs.max_size);
            }
        }
    }

    let mut total_costs = CostMap::new();
    for p in &points {
        total_costs.merge(&p.costs);
    }

    Algorithm {
        id,
        root,
        members,
        inputs,
        points,
        total_costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostKey;
    use crate::reptree::{ActiveObservation, RepKind};
    use algoprof_vm::LoopId;

    /// Builds the Listing-3 shape: an outer loop with 3 iterations whose
    /// inner loop runs 0+1+2 times, both touching input#0.
    fn listing3_tree() -> RepTree {
        let mut tree = RepTree::new();
        let outer = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(0)));
        let inner = tree.get_or_create_child(outer, RepKind::Loop(LoopId(1)));

        tree.start_invocation(outer, Some((tree.root(), 0)));
        for o in 0..3u64 {
            // Outer iteration (one step per back edge).
            tree.node_mut(outer)
                .current_mut()
                .expect("outer active")
                .costs
                .bump(CostKey::Step);
            // Inner invocation with `o` steps.
            tree.start_invocation(inner, Some((outer, 0)));
            {
                let cur = tree.node_mut(inner).current_mut().expect("inner active");
                cur.costs.add(CostKey::Step, o);
                cur.inputs.insert(
                    InputId(0),
                    ActiveObservation {
                        first_size: 5,
                        exit_size: 5,
                        max_size: 5,
                        last_ref: None,
                    },
                );
            }
            tree.finalize_invocation(inner);
        }
        // Mark the outer loop as accessing the same input so grouping
        // fuses the nest.
        tree.node_mut(outer)
            .current_mut()
            .expect("outer active")
            .inputs
            .insert(
                InputId(0),
                ActiveObservation {
                    first_size: 5,
                    exit_size: 5,
                    max_size: 5,
                    last_ref: None,
                },
            );
        tree.finalize_invocation(outer);
        tree.finalize_invocation(tree.root());
        tree
    }

    #[test]
    fn listing3_combined_cost_is_six_steps() {
        let tree = listing3_tree();
        let algos = group_algorithms(&tree);
        // Root (no inputs) and the fused nest.
        assert_eq!(algos.len(), 2);
        let nest = algos
            .iter()
            .find(|a| a.members.len() == 2)
            .expect("fused loop nest");
        assert_eq!(nest.points.len(), 1);
        // 3 outer + (0+1+2) inner = 6 algorithmic steps (paper §2.6).
        assert_eq!(nest.points[0].costs.steps(), 6);
        assert_eq!(nest.points[0].input_sizes.get(&InputId(0)), Some(&5));
    }

    #[test]
    fn nodes_without_shared_input_stay_separate() {
        let mut tree = RepTree::new();
        let outer = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(0)));
        let inner = tree.get_or_create_child(outer, RepKind::Loop(LoopId(1)));
        tree.start_invocation(outer, Some((tree.root(), 0)));
        tree.start_invocation(inner, Some((outer, 0)));
        // Only the inner loop touches the input (the Listing-5 situation).
        tree.node_mut(inner)
            .current_mut()
            .expect("inner active")
            .inputs
            .insert(
                InputId(0),
                ActiveObservation {
                    first_size: 9,
                    exit_size: 9,
                    max_size: 9,
                    last_ref: None,
                },
            );
        tree.finalize_invocation(inner);
        tree.finalize_invocation(outer);
        tree.finalize_invocation(tree.root());

        let algos = group_algorithms(&tree);
        assert_eq!(algos.len(), 3, "root, outer, inner all separate");
    }

    #[test]
    fn steps_series_extracts_points() {
        let tree = listing3_tree();
        let algos = group_algorithms(&tree);
        let nest = algos
            .iter()
            .find(|a| a.members.len() == 2)
            .expect("fused nest");
        let series = nest.steps_series(InputId(0));
        assert_eq!(series, vec![(5.0, 6.0)]);
        assert_eq!(nest.invocation_count(), 1);
    }
}
