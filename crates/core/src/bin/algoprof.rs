//! `algoprof` — command-line algorithmic profiler for jay programs.
//!
//! ```text
//! algoprof [OPTIONS] <program.jay>          profile a program live
//! algoprof record <program.jay> -o <trace>  execute once, save the event trace
//! algoprof analyze <trace> [OPTIONS]        profile a recording (no re-execution)
//!
//! OPTIONS:
//!   --criterion <some|all|array|type>   snapshot equivalence criterion
//!   --sizing <capacity|unique>          array sizing strategy
//!   --snapshots <firstlast|every>       snapshot policy
//!   --grouping <input|indexflow|method> algorithm grouping strategy
//!   --input <v1,v2,...>                 values for readInput() (live/record only)
//!   --csv <root-name-needle>            print the steps CSV for one algorithm
//!   --html <file.html>                  write a self-contained HTML report
//! ```
//!
//! `record` + repeated `analyze` decouple execution from analysis: one
//! guest run supports any number of option ablations.

use std::process::ExitCode;

use algoprof::{
    AlgoProfOptions, AlgorithmicProfile, ArraySizeStrategy, CostMetric, EquivalenceCriterion,
    GroupingStrategy, SnapshotPolicy,
};
use algoprof_vm::InstrumentOptions;

const USAGE: &str = "usage: algoprof [--criterion some|all|array|type] [--sizing capacity|unique] \
     [--snapshots firstlast|every] [--grouping input|indexflow|method] \
     [--input v1,v2,...] [--csv <needle>] [--html <file.html>] <program.jay>\n\
       algoprof record <program.jay> -o <trace.aptr> [--input v1,v2,...]\n\
       algoprof analyze <trace.aptr> [analysis options as above]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        // Asking for help is not an error: print to stdout, exit 0.
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    match args[0].as_str() {
        "record" => record_main(&args[1..]),
        "analyze" => analyze_main(&args[1..]),
        _ => live_main(&args),
    }
}

/// Analysis-side options shared by live profiling and `analyze`.
#[derive(Default)]
struct AnalysisArgs {
    opts: AlgoProfOptions,
    input: Vec<i64>,
    csv: Option<String>,
    html: Option<String>,
    positional: Vec<String>,
}

/// Parses `args`, returning the parsed bundle or a message for stderr.
fn parse_args(args: &[String]) -> Result<AnalysisArgs, String> {
    let mut out = AnalysisArgs::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--criterion" => {
                i += 1;
                out.opts.criterion = match args.get(i).map(String::as_str) {
                    Some("some") => EquivalenceCriterion::SomeElements,
                    Some("all") => EquivalenceCriterion::AllElements,
                    Some("array") => EquivalenceCriterion::SameArray,
                    Some("type") => EquivalenceCriterion::SameType,
                    other => return Err(format!("unknown criterion {other:?}")),
                };
            }
            "--sizing" => {
                i += 1;
                out.opts.array_strategy = match args.get(i).map(String::as_str) {
                    Some("capacity") => ArraySizeStrategy::Capacity,
                    Some("unique") => ArraySizeStrategy::UniqueElements,
                    other => return Err(format!("unknown sizing {other:?}")),
                };
            }
            "--grouping" => {
                i += 1;
                out.opts.grouping = match args.get(i).map(String::as_str) {
                    Some("input") => GroupingStrategy::SharedInput,
                    Some("indexflow") => GroupingStrategy::SharedInputOrIndexFlow,
                    Some("method") => GroupingStrategy::SameMethod,
                    other => return Err(format!("unknown grouping {other:?}")),
                };
            }
            "--snapshots" => {
                i += 1;
                out.opts.snapshot_policy = match args.get(i).map(String::as_str) {
                    Some("firstlast") => SnapshotPolicy::FirstAndLast,
                    Some("every") => SnapshotPolicy::EveryAccess,
                    other => return Err(format!("unknown snapshot policy {other:?}")),
                };
            }
            "--input" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    return Err("--input requires a value list".into());
                };
                for part in list.split(',').filter(|p| !p.is_empty()) {
                    match part.trim().parse() {
                        Ok(v) => out.input.push(v),
                        Err(_) => return Err(format!("invalid input value {part:?}")),
                    }
                }
            }
            "--csv" => {
                i += 1;
                out.csv = args.get(i).cloned();
            }
            "--html" => {
                i += 1;
                out.html = args.get(i).cloned();
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}"));
            }
            other => out.positional.push(other.to_owned()),
        }
        i += 1;
    }
    Ok(out)
}

/// Renders `profile` per the `--csv`/`--html` selection.
fn emit(profile: &AlgorithmicProfile, csv: Option<String>, html: Option<String>) -> ExitCode {
    if let Some(html_path) = html {
        if let Err(e) = std::fs::write(&html_path, algoprof::render_html(profile)) {
            eprintln!("cannot write {html_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {html_path}");
        return ExitCode::SUCCESS;
    }
    match csv {
        Some(needle) => match profile.algorithm_by_root_name(&needle) {
            Some(algo) => {
                println!("size,steps");
                for (s, c) in profile.invocation_series(algo.id, CostMetric::Steps) {
                    println!("{s},{c}");
                }
            }
            None => {
                eprintln!("no algorithm whose root matches {needle:?}");
                return ExitCode::FAILURE;
            }
        },
        None => print!("{}", profile.render_text()),
    }
    ExitCode::SUCCESS
}

/// The classic mode: compile, execute, and profile in one go.
fn live_main(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let [path] = parsed.positional.as_slice() else {
        eprintln!("expected exactly one program file\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = match algoprof::profile_source_with(
        &source,
        &InstrumentOptions::default(),
        parsed.opts,
        &parsed.input,
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    emit(&profile, parsed.csv, parsed.html)
}

/// `algoprof record <prog.jay> -o <trace>`: execute once, save the trace.
fn record_main(args: &[String]) -> ExitCode {
    let mut path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut input: Vec<i64> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                i += 1;
                out = args.get(i).cloned();
            }
            "--input" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--input requires a value list");
                    return ExitCode::FAILURE;
                };
                for part in list.split(',').filter(|p| !p.is_empty()) {
                    match part.trim().parse() {
                        Ok(v) => input.push(v),
                        Err(_) => {
                            eprintln!("invalid input value {part:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other:?} for record");
                return ExitCode::FAILURE;
            }
            other => {
                if path.is_some() {
                    eprintln!("unexpected argument {other:?}");
                    return ExitCode::FAILURE;
                }
                path = Some(other.to_owned());
            }
        }
        i += 1;
    }
    let (Some(path), Some(out)) = (path, out) else {
        eprintln!("usage: algoprof record <program.jay> -o <trace.aptr> [--input v1,v2,...]");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match algoprof::record_source_with(&source, &InstrumentOptions::default(), &input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, &trace) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out} ({} bytes)", trace.len());
    ExitCode::SUCCESS
}

/// `algoprof analyze <trace>`: profile a recording without re-executing.
fn analyze_main(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if !parsed.input.is_empty() {
        eprintln!("--input is not valid for analyze: inputs are embedded in the trace");
        return ExitCode::FAILURE;
    }
    let [path] = parsed.positional.as_slice() else {
        eprintln!("expected exactly one trace file\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let trace = match std::fs::read(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = match algoprof::profile_trace_with(&trace, parsed.opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    emit(&profile, parsed.csv, parsed.html)
}
