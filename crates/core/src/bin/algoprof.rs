//! `algoprof` — command-line algorithmic profiler for jay programs.
//!
//! ```text
//! algoprof [OPTIONS] <program.jay>
//!
//! OPTIONS:
//!   --criterion <some|all|array|type>   snapshot equivalence criterion
//!   --sizing <capacity|unique>          array sizing strategy
//!   --snapshots <firstlast|every>       snapshot policy
//!   --grouping <input|indexflow|method> algorithm grouping strategy
//!   --input <v1,v2,...>                 values for readInput()
//!   --csv <root-name-needle>            print the steps CSV for one algorithm
//!   --html <file.html>                  write a self-contained HTML report
//! ```

use std::process::ExitCode;

use algoprof::{
    AlgoProfOptions, ArraySizeStrategy, CostMetric, EquivalenceCriterion, GroupingStrategy,
    SnapshotPolicy,
};
use algoprof_vm::InstrumentOptions;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: algoprof [--criterion some|all|array|type] [--sizing capacity|unique] \
             [--snapshots firstlast|every] [--grouping input|indexflow|method] \
             [--input v1,v2,...] [--csv <needle>] <program.jay>"
        );
        return ExitCode::FAILURE;
    }

    let mut opts = AlgoProfOptions::default();
    let mut input: Vec<i64> = Vec::new();
    let mut csv: Option<String> = None;
    let mut html: Option<String> = None;
    let mut path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--criterion" => {
                i += 1;
                opts.criterion = match args.get(i).map(String::as_str) {
                    Some("some") => EquivalenceCriterion::SomeElements,
                    Some("all") => EquivalenceCriterion::AllElements,
                    Some("array") => EquivalenceCriterion::SameArray,
                    Some("type") => EquivalenceCriterion::SameType,
                    other => {
                        eprintln!("unknown criterion {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--sizing" => {
                i += 1;
                opts.array_strategy = match args.get(i).map(String::as_str) {
                    Some("capacity") => ArraySizeStrategy::Capacity,
                    Some("unique") => ArraySizeStrategy::UniqueElements,
                    other => {
                        eprintln!("unknown sizing {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--grouping" => {
                i += 1;
                opts.grouping = match args.get(i).map(String::as_str) {
                    Some("input") => GroupingStrategy::SharedInput,
                    Some("indexflow") => GroupingStrategy::SharedInputOrIndexFlow,
                    Some("method") => GroupingStrategy::SameMethod,
                    other => {
                        eprintln!("unknown grouping {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--snapshots" => {
                i += 1;
                opts.snapshot_policy = match args.get(i).map(String::as_str) {
                    Some("firstlast") => SnapshotPolicy::FirstAndLast,
                    Some("every") => SnapshotPolicy::EveryAccess,
                    other => {
                        eprintln!("unknown snapshot policy {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--input" => {
                i += 1;
                match args.get(i) {
                    Some(list) => {
                        for part in list.split(',').filter(|p| !p.is_empty()) {
                            match part.trim().parse() {
                                Ok(v) => input.push(v),
                                Err(_) => {
                                    eprintln!("invalid input value {part:?}");
                                    return ExitCode::FAILURE;
                                }
                            }
                        }
                    }
                    None => {
                        eprintln!("--input requires a value list");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--csv" => {
                i += 1;
                csv = args.get(i).cloned();
            }
            "--html" => {
                i += 1;
                html = args.get(i).cloned();
            }
            other => {
                if path.is_some() {
                    eprintln!("unexpected argument {other:?}");
                    return ExitCode::FAILURE;
                }
                path = Some(other.to_owned());
            }
        }
        i += 1;
    }

    let Some(path) = path else {
        eprintln!("no program file given");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let profile =
        match algoprof::profile_source_with(&source, &InstrumentOptions::default(), opts, &input) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };

    if let Some(html_path) = html {
        if let Err(e) = std::fs::write(&html_path, algoprof::render_html(&profile)) {
            eprintln!("cannot write {html_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {html_path}");
        return ExitCode::SUCCESS;
    }

    match csv {
        Some(needle) => match profile.algorithm_by_root_name(&needle) {
            Some(algo) => {
                println!("size,steps");
                for (s, c) in profile.invocation_series(algo.id, CostMetric::Steps) {
                    println!("{s},{c}");
                }
            }
            None => {
                eprintln!("no algorithm whose root matches {needle:?}");
                return ExitCode::FAILURE;
            }
        },
        None => print!("{}", profile.render_text()),
    }
    ExitCode::SUCCESS
}
