//! Algorithm classification (paper §2.8).
//!
//! Each algorithm is classified *per input*: Construction when it
//! allocates elements of the input's recursive type, else Modification
//! when it writes the structure, else Traversal; plus Input/Output for
//! external streams. Algorithms with no measurable input are
//! data-structure-less.

use std::fmt;

use crate::algorithms::Algorithm;
use crate::cost::CostMap;
use crate::inputs::{InputId, InputKind, InputRegistry};

/// The paper's algorithm kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmClass {
    /// Read-only traversal of a structure or array.
    Traversal,
    /// Updates links/elements without creating new elements.
    Modification,
    /// Allocates elements of the recursive type.
    Construction,
    /// Consumes external input.
    Input,
    /// Produces external output.
    Output,
    /// No measurable input.
    DataStructureLess,
}

impl fmt::Display for AlgorithmClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlgorithmClass::Traversal => "Traversal",
            AlgorithmClass::Modification => "Modification",
            AlgorithmClass::Construction => "Construction",
            AlgorithmClass::Input => "Input",
            AlgorithmClass::Output => "Output",
            AlgorithmClass::DataStructureLess => "Data-structure-less",
        })
    }
}

/// One classification entry: how the algorithm relates to one input
/// (`input` is `None` only for [`AlgorithmClass::DataStructureLess`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// The classified input, if any.
    pub input: Option<InputId>,
    /// The kind of algorithm with respect to that input.
    pub class: AlgorithmClass,
}

/// Classifies `algorithm` against every input it accesses.
///
/// Construction, modification, and traversal are mutually exclusive *per
/// input* (paper §2.8): creation wins over modification, which wins over
/// traversal.
pub fn classify(algorithm: &Algorithm, registry: &InputRegistry) -> Vec<Classification> {
    let mut out = Vec::new();
    let total = &algorithm.total_costs;
    for &input in &algorithm.inputs {
        let info = registry.input(input);
        let class = match &info.kind {
            InputKind::Structure => {
                if creates_elements_of(total, registry, input) {
                    AlgorithmClass::Construction
                } else if total.writes_of(input) > 0 {
                    AlgorithmClass::Modification
                } else {
                    AlgorithmClass::Traversal
                }
            }
            InputKind::Array(_) => {
                if total.writes_of(input) > 0 {
                    AlgorithmClass::Modification
                } else {
                    AlgorithmClass::Traversal
                }
            }
            InputKind::ExternalInput => AlgorithmClass::Input,
            InputKind::ExternalOutput => AlgorithmClass::Output,
        };
        out.push(Classification {
            input: Some(input),
            class,
        });
    }
    if out.is_empty() {
        out.push(Classification {
            input: None,
            class: AlgorithmClass::DataStructureLess,
        });
    }
    out
}

/// Whether the algorithm allocated objects of any class that belongs to
/// `input`'s structure.
fn creates_elements_of(total: &CostMap, registry: &InputRegistry, input: InputId) -> bool {
    let classes = &registry.input(input).classes;
    total
        .created_classes()
        .iter()
        .any(|c| classes.contains_key(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{AlgorithmId, DataPoint};
    use crate::cost::{AccessOp, CostKey};
    use crate::reptree::NodeId;
    use crate::snapshot::{ElemKey, Measurement, Snapshot, SnapshotKind};
    use algoprof_vm::ClassId;
    use std::collections::{BTreeMap, BTreeSet};

    fn registry_with_structure() -> (InputRegistry, InputId) {
        let mut reg = InputRegistry::default();
        let mut keys = BTreeSet::new();
        keys.insert(ElemKey::Obj(algoprof_vm::heap::ObjRef(0)));
        let mut classes = BTreeMap::new();
        classes.insert(ClassId(2), 1);
        let id = reg.identify(
            Measurement::detached(Snapshot {
                keys,
                kind: SnapshotKind::Structure { classes },
                size: 1,
                unique_size: 1,
                refs_traversed: 0,
            }),
            &[],
        );
        (reg, id)
    }

    fn algo_with_costs(input: Option<InputId>, costs: CostMap) -> Algorithm {
        Algorithm {
            id: AlgorithmId(0),
            root: NodeId(1),
            members: vec![NodeId(1)],
            inputs: input.into_iter().collect(),
            points: vec![DataPoint {
                root_invocation: 0,
                costs: costs.clone(),
                input_sizes: BTreeMap::new(),
            }],
            total_costs: costs,
        }
    }

    #[test]
    fn read_only_is_traversal() {
        let (reg, input) = registry_with_structure();
        let mut costs = CostMap::new();
        costs.add(
            CostKey::StructAccess {
                input,
                op: AccessOp::Read,
            },
            10,
        );
        let algo = algo_with_costs(Some(input), costs);
        let c = classify(&algo, &reg);
        assert_eq!(c[0].class, AlgorithmClass::Traversal);
    }

    #[test]
    fn writes_make_modification() {
        let (reg, input) = registry_with_structure();
        let mut costs = CostMap::new();
        costs.add(
            CostKey::StructAccess {
                input,
                op: AccessOp::Write,
            },
            3,
        );
        let algo = algo_with_costs(Some(input), costs);
        assert_eq!(classify(&algo, &reg)[0].class, AlgorithmClass::Modification);
    }

    #[test]
    fn creation_of_structure_class_wins_over_writes() {
        let (reg, input) = registry_with_structure();
        let mut costs = CostMap::new();
        costs.add(
            CostKey::StructAccess {
                input,
                op: AccessOp::Write,
            },
            5,
        );
        costs.add(CostKey::Creation { class: ClassId(2) }, 5);
        let algo = algo_with_costs(Some(input), costs);
        assert_eq!(classify(&algo, &reg)[0].class, AlgorithmClass::Construction);
    }

    #[test]
    fn creation_of_unrelated_class_does_not_make_construction() {
        let (reg, input) = registry_with_structure();
        let mut costs = CostMap::new();
        costs.add(
            CostKey::StructAccess {
                input,
                op: AccessOp::Write,
            },
            5,
        );
        costs.add(CostKey::Creation { class: ClassId(9) }, 5);
        let algo = algo_with_costs(Some(input), costs);
        assert_eq!(classify(&algo, &reg)[0].class, AlgorithmClass::Modification);
    }

    #[test]
    fn no_inputs_is_data_structure_less() {
        let (reg, _) = registry_with_structure();
        let algo = algo_with_costs(None, CostMap::new());
        let c = classify(&algo, &reg);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].class, AlgorithmClass::DataStructureLess);
        assert_eq!(c[0].input, None);
    }

    #[test]
    fn external_streams_classify_as_io() {
        let mut reg = InputRegistry::default();
        let i = reg.external_input();
        let o = reg.external_output();
        let mut costs = CostMap::new();
        costs.bump(CostKey::InputRead);
        costs.bump(CostKey::OutputWrite);
        let mut algo = algo_with_costs(Some(i), costs);
        algo.inputs.push(o);
        let c = classify(&algo, &reg);
        assert!(c.iter().any(|x| x.class == AlgorithmClass::Input));
        assert!(c.iter().any(|x| x.class == AlgorithmClass::Output));
    }

    #[test]
    fn class_display_names() {
        assert_eq!(AlgorithmClass::Construction.to_string(), "Construction");
        assert_eq!(
            AlgorithmClass::DataStructureLess.to_string(),
            "Data-structure-less"
        );
    }
}
