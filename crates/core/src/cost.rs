//! Cost models (paper §2.2 and §3.3).
//!
//! A repetition's cost is a map from *primitive operations on specific
//! inputs* to execution counts: algorithmic steps, structure reads and
//! writes (also broken down by element type), element creations, and
//! external input/output operations.

use std::collections::BTreeMap;
use std::fmt;

use algoprof_vm::ClassId;

use crate::inputs::InputId;

/// Read or write direction of a structure or array access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessOp {
    /// `GETFIELD` / `*ALOAD`.
    Read,
    /// `PUTFIELD` / `*ASTORE`.
    Write,
}

impl fmt::Display for AccessOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessOp::Read => "GET",
            AccessOp::Write => "PUT",
        })
    }
}

/// One countable primitive operation (the key space of a [`CostMap`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostKey {
    /// One loop iteration or one recursive call (`cost{STEP}`).
    Step,
    /// An array element access on a known input
    /// (`cost{input#1, LOAD/STORE}`).
    ArrayAccess {
        /// The accessed input.
        input: InputId,
        /// Load or store.
        op: AccessOp,
    },
    /// A recursive-structure reference access on a known input
    /// (`cost{input#3, GET/PUT}`).
    StructAccess {
        /// The accessed input.
        input: InputId,
        /// Get or put.
        op: AccessOp,
    },
    /// A recursive-structure access broken down by element type
    /// (`cost{input#3, Vertex, PUT}`).
    StructAccessByType {
        /// The accessed input.
        input: InputId,
        /// Runtime class of the accessed object.
        class: ClassId,
        /// Get or put.
        op: AccessOp,
    },
    /// Allocation of an element of a recursive type
    /// (`cost{ListNode, NEW}`).
    Creation {
        /// Allocated class.
        class: ClassId,
    },
    /// One external input read.
    InputRead,
    /// One external output write.
    OutputWrite,
    /// One blocked lock acquisition (`LockWait`): the thread found the
    /// lock held by another thread and had to wait. Charged to the
    /// *blocked* thread's current invocation, following Coppa et al.'s
    /// rule that contention is cost borne by the waiter.
    LockContention,
}

/// A multiset of primitive-operation counts.
///
/// Ordered map so reports are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostMap {
    counts: BTreeMap<CostKey, u64>,
}

impl CostMap {
    /// Creates an empty cost map.
    pub fn new() -> Self {
        CostMap::default()
    }

    /// Increments the count for `key` by one.
    pub fn bump(&mut self, key: CostKey) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Adds `n` to the count for `key`.
    pub fn add(&mut self, key: CostKey, n: u64) {
        if n > 0 {
            *self.counts.entry(key).or_insert(0) += n;
        }
    }

    /// The count for `key` (0 when absent).
    pub fn get(&self, key: CostKey) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Number of algorithmic steps.
    pub fn steps(&self) -> u64 {
        self.get(CostKey::Step)
    }

    /// Number of blocked lock acquisitions (lock contention events).
    pub fn contention(&self) -> u64 {
        self.get(CostKey::LockContention)
    }

    /// Merges `other` into `self` (used when combining child costs into a
    /// parent, paper §2.6).
    pub fn merge(&mut self, other: &CostMap) {
        for (&k, &v) in &other.counts {
            self.add(k, v);
        }
    }

    /// Iterates over `(key, count)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (CostKey, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Whether no operation was counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total structure/array reads on `input`.
    pub fn reads_of(&self, input: InputId) -> u64 {
        self.get(CostKey::StructAccess {
            input,
            op: AccessOp::Read,
        }) + self.get(CostKey::ArrayAccess {
            input,
            op: AccessOp::Read,
        })
    }

    /// Total structure/array writes on `input`.
    pub fn writes_of(&self, input: InputId) -> u64 {
        self.get(CostKey::StructAccess {
            input,
            op: AccessOp::Write,
        }) + self.get(CostKey::ArrayAccess {
            input,
            op: AccessOp::Write,
        })
    }

    /// Total structure/array reads across all inputs.
    pub fn total_reads(&self) -> u64 {
        self.counts
            .iter()
            .filter_map(|(k, v)| match k {
                CostKey::StructAccess {
                    op: AccessOp::Read, ..
                }
                | CostKey::ArrayAccess {
                    op: AccessOp::Read, ..
                } => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Total structure/array writes across all inputs.
    pub fn total_writes(&self) -> u64 {
        self.counts
            .iter()
            .filter_map(|(k, v)| match k {
                CostKey::StructAccess {
                    op: AccessOp::Write,
                    ..
                }
                | CostKey::ArrayAccess {
                    op: AccessOp::Write,
                    ..
                } => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Total element creations across all classes.
    pub fn creations(&self) -> u64 {
        self.counts
            .iter()
            .filter_map(|(k, v)| match k {
                CostKey::Creation { .. } => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Creations of one specific class.
    pub fn creations_of(&self, class: ClassId) -> u64 {
        self.get(CostKey::Creation { class })
    }

    /// Classes allocated in this cost map.
    pub fn created_classes(&self) -> Vec<ClassId> {
        self.counts
            .keys()
            .filter_map(|k| match k {
                CostKey::Creation { class } => Some(*class),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IN0: InputId = InputId(0);
    const IN1: InputId = InputId(1);

    #[test]
    fn bump_and_get() {
        let mut c = CostMap::new();
        c.bump(CostKey::Step);
        c.bump(CostKey::Step);
        assert_eq!(c.steps(), 2);
        assert_eq!(c.get(CostKey::InputRead), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CostMap::new();
        a.add(CostKey::Step, 3);
        let mut b = CostMap::new();
        b.add(CostKey::Step, 4);
        b.bump(CostKey::OutputWrite);
        a.merge(&b);
        assert_eq!(a.steps(), 7);
        assert_eq!(a.get(CostKey::OutputWrite), 1);
    }

    #[test]
    fn reads_and_writes_span_structs_and_arrays() {
        let mut c = CostMap::new();
        c.add(
            CostKey::StructAccess {
                input: IN0,
                op: AccessOp::Read,
            },
            5,
        );
        c.add(
            CostKey::ArrayAccess {
                input: IN0,
                op: AccessOp::Read,
            },
            2,
        );
        c.add(
            CostKey::ArrayAccess {
                input: IN1,
                op: AccessOp::Write,
            },
            9,
        );
        assert_eq!(c.reads_of(IN0), 7);
        assert_eq!(c.writes_of(IN0), 0);
        assert_eq!(c.writes_of(IN1), 9);
    }

    #[test]
    fn creations_by_class() {
        let mut c = CostMap::new();
        c.add(CostKey::Creation { class: ClassId(3) }, 4);
        c.add(CostKey::Creation { class: ClassId(5) }, 1);
        assert_eq!(c.creations(), 5);
        assert_eq!(c.creations_of(ClassId(3)), 4);
        assert_eq!(c.created_classes(), vec![ClassId(3), ClassId(5)]);
    }

    #[test]
    fn add_zero_does_not_create_entry() {
        let mut c = CostMap::new();
        c.add(CostKey::Step, 0);
        assert!(c.is_empty());
    }
}
