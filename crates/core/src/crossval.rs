//! Cross-validation of static complexity predictions against dynamic
//! fits — each analysis auditing the other.
//!
//! The dynamic profiler fits models to observed ⟨input size, cost⟩
//! points; the [`algoprof_analysis`] crate predicts a big-O class for
//! every repetition from the source alone. This module lines the two up
//! per algorithm: because static predictions and dynamic repetition
//! nodes share names (`Class.method:loopN@Lline`, `Func (recursion)`),
//! comparing them is a dictionary lookup.
//!
//! Works on *any* [`AlgorithmicProfile`] plus the source it came from,
//! so trace recordings are checkable offline: the APTR header embeds the
//! source, and `algoprof analyze <trace> --check` replays the recording
//! while [`cross_validate`] re-analyzes the embedded source — no guest
//! re-execution.
//!
//! Agreement is judged at polynomial-degree granularity
//! ([`ComplexityClass::agrees_with`]): O(n log n) agrees with a linear
//! fit, and an `Unknown` on either side makes no claim (`agrees: None`)
//! rather than a spurious verdict.

use algoprof_analysis::{analyze_source, cost_map, CostFn};
use algoprof_fit::{check_coefficient, CoeffCheck, CoeffVerdict, ComplexityClass};
use algoprof_vm::error::CompileError;

use crate::profile::AlgorithmicProfile;

/// The verdict for one algorithm: static prediction vs dynamic fit.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossCheck {
    /// Root repetition name shared by both sides.
    pub name: String,
    /// Statically predicted class, when the analysis names this
    /// repetition.
    pub predicted: Option<ComplexityClass>,
    /// The symbolic cost function behind the prediction, with
    /// coefficients where the recurrence solver proved them.
    pub cost: Option<CostFn>,
    /// Class of the best dynamic fit over this profile's per-invocation
    /// ⟨size, steps⟩ points, when the series is fittable.
    pub fitted: Option<ComplexityClass>,
    /// `Some(true)`/`Some(false)` when both sides make a claim; `None`
    /// when either is missing or `Unknown`.
    pub agrees: Option<bool>,
    /// Coefficient-level comparison of the predicted cost function's
    /// leading term against the dynamic fit.
    pub coeff: CoeffCheck,
}

impl std::fmt::Display for CrossCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let show = |c: Option<ComplexityClass>| c.map(|c| c.big_o()).unwrap_or("-");
        let verdict = match self.agrees {
            Some(true) => "agrees",
            Some(false) => "DISAGREES",
            None => "unverified",
        };
        write!(
            f,
            "{}  predicted {}  fitted {}  [{}]",
            self.name,
            show(self.predicted),
            show(self.fitted),
            verdict
        )?;
        if let Some(cost) = &self.cost {
            write!(f, "  cost {cost}")?;
        }
        if self.coeff.verdict != CoeffVerdict::Unverified {
            write!(f, "  coeff[{}]", self.coeff.verdict.label())?;
            if let (Some(p), Some(fc)) = (self.coeff.predicted, self.coeff.fitted) {
                write!(f, " {p} vs {fc:.4}")?;
            }
        }
        Ok(())
    }
}

/// Cross-validates every algorithm of `profile` against the static
/// analysis of `source` (which must be the source the profile was made
/// from — for trace recordings, the header's embedded source).
///
/// Returns one [`CrossCheck`] per algorithm, in profile order.
///
/// # Errors
///
/// Returns the compile error when `source` does not compile (it cannot
/// then be the profiled program).
pub fn cross_validate(
    profile: &AlgorithmicProfile,
    source: &str,
) -> Result<Vec<CrossCheck>, CompileError> {
    let analysis = analyze_source(source)?;
    let predictions = cost_map(&analysis.predictions);

    let mut out = Vec::new();
    for algo in profile.algorithms() {
        let name = profile.node_name(algo.root).to_string();
        let (predicted, cost) = match predictions.get(&name) {
            Some((class, cost)) => (Some(*class), Some(cost.clone())),
            None => (None, None),
        };
        let fit = profile.fit_invocation_steps(algo.id);
        let fitted = fit.as_ref().map(|f| f.model.complexity_class());
        let agrees = match (predicted, fitted) {
            (Some(p), Some(f)) => p.agrees_with(f),
            _ => None,
        };
        let coeff = check_coefficient(
            predicted,
            cost.as_ref().and_then(|c| c.leading()),
            fit.as_ref(),
        );
        out.push(CrossCheck {
            name,
            predicted,
            cost,
            fitted,
            agrees,
            coeff,
        });
    }
    Ok(out)
}

/// Renders cross-validation results as an aligned text block.
pub fn render_cross_checks(checks: &[CrossCheck]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("cross-validation (static prediction vs dynamic fit):\n");
    if checks.is_empty() {
        out.push_str("  (no algorithms)\n");
    }
    for c in checks {
        let _ = writeln!(out, "  {c}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::profile_source_with;
    use crate::AlgoProfOptions;
    use algoprof_vm::InstrumentOptions;

    // Figure-1 shape: a harness invokes the construction at growing
    // sizes, so the per-invocation ⟨size, steps⟩ series is fittable
    // within a single run.
    const SIZED_LIST: &str = "class Main {
        static int build(int n) {
            Node head = null;
            for (int i = 0; i < n; i = i + 1) {
                Node x = new Node(); x.next = head; head = x;
            }
            return 0;
        }
        static int main() {
            int k = readInput();
            for (int s = 1; s <= k; s = s + 1) { Main.build(s * 4); }
            return 0;
        }
    }
    class Node { Node next; }";

    #[test]
    fn construction_prediction_matches_dynamic_fit() {
        let profile = profile_source_with(
            SIZED_LIST,
            &InstrumentOptions::default(),
            AlgoProfOptions::default(),
            &[8],
        )
        .expect("profiles");
        let checks = cross_validate(&profile, SIZED_LIST).expect("validates");
        assert!(!checks.is_empty());
        let c = checks
            .iter()
            .find(|c| c.name.contains("build:loop0"))
            .expect("construction check");
        assert_eq!(c.predicted, Some(ComplexityClass::Linear));
        assert_eq!(c.fitted, Some(ComplexityClass::Linear), "{c}");
        assert_eq!(c.agrees, Some(true), "{c}");
        let text = render_cross_checks(&checks);
        assert!(text.contains("[agrees]"), "{text}");
    }

    #[test]
    fn non_compiling_source_is_rejected() {
        let profile = profile_source_with(
            SIZED_LIST,
            &InstrumentOptions::default(),
            AlgoProfOptions::default(),
            &[4],
        )
        .expect("profiles");
        assert!(cross_validate(&profile, "class Main {").is_err());
    }
}
