//! Self-contained HTML report with inline SVG cost-function plots —
//! the Figure-1 view of a profile, as a single file with no external
//! assets or dependencies.

use std::fmt::Write as _;

use crate::algorithms::AlgorithmId;
use crate::profile::{AlgorithmicProfile, CostMetric, ProfileSet};

/// Shared page head for profile reports.
const PROFILE_HEAD: &str = "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>algorithmic profile</title>\n<style>\n\
         body { font-family: sans-serif; margin: 2em; color: #222; }\n\
         h2 { border-bottom: 1px solid #ccc; padding-bottom: 0.2em; }\n\
         .meta { color: #555; }\n\
         pre { background: #f6f6f6; padding: 0.8em; overflow-x: auto; }\n\
         svg { background: #fafafa; border: 1px solid #ddd; }\n\
         </style></head><body>\n";

/// Renders the whole profile as a standalone HTML page: one section per
/// algorithm with its classification, an SVG scatter plot of
/// ⟨input size, steps⟩ with the fitted curve, and the fitted cost
/// function.
pub fn render_html(profile: &AlgorithmicProfile) -> String {
    let mut out = String::new();
    out.push_str(PROFILE_HEAD);
    out.push_str("<h1>Algorithmic profile</h1>\n");
    profile_body(profile, &mut out);
    out.push_str("</body></html>\n");
    out
}

/// Renders a per-thread profile set as HTML. Single-threaded sets render
/// exactly like [`render_html`] on the main profile; threaded sets get
/// one `Thread tN` headed part per guest thread plus the merged
/// cross-thread summary from [`crate::report`].
pub fn render_html_set(set: &ProfileSet) -> String {
    if !set.is_threaded() {
        return render_html(set.main());
    }
    let mut out = String::new();
    out.push_str(PROFILE_HEAD);
    for (t, p) in set.threads().iter().enumerate() {
        let label = if t == 0 { " (main)" } else { "" };
        let _ = writeln!(out, "<h1>Thread t{t}{label}</h1>");
        profile_body(p, &mut out);
    }
    out.push_str("<h1>Merged (all threads)</h1>\n");
    let _ = writeln!(
        out,
        "<pre>{}</pre>",
        escape(&crate::report::render_merged(set))
    );
    out.push_str("</body></html>\n");
    out
}

/// The per-profile body shared by [`render_html`] and
/// [`render_html_set`]: the text rendering plus one plotted section per
/// algorithm with at least two data points.
fn profile_body(profile: &AlgorithmicProfile, out: &mut String) {
    let _ = writeln!(out, "<pre>{}</pre>", escape(&profile.render_text()));

    for algo in profile.algorithms() {
        let series = profile.invocation_series(algo.id, CostMetric::Steps);
        if series.len() < 2 {
            continue;
        }
        let _ = writeln!(
            out,
            "<h2>{} <span class=\"meta\">({})</span></h2>",
            escape(profile.node_name(algo.root)),
            escape(&profile.describe_algorithm(algo.id)),
        );
        if let Some(fit) = profile.fit_invocation_steps(algo.id) {
            let _ = writeln!(
                out,
                "<p class=\"meta\">fitted: {} &nbsp; [{}]</p>",
                escape(&fit.to_string()),
                fit.model.big_o(),
            );
        }
        out.push_str(&scatter_svg(profile, algo.id, &series));
    }
}

/// An SVG scatter plot of `series` with the fitted curve overlaid.
fn scatter_svg(profile: &AlgorithmicProfile, algo: AlgorithmId, series: &[(f64, f64)]) -> String {
    const W: f64 = 520.0;
    const H: f64 = 320.0;
    const PAD: f64 = 45.0;

    let max_x = series.iter().map(|p| p.0).fold(1.0f64, f64::max);
    let max_y = series.iter().map(|p| p.1).fold(1.0f64, f64::max);
    let sx = |x: f64| PAD + x / max_x * (W - 2.0 * PAD);
    let sy = |y: f64| H - PAD - y / max_y * (H - 2.0 * PAD);

    let mut svg = format!(
        "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\" \
         xmlns=\"http://www.w3.org/2000/svg\">\n"
    );
    // Axes.
    let _ = writeln!(
        svg,
        "  <line x1=\"{PAD}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#333\"/>\n\
         \x20 <line x1=\"{PAD}\" y1=\"{PAD}\" x2=\"{PAD}\" y2=\"{0}\" stroke=\"#333\"/>",
        H - PAD,
        W - PAD,
    );
    // Axis labels.
    let _ = writeln!(
        svg,
        "  <text x=\"{}\" y=\"{}\" font-size=\"11\" text-anchor=\"middle\">input size (max {max_x})</text>\n\
         \x20 <text x=\"12\" y=\"{}\" font-size=\"11\" transform=\"rotate(-90 12 {})\" text-anchor=\"middle\">steps (max {max_y})</text>",
        W / 2.0,
        H - 10.0,
        H / 2.0,
        H / 2.0,
    );

    // Fitted curve, sampled at 64 points.
    if let Some(fit) = profile.fit_invocation_steps(algo) {
        let mut d = String::new();
        for i in 0..=64 {
            let x = max_x * i as f64 / 64.0;
            let y = fit.predict(x).clamp(0.0, max_y * 1.05);
            let cmd = if i == 0 { 'M' } else { 'L' };
            let _ = write!(d, "{cmd}{:.1},{:.1} ", sx(x), sy(y.min(max_y)));
        }
        let _ = writeln!(
            svg,
            "  <path d=\"{d}\" fill=\"none\" stroke=\"#c33\" stroke-width=\"1.5\"/>"
        );
    }

    // Points.
    for &(x, y) in series {
        let _ = writeln!(
            svg,
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"#246\" fill-opacity=\"0.75\"/>",
            sx(x),
            sy(y)
        );
    }

    svg.push_str("</svg>\n");
    svg
}

/// Renders a sweep report as a standalone HTML page: the job table plus
/// one section per merged series with its scatter plot and fits.
/// Deterministic — the bytes depend only on the report contents.
pub fn render_sweep_html(report: &crate::sweep::SweepReport) -> String {
    let mut out = String::new();
    out.push_str(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>algoprof sweep</title>\n<style>\n\
         body { font-family: sans-serif; margin: 2em; color: #222; }\n\
         h2 { border-bottom: 1px solid #ccc; padding-bottom: 0.2em; }\n\
         .meta { color: #555; }\n\
         table { border-collapse: collapse; }\n\
         td, th { border: 1px solid #ccc; padding: 0.3em 0.7em; }\n\
         svg { background: #fafafa; border: 1px solid #ddd; }\n\
         .agree { color: #2a7a2a; }\n\
         .classonly { color: #8a6d00; }\n\
         .disagree { color: #b00020; }\n\
         </style></head><body>\n<h1>Sweep report</h1>\n",
    );
    let _ = writeln!(
        out,
        "<p class=\"meta\">program: {} &nbsp; sizes: {} &nbsp; ablations: {}</p>",
        escape(&report.program),
        report
            .sizes
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(" "),
        escape(&report.ablations.join(" ")),
    );

    out.push_str("<table>\n<tr><th>job</th><th>trace bytes</th><th>events</th>");
    for a in &report.ablations {
        let _ = write!(out, "<th>steps [{}]</th>", escape(a));
    }
    out.push_str("</tr>\n");
    for job in &report.jobs {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td>",
            escape(&job.label),
            job.trace_bytes,
            job.events
        );
        for run in &job.runs {
            let _ = write!(out, "<td>{}</td>", run.total_steps);
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");

    for s in &report.series {
        let prefix = if s.program.is_empty() {
            String::new()
        } else {
            format!("{} · ", s.program)
        };
        let tsuffix = match s.thread {
            Some(t) => format!(" [t{t}]"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "<h2>{}{}{tsuffix} <span class=\"meta\">[{}]</span></h2>",
            escape(&prefix),
            escape(&s.algorithm),
            escape(&s.ablation),
        );
        if !s.kind.is_empty() {
            let _ = writeln!(out, "<p class=\"meta\">{}</p>", escape(&s.kind));
        }
        if let Some(fit) = &s.fit {
            let _ = writeln!(
                out,
                "<p class=\"meta\">best fit: {} &nbsp; rmse = {:.4} &nbsp; [{}]</p>",
                escape(&fit.to_string()),
                fit.rmse,
                fit.model.big_o(),
            );
        }
        if let Some(p) = &s.power_law {
            let _ = writeln!(
                out,
                "<p class=\"meta\">power law: {}</p>",
                escape(&p.to_string()),
            );
        }
        if let Some(pred) = s.predicted {
            use algoprof_fit::CoeffVerdict;
            let verdict = match s.coeff.verdict {
                CoeffVerdict::Agrees => match (s.coeff.predicted, s.coeff.fitted) {
                    (Some(p), Some(f)) => format!(
                        "<span class=\"agree\">[agrees]</span> (coeff {p} vs fitted {f:.4})"
                    ),
                    _ => "<span class=\"agree\">[agrees]</span>".to_string(),
                },
                CoeffVerdict::ClassOnly => format!(
                    "<span class=\"classonly\">[class-only: {}]</span>",
                    escape(s.coeff.reason),
                ),
                CoeffVerdict::Disagrees => format!(
                    "<strong class=\"disagree\">[DISAGREES with best fit {}]</strong>",
                    s.fit.as_ref().map(|f| f.model.big_o()).unwrap_or("(none)"),
                ),
                CoeffVerdict::Unverified => "[unverified]".to_string(),
            };
            let cost = match &s.predicted_cost {
                Some(c) => format!(" = {}", escape(&c.to_string())),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "<p class=\"meta\">predicted: {}{cost} &nbsp; {verdict}</p>",
                pred.big_o(),
            );
        }
        out.push_str(&sweep_scatter_svg(&s.points, s.fit.as_ref()));
    }

    out.push_str("</body></html>\n");
    out
}

/// An SVG scatter plot of merged sweep points with an optional fitted
/// curve — the standalone sibling of [`scatter_svg`], which needs a full
/// profile.
fn sweep_scatter_svg(series: &[(f64, f64)], fit: Option<&algoprof_fit::Fit>) -> String {
    const W: f64 = 520.0;
    const H: f64 = 320.0;
    const PAD: f64 = 45.0;

    let max_x = series.iter().map(|p| p.0).fold(1.0f64, f64::max);
    let max_y = series.iter().map(|p| p.1).fold(1.0f64, f64::max);
    let sx = |x: f64| PAD + x / max_x * (W - 2.0 * PAD);
    let sy = |y: f64| H - PAD - y / max_y * (H - 2.0 * PAD);

    let mut svg = format!(
        "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\" \
         xmlns=\"http://www.w3.org/2000/svg\">\n"
    );
    let _ = writeln!(
        svg,
        "  <line x1=\"{PAD}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#333\"/>\n\
         \x20 <line x1=\"{PAD}\" y1=\"{PAD}\" x2=\"{PAD}\" y2=\"{0}\" stroke=\"#333\"/>",
        H - PAD,
        W - PAD,
    );
    let _ = writeln!(
        svg,
        "  <text x=\"{}\" y=\"{}\" font-size=\"11\" text-anchor=\"middle\">input size (max {max_x})</text>\n\
         \x20 <text x=\"12\" y=\"{}\" font-size=\"11\" transform=\"rotate(-90 12 {})\" text-anchor=\"middle\">steps (max {max_y})</text>",
        W / 2.0,
        H - 10.0,
        H / 2.0,
        H / 2.0,
    );
    if let Some(fit) = fit {
        let mut d = String::new();
        for i in 0..=64 {
            let x = max_x * i as f64 / 64.0;
            let y = fit.predict(x).clamp(0.0, max_y * 1.05);
            let cmd = if i == 0 { 'M' } else { 'L' };
            let _ = write!(d, "{cmd}{:.1},{:.1} ", sx(x), sy(y.min(max_y)));
        }
        let _ = writeln!(
            svg,
            "  <path d=\"{d}\" fill=\"none\" stroke=\"#c33\" stroke-width=\"1.5\"/>"
        );
    }
    for &(x, y) in series {
        let _ = writeln!(
            svg,
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"#246\" fill-opacity=\"0.75\"/>",
            sx(x),
            sy(y)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_profile() -> AlgorithmicProfile {
        let src = algoprof_programs_src();
        crate::run::profile_source(&src).expect("profiles")
    }

    // A small local sweep (avoiding a cyclic dev-dependency on the
    // programs crate).
    fn algoprof_programs_src() -> String {
        r#"
        class Main {
            static int main() {
                for (int size = 5; size <= 40; size = size + 5) {
                    Node head = null;
                    for (int i = 0; i < size; i = i + 1) {
                        Node n = new Node();
                        n.next = head;
                        head = n;
                    }
                }
                return 0;
            }
        }
        class Node { Node next; }
        "#
        .to_owned()
    }

    #[test]
    fn html_contains_svg_and_fit() {
        let p = sort_profile();
        let html = render_html(&p);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("circle"));
        assert!(html.contains("fitted:"));
        assert!(html.trim_end().ends_with("</html>"));
    }

    #[test]
    fn html_escapes_special_characters() {
        assert_eq!(escape("a<b && c>d"), "a&lt;b &amp;&amp; c&gt;d");
    }

    #[test]
    fn svg_point_count_matches_series() {
        let p = sort_profile();
        let algo = p
            .algorithm_by_root_name("Main.main:loop1")
            .expect("construction loop");
        let series = p.invocation_series(algo.id, CostMetric::Steps);
        let svg = scatter_svg(&p, algo.id, &series);
        assert_eq!(svg.matches("<circle").count(), series.len());
        assert_eq!(svg.matches("<path").count(), 1, "one fitted curve");
    }
}
