//! Input identification (paper §2.3–§2.4, §3.4).
//!
//! An algorithm's *inputs* are the data structures, arrays, and external
//! streams it accesses. Structures evolve while a program runs, so the
//! registry resolves each new snapshot to an [`InputId`] using an
//! [`EquivalenceCriterion`]:
//!
//! * reference keys (objects, arrays) are globally unique in the guest
//!   heap, so a reverse map resolves re-accesses in O(1);
//! * primitive-value keys (int-array contents) are only matched against
//!   *candidate* inputs supplied by the caller — the inputs observed by
//!   the currently active repetition chain — which keeps the paper's
//!   "Some Elements Identical" behaviour for reallocated arrays without
//!   accidentally merging unrelated arrays that happen to share values.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use algoprof_vm::bytecode::ElemKind;
use algoprof_vm::{ClassId, CompiledProgram};

use algoprof_vm::{Heap, Value};

use crate::snapshot::{
    measure_value, try_partial_array, try_partial_structure, ArraySizeStrategy, ElemKey,
    EquivalenceCriterion, IncrementalMode, Measurement, Snapshot, SnapshotKind, SnapshotStats,
};

/// Identifies one input of one or more algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputId(pub u32);

impl InputId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "input#{}", self.0)
    }
}

/// What kind of input this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputKind {
    /// A recursive data structure.
    Structure,
    /// An array (element kind of the root array).
    Array(ElemKind),
    /// The external input stream (`readInput()`).
    ExternalInput,
    /// The external output stream (`print()`).
    ExternalOutput,
}

/// Everything known about one input.
#[derive(Debug, Clone, PartialEq)]
pub struct InputInfo {
    /// The input's id.
    pub id: InputId,
    /// Structure / array / external.
    pub kind: InputKind,
    /// Classes of elements ever observed (with the largest per-class
    /// count seen in one snapshot).
    pub classes: BTreeMap<ClassId, usize>,
    /// Largest size ever observed.
    pub max_size: usize,
    /// Size of the most recent snapshot.
    pub last_size: usize,
    /// Most recent measurement: the snapshot (identity keys for
    /// AllElements matching) plus the epoch/container data that lets a
    /// later traversal reuse it.
    pub last_measurement: Option<Measurement>,
    /// Heap epoch of the last write observed to a reference resolving to
    /// this input. When `dirty_epoch <= last_measurement.epoch`, the
    /// cached measurement is current without any per-container check.
    pub dirty_epoch: u64,
    /// Set when another input's measurement claimed one of this input's
    /// reference keys in the reverse map. Writes through such keys no
    /// longer mark this input dirty, so the O(1) clean check is
    /// disabled and validity falls back to per-container stamps.
    pub shared: bool,
}

impl InputInfo {
    /// The most recent snapshot, if any structure snapshot was taken.
    pub fn last_snapshot(&self) -> Option<&Snapshot> {
        self.last_measurement.as_ref().map(|m| &m.snapshot)
    }
}

impl InputInfo {
    /// A human-readable description, e.g. `Node-based recursive
    /// structure` or `int array`.
    pub fn describe(&self, program: &CompiledProgram) -> String {
        match &self.kind {
            InputKind::Structure => {
                let names: Vec<&str> = self
                    .classes
                    .keys()
                    .map(|&c| program.class(c).name.as_str())
                    .collect();
                if names.is_empty() {
                    "recursive structure".to_owned()
                } else {
                    format!("{}-based recursive structure", names.join("/"))
                }
            }
            InputKind::Array(ElemKind::Int) => "int array".to_owned(),
            InputKind::Array(ElemKind::Bool) => "boolean array".to_owned(),
            InputKind::Array(ElemKind::Ref) => "reference array".to_owned(),
            InputKind::ExternalInput => "external input".to_owned(),
            InputKind::ExternalOutput => "external output".to_owned(),
        }
    }
}

/// The global input table plus the reverse map from heap references to
/// inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct InputRegistry {
    inputs: Vec<InputInfo>,
    ref_map: HashMap<ElemKey, InputId>,
    criterion: EquivalenceCriterion,
    array_strategy: ArraySizeStrategy,
    incremental: IncrementalMode,
    stats: SnapshotStats,
}

impl InputRegistry {
    /// Creates an empty registry with the given matching configuration.
    pub fn new(criterion: EquivalenceCriterion, array_strategy: ArraySizeStrategy) -> Self {
        InputRegistry::with_incremental(criterion, array_strategy, IncrementalMode::default())
    }

    /// Creates an empty registry with explicit snapshot-caching
    /// behaviour.
    pub fn with_incremental(
        criterion: EquivalenceCriterion,
        array_strategy: ArraySizeStrategy,
        incremental: IncrementalMode,
    ) -> Self {
        InputRegistry {
            inputs: Vec::new(),
            ref_map: HashMap::new(),
            criterion,
            array_strategy,
            incremental,
            stats: SnapshotStats::default(),
        }
    }

    /// The configured array sizing strategy.
    pub fn array_strategy(&self) -> ArraySizeStrategy {
        self.array_strategy
    }

    /// Counters of traversal work done (and saved) so far.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.stats
    }

    /// All inputs registered so far.
    pub fn inputs(&self) -> &[InputInfo] {
        &self.inputs
    }

    /// The info for `id`.
    pub fn input(&self, id: InputId) -> &InputInfo {
        &self.inputs[id.index()]
    }

    /// Fast path: resolves a heap reference key previously seen in a
    /// snapshot.
    pub fn resolve_ref(&self, key: ElemKey) -> Option<InputId> {
        self.ref_map.get(&key).copied()
    }

    /// Resolves measurement `m` to an existing or fresh input.
    /// `candidates` are the inputs accessed by the active repetition
    /// chain, used for matching that cannot rely on reference identity
    /// (primitive arrays, AllElements, SameType).
    pub fn identify(&mut self, m: Measurement, candidates: &[InputId]) -> InputId {
        let found = self.match_existing(&m.snapshot, candidates);
        match found {
            Some(id) => {
                self.record_measurement(id, m);
                id
            }
            None => self.register(m),
        }
    }

    fn match_existing(&self, snap: &Snapshot, candidates: &[InputId]) -> Option<InputId> {
        match self.criterion {
            EquivalenceCriterion::SomeElements => {
                // Reference identity first.
                for key in snap.ref_keys() {
                    if let Some(&id) = self.ref_map.get(&key) {
                        return Some(id);
                    }
                }
                // Value overlap against the active candidates only.
                for &cand in candidates {
                    if let Some(last) = self.inputs[cand.index()].last_snapshot() {
                        if snap.equivalent(last, EquivalenceCriterion::SomeElements) {
                            return Some(cand);
                        }
                    }
                }
                None
            }
            EquivalenceCriterion::AllElements => {
                let mut seen: Vec<InputId> = candidates.to_vec();
                for key in snap.ref_keys() {
                    if let Some(&id) = self.ref_map.get(&key) {
                        seen.push(id);
                    }
                }
                seen.sort_unstable();
                seen.dedup();
                seen.into_iter().find(|&id| {
                    self.inputs[id.index()].last_snapshot().is_some_and(|last| {
                        snap.equivalent(last, EquivalenceCriterion::AllElements)
                    })
                })
            }
            EquivalenceCriterion::SameArray => match &snap.kind {
                SnapshotKind::Array { .. } => {
                    let root = snap.keys.iter().find_map(|k| match k {
                        ElemKey::Arr(a) => Some(ElemKey::Arr(*a)),
                        _ => None,
                    })?;
                    self.ref_map.get(&root).copied()
                }
                // The paper notes SameArray only works for arrays;
                // structures fall back to reference overlap.
                SnapshotKind::Structure { .. } => snap
                    .ref_keys()
                    .find_map(|key| self.ref_map.get(&key).copied()),
            },
            EquivalenceCriterion::SameType => self
                .inputs
                .iter()
                .find(|i| {
                    i.last_snapshot()
                        .is_some_and(|last| snap.equivalent(last, EquivalenceCriterion::SameType))
                })
                .map(|i| i.id),
        }
    }

    fn register(&mut self, m: Measurement) -> InputId {
        let id = InputId(self.inputs.len() as u32);
        let kind = match &m.snapshot.kind {
            SnapshotKind::Structure { .. } => InputKind::Structure,
            SnapshotKind::Array { elem } => InputKind::Array(*elem),
        };
        self.inputs.push(InputInfo {
            id,
            kind,
            classes: BTreeMap::new(),
            max_size: 0,
            last_size: 0,
            last_measurement: None,
            dirty_epoch: 0,
            shared: false,
        });
        self.record_measurement(id, m);
        id
    }

    /// Records a fresh measurement of input `id`: updates sizes, class
    /// info, and the reverse reference map, and resets the dirty state so
    /// the cached snapshot counts as current.
    ///
    /// Structure snapshots claim all their reference keys in the map;
    /// array snapshots claim only array keys. Objects stored *in* an
    /// array are elements, not parts of it — a field access on such an
    /// object must resolve to the object's own structure, so arrays may
    /// not shadow object keys (element overlap for arrays is still
    /// matched through the candidate path, which compares full
    /// snapshots).
    pub fn record_measurement(&mut self, id: InputId, m: Measurement) {
        let arrays_only = matches!(m.snapshot.kind, SnapshotKind::Array { .. });
        for key in m.snapshot.ref_keys() {
            if arrays_only && !matches!(key, ElemKey::Arr(_)) {
                continue;
            }
            self.claim_key(key, id);
        }
        let size = m.snapshot.size_under(self.array_strategy);
        let info = &mut self.inputs[id.index()];
        if let SnapshotKind::Structure { classes } = &m.snapshot.kind {
            for (&c, &n) in classes {
                let e = info.classes.entry(c).or_insert(0);
                *e = (*e).max(n);
            }
        }
        info.last_size = size;
        info.max_size = info.max_size.max(size);
        info.dirty_epoch = m.epoch;
        info.shared = false;
        info.last_measurement = Some(m);
    }

    /// Inserts `key -> id` into the reverse map. If the key previously
    /// resolved to a *different* input, that input loses its O(1) dirty
    /// tracking: writes through the key now mark `id` dirty, not the old
    /// owner, so the old owner is flagged `shared` and must validate its
    /// cache against per-container heap stamps instead.
    fn claim_key(&mut self, key: ElemKey, id: InputId) {
        if let Some(prev) = self.ref_map.insert(key, id) {
            if prev != id {
                self.inputs[prev.index()].shared = true;
            }
        }
    }

    /// Notes a write observed through a reference resolving to input
    /// `id`, at heap epoch `epoch`.
    pub fn mark_dirty(&mut self, id: InputId, epoch: u64) {
        let info = &mut self.inputs[id.index()];
        info.dirty_epoch = info.dirty_epoch.max(epoch);
    }

    /// Takes a full (non-incremental) measurement of the value at `r`,
    /// for snapshots that have not yet been resolved to an input.
    pub fn measure_unidentified(
        &mut self,
        program: &CompiledProgram,
        heap: &Heap,
        r: Value,
    ) -> Option<Measurement> {
        measure_value(program, heap, r, &mut self.stats)
    }

    /// Re-measures input `id`, currently rooted at `r`, reusing the
    /// cached measurement when the heap write stamps prove it is still
    /// exact. Returns the input's size under the configured array
    /// strategy, or `None` if `r` is not measurable (null / int).
    ///
    /// Validation is layered, cheapest first:
    ///
    /// 1. *O(1) dirty check* — same root, input not `shared`, and no
    ///    write observed through its references since the cached epoch.
    /// 2. *Stamp scan* — every container recorded by the cached
    ///    traversal is unmodified since the cached epoch (heals
    ///    false-dirties from writes that resolved here but hit another
    ///    overlapping structure).
    /// 3. *Partial redo* — re-scan only the modified containers and
    ///    grow the snapshot by the newly reachable region (growth-only;
    ///    any removed edge falls through).
    /// 4. *Full walk* — traverse from scratch and re-record.
    ///
    /// Under [`IncrementalMode::Differential`] every reuse is checked
    /// against a from-scratch traversal and must match exactly.
    pub fn remeasure(
        &mut self,
        program: &CompiledProgram,
        heap: &Heap,
        id: InputId,
        r: Value,
    ) -> Option<usize> {
        if self.incremental == IncrementalMode::Disabled {
            let m = measure_value(program, heap, r, &mut self.stats)?;
            self.record_measurement(id, m);
            return Some(self.inputs[id.index()].last_size);
        }

        let root = match r {
            Value::Obj(o) => ElemKey::Obj(o),
            Value::Arr(a) => ElemKey::Arr(a),
            Value::Int(_) | Value::Bool(_) | Value::Null => {
                let m = measure_value(program, heap, r, &mut self.stats)?;
                self.record_measurement(id, m);
                return Some(self.inputs[id.index()].last_size);
            }
        };

        let differential = self.incremental == IncrementalMode::Differential;
        let info = &self.inputs[id.index()];
        let (cached_root, fast_clean) = match &info.last_measurement {
            Some(m) if m.root == root => (true, !info.shared && info.dirty_epoch <= m.epoch),
            _ => (false, false),
        };

        if cached_root {
            // Layer 1: nothing resolving to this input was written.
            if fast_clean {
                self.stats.cache_hits += 1;
                if differential {
                    self.verify_cached(program, heap, id, r);
                }
                return Some(self.inputs[id.index()].last_size);
            }
            // Layer 2: stamps prove the traversed containers untouched.
            let exact = self.inputs[id.index()]
                .last_measurement
                .as_ref()
                .is_some_and(|m| m.still_exact(heap));
            if exact {
                self.stats.cache_hits += 1;
                // Refresh the epoch so the O(1) check works next time,
                // and advance the replay window: untouched containers
                // mean none of the journalled stores were ours.
                let epoch = heap.epoch();
                let log_pos = heap.log_pos();
                let info = &mut self.inputs[id.index()];
                if let Some(m) = info.last_measurement.as_mut() {
                    m.epoch = epoch;
                    if m.log_pos != u64::MAX {
                        m.log_pos = log_pos;
                    }
                }
                if differential {
                    self.verify_cached(program, heap, id, r);
                }
                return Some(self.inputs[id.index()].last_size);
            }
            // Layer 3: partial redo — structures re-scan modified
            // containers and traverse the newly linked region; arrays
            // replay the heap's element-store journal.
            let mut taken = self.inputs[id.index()].last_measurement.take();
            let added = taken.as_mut().and_then(|m| match m.snapshot.kind {
                SnapshotKind::Structure { .. } => {
                    try_partial_structure(program, heap, m, &mut self.stats)
                }
                SnapshotKind::Array { .. } => {
                    try_partial_array(heap, m, &mut self.stats).map(|_| Vec::new())
                }
            });
            match (added, taken) {
                (Some(added), Some(m)) => {
                    let size = m.snapshot.size_under(self.array_strategy);
                    let info = &mut self.inputs[id.index()];
                    if let SnapshotKind::Structure { classes } = &m.snapshot.kind {
                        for (&c, &n) in classes {
                            let e = info.classes.entry(c).or_insert(0);
                            *e = (*e).max(n);
                        }
                    }
                    info.last_size = size;
                    info.max_size = info.max_size.max(size);
                    info.dirty_epoch = m.epoch;
                    info.last_measurement = Some(m);
                    for key in added {
                        self.claim_key(key, id);
                    }
                    if differential {
                        self.verify_cached(program, heap, id, r);
                    }
                    return Some(self.inputs[id.index()].last_size);
                }
                (_, taken) => self.inputs[id.index()].last_measurement = taken,
            }
        }

        // Layer 4: full walk.
        let m = measure_value(program, heap, r, &mut self.stats)?;
        self.record_measurement(id, m);
        Some(self.inputs[id.index()].last_size)
    }

    /// Differential-mode check: the cached snapshot for `id` must equal a
    /// from-scratch traversal of `r`. The verification traversal uses a
    /// scratch stats block so it does not pollute the reuse counters.
    fn verify_cached(&self, program: &CompiledProgram, heap: &Heap, id: InputId, r: Value) {
        let mut scratch = SnapshotStats::default();
        let fresh = measure_value(program, heap, r, &mut scratch)
            .expect("differential check: root became unmeasurable");
        let cached = self.inputs[id.index()]
            .last_measurement
            .as_ref()
            .expect("differential check: no cached measurement");
        assert_eq!(
            cached.snapshot, fresh.snapshot,
            "incremental snapshot diverged from full traversal for {id}"
        );
    }

    /// Registers (or returns) the singleton external-input stream.
    pub fn external_input(&mut self) -> InputId {
        self.external(InputKind::ExternalInput)
    }

    /// Registers (or returns) the singleton external-output stream.
    pub fn external_output(&mut self) -> InputId {
        self.external(InputKind::ExternalOutput)
    }

    fn external(&mut self, kind: InputKind) -> InputId {
        if let Some(i) = self.inputs.iter().find(|i| i.kind == kind) {
            return i.id;
        }
        let id = InputId(self.inputs.len() as u32);
        self.inputs.push(InputInfo {
            id,
            kind,
            classes: BTreeMap::new(),
            max_size: 0,
            last_size: 0,
            last_measurement: None,
            dirty_epoch: 0,
            shared: false,
        });
        id
    }

    /// Bumps the observed size of an external stream (1 per read/write).
    pub fn bump_external(&mut self, id: InputId) {
        let info = &mut self.inputs[id.index()];
        info.last_size += 1;
        info.max_size = info.max_size.max(info.last_size);
    }
}

impl Default for InputRegistry {
    fn default() -> Self {
        InputRegistry::new(
            EquivalenceCriterion::default(),
            ArraySizeStrategy::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    use algoprof_vm::heap::{ArrRef, ObjRef};

    fn struct_snap(objs: &[u32], class: u32) -> Snapshot {
        let mut keys = BTreeSet::new();
        let mut classes = BTreeMap::new();
        for &o in objs {
            keys.insert(ElemKey::Obj(ObjRef(o)));
        }
        classes.insert(ClassId(class), objs.len());
        Snapshot {
            keys,
            kind: SnapshotKind::Structure { classes },
            size: objs.len(),
            unique_size: objs.len(),
            refs_traversed: 0,
        }
    }

    fn int_array_snap(arr: u32, values: &[i64]) -> Snapshot {
        let mut keys = BTreeSet::new();
        keys.insert(ElemKey::Arr(ArrRef(arr)));
        for &v in values {
            keys.insert(ElemKey::Int(v));
        }
        Snapshot {
            keys,
            kind: SnapshotKind::Array {
                elem: ElemKind::Int,
            },
            size: values.len(),
            unique_size: values.iter().collect::<BTreeSet<_>>().len(),
            refs_traversed: 0,
        }
    }

    #[test]
    fn overlapping_structure_snapshots_are_one_input() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(Measurement::detached(struct_snap(&[1, 2, 3], 0)), &[]);
        let b = reg.identify(Measurement::detached(struct_snap(&[3, 4], 0)), &[]);
        assert_eq!(a, b);
        assert_eq!(reg.input(a).max_size, 3);
    }

    #[test]
    fn disjoint_structures_are_distinct_inputs() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(Measurement::detached(struct_snap(&[1, 2], 0)), &[]);
        let b = reg.identify(Measurement::detached(struct_snap(&[5, 6], 0)), &[]);
        assert_ne!(a, b);
        assert_eq!(reg.inputs().len(), 2);
    }

    #[test]
    fn growing_structure_updates_max_size() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(Measurement::detached(struct_snap(&[1], 0)), &[]);
        reg.identify(Measurement::detached(struct_snap(&[1, 2, 3, 4], 0)), &[]);
        reg.identify(Measurement::detached(struct_snap(&[4], 0)), &[]);
        assert_eq!(reg.input(a).max_size, 4);
        assert_eq!(reg.input(a).last_size, 1);
    }

    #[test]
    fn int_arrays_merge_only_via_candidates() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(Measurement::detached(int_array_snap(0, &[1, 2, 3])), &[]);
        // Overlapping values but NOT a candidate: new input.
        let b = reg.identify(Measurement::detached(int_array_snap(1, &[2, 3, 4])), &[]);
        assert_ne!(a, b);
        // Overlapping values and a candidate (the reallocation case):
        // same input.
        let c = reg.identify(
            Measurement::detached(int_array_snap(2, &[2, 3, 4, 5])),
            &[b],
        );
        assert_eq!(b, c);
    }

    #[test]
    fn ref_identity_survives_without_candidates() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(Measurement::detached(int_array_snap(7, &[9])), &[]);
        // Re-access of the same array is a ref-map hit even with no
        // candidates.
        let b = reg.identify(Measurement::detached(int_array_snap(7, &[9, 10])), &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn all_elements_criterion_requires_exact_match() {
        let mut reg = InputRegistry::new(
            EquivalenceCriterion::AllElements,
            ArraySizeStrategy::Capacity,
        );
        let a = reg.identify(Measurement::detached(struct_snap(&[1, 2], 0)), &[]);
        // Overlap but not equality: a fresh input under AllElements.
        let b = reg.identify(Measurement::detached(struct_snap(&[1, 2, 3], 0)), &[]);
        assert_ne!(a, b);
        let c = reg.identify(Measurement::detached(struct_snap(&[1, 2, 3], 0)), &[]);
        assert_eq!(b, c);
    }

    #[test]
    fn same_type_criterion_merges_disconnected_instances() {
        let mut reg =
            InputRegistry::new(EquivalenceCriterion::SameType, ArraySizeStrategy::Capacity);
        let a = reg.identify(Measurement::detached(struct_snap(&[1], 0)), &[]);
        let b = reg.identify(Measurement::detached(struct_snap(&[9], 0)), &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn external_streams_are_singletons() {
        let mut reg = InputRegistry::default();
        let i1 = reg.external_input();
        let i2 = reg.external_input();
        let o = reg.external_output();
        assert_eq!(i1, i2);
        assert_ne!(i1, o);
        reg.bump_external(i1);
        reg.bump_external(i1);
        assert_eq!(reg.input(i1).max_size, 2);
    }

    #[test]
    fn input_id_display() {
        assert_eq!(InputId(3).to_string(), "input#3");
    }
}
