//! Input identification (paper §2.3–§2.4, §3.4).
//!
//! An algorithm's *inputs* are the data structures, arrays, and external
//! streams it accesses. Structures evolve while a program runs, so the
//! registry resolves each new snapshot to an [`InputId`] using an
//! [`EquivalenceCriterion`]:
//!
//! * reference keys (objects, arrays) are globally unique in the guest
//!   heap, so a reverse map resolves re-accesses in O(1);
//! * primitive-value keys (int-array contents) are only matched against
//!   *candidate* inputs supplied by the caller — the inputs observed by
//!   the currently active repetition chain — which keeps the paper's
//!   "Some Elements Identical" behaviour for reallocated arrays without
//!   accidentally merging unrelated arrays that happen to share values.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use algoprof_vm::bytecode::ElemKind;
use algoprof_vm::{ClassId, CompiledProgram};

use crate::snapshot::{ArraySizeStrategy, ElemKey, EquivalenceCriterion, Snapshot, SnapshotKind};

/// Identifies one input of one or more algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputId(pub u32);

impl InputId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "input#{}", self.0)
    }
}

/// What kind of input this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputKind {
    /// A recursive data structure.
    Structure,
    /// An array (element kind of the root array).
    Array(ElemKind),
    /// The external input stream (`readInput()`).
    ExternalInput,
    /// The external output stream (`print()`).
    ExternalOutput,
}

/// Everything known about one input.
#[derive(Debug, Clone)]
pub struct InputInfo {
    /// The input's id.
    pub id: InputId,
    /// Structure / array / external.
    pub kind: InputKind,
    /// Classes of elements ever observed (with the largest per-class
    /// count seen in one snapshot).
    pub classes: BTreeMap<ClassId, usize>,
    /// Largest size ever observed.
    pub max_size: usize,
    /// Size of the most recent snapshot.
    pub last_size: usize,
    /// Most recent snapshot (identity keys for AllElements matching).
    pub last_snapshot: Option<Snapshot>,
}

impl InputInfo {
    /// A human-readable description, e.g. `Node-based recursive
    /// structure` or `int array`.
    pub fn describe(&self, program: &CompiledProgram) -> String {
        match &self.kind {
            InputKind::Structure => {
                let names: Vec<&str> = self
                    .classes
                    .keys()
                    .map(|&c| program.class(c).name.as_str())
                    .collect();
                if names.is_empty() {
                    "recursive structure".to_owned()
                } else {
                    format!("{}-based recursive structure", names.join("/"))
                }
            }
            InputKind::Array(ElemKind::Int) => "int array".to_owned(),
            InputKind::Array(ElemKind::Bool) => "boolean array".to_owned(),
            InputKind::Array(ElemKind::Ref) => "reference array".to_owned(),
            InputKind::ExternalInput => "external input".to_owned(),
            InputKind::ExternalOutput => "external output".to_owned(),
        }
    }
}

/// The global input table plus the reverse map from heap references to
/// inputs.
#[derive(Debug, Clone)]
pub struct InputRegistry {
    inputs: Vec<InputInfo>,
    ref_map: HashMap<ElemKey, InputId>,
    criterion: EquivalenceCriterion,
    array_strategy: ArraySizeStrategy,
}

impl InputRegistry {
    /// Creates an empty registry with the given matching configuration.
    pub fn new(criterion: EquivalenceCriterion, array_strategy: ArraySizeStrategy) -> Self {
        InputRegistry {
            inputs: Vec::new(),
            ref_map: HashMap::new(),
            criterion,
            array_strategy,
        }
    }

    /// The configured array sizing strategy.
    pub fn array_strategy(&self) -> ArraySizeStrategy {
        self.array_strategy
    }

    /// All inputs registered so far.
    pub fn inputs(&self) -> &[InputInfo] {
        &self.inputs
    }

    /// The info for `id`.
    pub fn input(&self, id: InputId) -> &InputInfo {
        &self.inputs[id.index()]
    }

    /// Fast path: resolves a heap reference key previously seen in a
    /// snapshot.
    pub fn resolve_ref(&self, key: ElemKey) -> Option<InputId> {
        self.ref_map.get(&key).copied()
    }

    /// Resolves `snap` to an existing or fresh input. `candidates` are the
    /// inputs accessed by the active repetition chain, used for matching
    /// that cannot rely on reference identity (primitive arrays,
    /// AllElements, SameType).
    pub fn identify(&mut self, snap: Snapshot, candidates: &[InputId]) -> InputId {
        let found = self.match_existing(&snap, candidates);
        match found {
            Some(id) => {
                self.record_snapshot(id, snap);
                id
            }
            None => self.register(snap),
        }
    }

    fn match_existing(&self, snap: &Snapshot, candidates: &[InputId]) -> Option<InputId> {
        match self.criterion {
            EquivalenceCriterion::SomeElements => {
                // Reference identity first.
                for key in snap.ref_keys() {
                    if let Some(&id) = self.ref_map.get(&key) {
                        return Some(id);
                    }
                }
                // Value overlap against the active candidates only.
                for &cand in candidates {
                    if let Some(last) = &self.inputs[cand.index()].last_snapshot {
                        if snap.equivalent(last, EquivalenceCriterion::SomeElements) {
                            return Some(cand);
                        }
                    }
                }
                None
            }
            EquivalenceCriterion::AllElements => {
                let mut seen: Vec<InputId> = candidates.to_vec();
                for key in snap.ref_keys() {
                    if let Some(&id) = self.ref_map.get(&key) {
                        seen.push(id);
                    }
                }
                seen.sort_unstable();
                seen.dedup();
                seen.into_iter().find(|&id| {
                    self.inputs[id.index()]
                        .last_snapshot
                        .as_ref()
                        .is_some_and(|last| snap.equivalent(last, EquivalenceCriterion::AllElements))
                })
            }
            EquivalenceCriterion::SameArray => match &snap.kind {
                SnapshotKind::Array { .. } => {
                    let root = snap.keys.iter().find_map(|k| match k {
                        ElemKey::Arr(a) => Some(ElemKey::Arr(*a)),
                        _ => None,
                    })?;
                    self.ref_map.get(&root).copied()
                }
                // The paper notes SameArray only works for arrays;
                // structures fall back to reference overlap.
                SnapshotKind::Structure { .. } => snap
                    .ref_keys()
                    .find_map(|key| self.ref_map.get(&key).copied()),
            },
            EquivalenceCriterion::SameType => self
                .inputs
                .iter()
                .find(|i| {
                    i.last_snapshot
                        .as_ref()
                        .is_some_and(|last| snap.equivalent(last, EquivalenceCriterion::SameType))
                })
                .map(|i| i.id),
        }
    }

    fn register(&mut self, snap: Snapshot) -> InputId {
        let id = InputId(self.inputs.len() as u32);
        let kind = match &snap.kind {
            SnapshotKind::Structure { .. } => InputKind::Structure,
            SnapshotKind::Array { elem } => InputKind::Array(*elem),
        };
        self.inputs.push(InputInfo {
            id,
            kind,
            classes: BTreeMap::new(),
            max_size: 0,
            last_size: 0,
            last_snapshot: None,
        });
        self.record_snapshot(id, snap);
        id
    }

    /// Records a fresh snapshot of input `id`: updates sizes, class info,
    /// and the reverse reference map.
    ///
    /// Structure snapshots claim all their reference keys in the map;
    /// array snapshots claim only array keys. Objects stored *in* an
    /// array are elements, not parts of it — a field access on such an
    /// object must resolve to the object's own structure, so arrays may
    /// not shadow object keys (element overlap for arrays is still
    /// matched through the candidate path, which compares full
    /// snapshots).
    pub fn record_snapshot(&mut self, id: InputId, snap: Snapshot) {
        let arrays_only = matches!(snap.kind, SnapshotKind::Array { .. });
        for key in snap.ref_keys() {
            if arrays_only && !matches!(key, ElemKey::Arr(_)) {
                continue;
            }
            self.ref_map.insert(key, id);
        }
        let size = snap.size_under(self.array_strategy);
        let info = &mut self.inputs[id.index()];
        if let SnapshotKind::Structure { classes } = &snap.kind {
            for (&c, &n) in classes {
                let e = info.classes.entry(c).or_insert(0);
                *e = (*e).max(n);
            }
        }
        info.last_size = size;
        info.max_size = info.max_size.max(size);
        info.last_snapshot = Some(snap);
    }

    /// Registers (or returns) the singleton external-input stream.
    pub fn external_input(&mut self) -> InputId {
        self.external(InputKind::ExternalInput)
    }

    /// Registers (or returns) the singleton external-output stream.
    pub fn external_output(&mut self) -> InputId {
        self.external(InputKind::ExternalOutput)
    }

    fn external(&mut self, kind: InputKind) -> InputId {
        if let Some(i) = self.inputs.iter().find(|i| i.kind == kind) {
            return i.id;
        }
        let id = InputId(self.inputs.len() as u32);
        self.inputs.push(InputInfo {
            id,
            kind,
            classes: BTreeMap::new(),
            max_size: 0,
            last_size: 0,
            last_snapshot: None,
        });
        id
    }

    /// Bumps the observed size of an external stream (1 per read/write).
    pub fn bump_external(&mut self, id: InputId) {
        let info = &mut self.inputs[id.index()];
        info.last_size += 1;
        info.max_size = info.max_size.max(info.last_size);
    }
}

impl Default for InputRegistry {
    fn default() -> Self {
        InputRegistry::new(
            EquivalenceCriterion::default(),
            ArraySizeStrategy::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    use algoprof_vm::heap::{ArrRef, ObjRef};

    fn struct_snap(objs: &[u32], class: u32) -> Snapshot {
        let mut keys = BTreeSet::new();
        let mut classes = BTreeMap::new();
        for &o in objs {
            keys.insert(ElemKey::Obj(ObjRef(o)));
        }
        classes.insert(ClassId(class), objs.len());
        Snapshot {
            keys,
            kind: SnapshotKind::Structure { classes },
            size: objs.len(),
            unique_size: objs.len(),
            refs_traversed: 0,
        }
    }

    fn int_array_snap(arr: u32, values: &[i64]) -> Snapshot {
        let mut keys = BTreeSet::new();
        keys.insert(ElemKey::Arr(ArrRef(arr)));
        for &v in values {
            keys.insert(ElemKey::Int(v));
        }
        Snapshot {
            keys,
            kind: SnapshotKind::Array {
                elem: ElemKind::Int,
            },
            size: values.len(),
            unique_size: values.iter().collect::<BTreeSet<_>>().len(),
            refs_traversed: 0,
        }
    }

    #[test]
    fn overlapping_structure_snapshots_are_one_input() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(struct_snap(&[1, 2, 3], 0), &[]);
        let b = reg.identify(struct_snap(&[3, 4], 0), &[]);
        assert_eq!(a, b);
        assert_eq!(reg.input(a).max_size, 3);
    }

    #[test]
    fn disjoint_structures_are_distinct_inputs() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(struct_snap(&[1, 2], 0), &[]);
        let b = reg.identify(struct_snap(&[5, 6], 0), &[]);
        assert_ne!(a, b);
        assert_eq!(reg.inputs().len(), 2);
    }

    #[test]
    fn growing_structure_updates_max_size() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(struct_snap(&[1], 0), &[]);
        reg.identify(struct_snap(&[1, 2, 3, 4], 0), &[]);
        reg.identify(struct_snap(&[4], 0), &[]);
        assert_eq!(reg.input(a).max_size, 4);
        assert_eq!(reg.input(a).last_size, 1);
    }

    #[test]
    fn int_arrays_merge_only_via_candidates() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(int_array_snap(0, &[1, 2, 3]), &[]);
        // Overlapping values but NOT a candidate: new input.
        let b = reg.identify(int_array_snap(1, &[2, 3, 4]), &[]);
        assert_ne!(a, b);
        // Overlapping values and a candidate (the reallocation case):
        // same input.
        let c = reg.identify(int_array_snap(2, &[2, 3, 4, 5]), &[b]);
        assert_eq!(b, c);
    }

    #[test]
    fn ref_identity_survives_without_candidates() {
        let mut reg = InputRegistry::default();
        let a = reg.identify(int_array_snap(7, &[9]), &[]);
        // Re-access of the same array is a ref-map hit even with no
        // candidates.
        let b = reg.identify(int_array_snap(7, &[9, 10]), &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn all_elements_criterion_requires_exact_match() {
        let mut reg = InputRegistry::new(
            EquivalenceCriterion::AllElements,
            ArraySizeStrategy::Capacity,
        );
        let a = reg.identify(struct_snap(&[1, 2], 0), &[]);
        // Overlap but not equality: a fresh input under AllElements.
        let b = reg.identify(struct_snap(&[1, 2, 3], 0), &[]);
        assert_ne!(a, b);
        let c = reg.identify(struct_snap(&[1, 2, 3], 0), &[]);
        assert_eq!(b, c);
    }

    #[test]
    fn same_type_criterion_merges_disconnected_instances() {
        let mut reg = InputRegistry::new(
            EquivalenceCriterion::SameType,
            ArraySizeStrategy::Capacity,
        );
        let a = reg.identify(struct_snap(&[1], 0), &[]);
        let b = reg.identify(struct_snap(&[9], 0), &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn external_streams_are_singletons() {
        let mut reg = InputRegistry::default();
        let i1 = reg.external_input();
        let i2 = reg.external_input();
        let o = reg.external_output();
        assert_eq!(i1, i2);
        assert_ne!(i1, o);
        reg.bump_external(i1);
        reg.bump_external(i1);
        assert_eq!(reg.input(i1).max_size, 2);
    }

    #[test]
    fn input_id_display() {
        assert_eq!(InputId(3).to_string(), "input#3");
    }
}
