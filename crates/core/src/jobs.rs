//! Daemon-side job plumbing: a self-contained job specification, its
//! deterministic execution, and a content-addressed cache key.
//!
//! The serve subsystem (crate `algoprof-serve`) accepts profiling work
//! over the wire and must answer two questions this module owns:
//!
//! 1. **What is a job?** [`JobSpec`] carries everything needed to run
//!    one unit of work — the guest source itself (not a path: the daemon
//!    may run on another machine), sizes, inputs, and the full
//!    [`AlgoProfOptions`] ablation set — so execution is a pure function
//!    of the spec.
//! 2. **When are two jobs the same?** [`JobSpec::cache_key`] hashes a
//!    canonical encoding of the spec (plus the trace-format and
//!    cache-schema versions) with SHA-256; equal keys ⇒ byte-identical
//!    [`JobOutput`]s, which is what lets the daemon serve a resubmission
//!    from cache without re-executing and still honour the sweep
//!    determinism contract.
//!
//! Rendering goes through the exact code paths the one-shot CLI uses
//! ([`crate::run`], [`crate::sweep`]), so a daemon round-trip is
//! byte-identical to `algoprof sweep --json` / `algoprof <prog>` output
//! for the same spec.

use std::fmt;

use crate::hash::Sha256;
use crate::profiler::AlgoProfOptions;
use crate::run::{profile_source_set_with, ProfileError};
use crate::stream::StreamingAnalysis;
use crate::sweep::{run_sweep, SweepAblation, SweepConfig, SweepError, SweepJob};
use algoprof_vm::InstrumentOptions;

/// Bump when the canonical encoding hashed by [`JobSpec::cache_key`] or
/// the meaning of [`JobOutput`] changes, so stale cache dirs can never
/// serve results computed under different semantics. (3: per-thread
/// profiles — threaded guests render one section per thread plus a
/// merged view, and sweep reports carry thread columns.)
pub const CACHE_SCHEMA_VERSION: u32 = 3;

/// One unit of daemon work, self-contained (sources and traces ride in
/// the spec, never paths to them).
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// `algoprof <program>`: compile, execute, profile, render text.
    Profile {
        /// Display name for reports (the CLI passes the program path).
        program: String,
        /// Guest source text.
        source: String,
        /// Values for `readInput()`.
        input: Vec<i64>,
        /// Profiler configuration.
        options: AlgoProfOptions,
    },
    /// `algoprof sweep`: one execution per size, every ablation fanned
    /// out over the same event stream, one merged deterministic report.
    Sweep {
        /// Display name for reports (the CLI passes the program path).
        program: String,
        /// Guest source text.
        source: String,
        /// Input sizes to sweep.
        sizes: Vec<u64>,
        /// Equivalence-criterion (or other option) ablations.
        ablations: Vec<SweepAblation>,
    },
    /// `algoprof analyze`: profile a recorded APTR trace.
    Analyze {
        /// The complete trace bytes.
        trace: Vec<u8>,
        /// Profiler configuration.
        options: AlgoProfOptions,
    },
}

/// What a job produced: the text report every kind renders, plus the
/// machine-readable JSON report for sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// The report exactly as the one-shot CLI prints it to stdout.
    pub text: String,
    /// `render_json()` of the sweep report (sweep jobs only).
    pub json: Option<String>,
}

/// Why a job failed (stringly typed for transport; the daemon relays it
/// verbatim to the submitting client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError(pub String);

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JobError {}

impl From<ProfileError> for JobError {
    fn from(e: ProfileError) -> Self {
        JobError(e.to_string())
    }
}

impl From<SweepError> for JobError {
    fn from(e: SweepError) -> Self {
        JobError(e.to_string())
    }
}

impl JobSpec {
    /// The job kind as a wire-protocol tag.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Profile { .. } => "profile",
            JobSpec::Sweep { .. } => "sweep",
            JobSpec::Analyze { .. } => "analyze",
        }
    }

    /// Executes the job, producing output byte-identical to the one-shot
    /// CLI for the same inputs. Deterministic: the same spec always
    /// yields the same [`JobOutput`], which is the property the content
    /// cache relies on.
    ///
    /// # Errors
    ///
    /// Returns [`JobError`] when the guest fails to compile or run, or a
    /// trace is malformed.
    pub fn execute(&self) -> Result<JobOutput, JobError> {
        match self {
            JobSpec::Profile {
                source,
                input,
                options,
                ..
            } => {
                let set = profile_source_set_with(
                    source,
                    &InstrumentOptions::default(),
                    *options,
                    input,
                )?;
                Ok(JobOutput {
                    text: crate::report::render_set(&set),
                    json: None,
                })
            }
            JobSpec::Sweep {
                program,
                source,
                sizes,
                ablations,
            } => {
                let jobs: Vec<SweepJob> = sizes
                    .iter()
                    .map(|&n| SweepJob::for_size(source, n))
                    .collect();
                // One pool worker runs the whole job; the inner sweep
                // stays serial (its report is identical at any worker
                // count anyway, but nesting pools would oversubscribe).
                let config = SweepConfig {
                    ablations: ablations.clone(),
                    workers: 1,
                    progress: false,
                    program: program.clone(),
                };
                let report = run_sweep(&jobs, &config)?;
                Ok(JobOutput {
                    text: report.render_text(),
                    json: Some(report.render_json()),
                })
            }
            JobSpec::Analyze { trace, options } => {
                let mut analysis = StreamingAnalysis::new(*options);
                analysis.feed(trace)?;
                let report = analysis.finish()?;
                Ok(JobOutput {
                    text: crate::report::render_set(&report.profiles),
                    json: None,
                })
            }
        }
    }

    /// The content-address of this job: a SHA-256 over a canonical
    /// encoding of everything execution depends on — kind, source or
    /// trace bytes, sizes, inputs, the full option set, the ablation
    /// list, the display name (it appears in rendered reports), and the
    /// trace-format + cache-schema versions. Equal keys imply
    /// byte-identical [`JobOutput`]s, so the daemon may serve any cached
    /// result under the same key to any client.
    pub fn cache_key(&self) -> String {
        let mut h = Sha256::new();
        let mut field = |tag: &str, bytes: &[u8]| {
            h.update(tag.as_bytes());
            h.update(&(bytes.len() as u64).to_le_bytes());
            h.update(bytes);
        };
        field("algoprof-cache", &CACHE_SCHEMA_VERSION.to_le_bytes());
        field("trace-version", &algoprof_trace::VERSION.to_le_bytes());
        field("kind", self.kind().as_bytes());
        match self {
            JobSpec::Profile {
                program,
                source,
                input,
                options,
            } => {
                field("program", program.as_bytes());
                field("source", source.as_bytes());
                let mut buf = Vec::with_capacity(input.len() * 8);
                for v in input {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                field("input", &buf);
                field("options", format!("{options:?}").as_bytes());
            }
            JobSpec::Sweep {
                program,
                source,
                sizes,
                ablations,
            } => {
                field("program", program.as_bytes());
                field("source", source.as_bytes());
                let mut buf = Vec::with_capacity(sizes.len() * 8);
                for v in sizes {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                field("sizes", &buf);
                for a in ablations {
                    field("ablation-name", a.name.as_bytes());
                    field("ablation-options", format!("{:?}", a.options).as_bytes());
                }
            }
            JobSpec::Analyze { trace, options } => {
                field("trace", trace);
                field("options", format!("{options:?}").as_bytes());
            }
        }
        h.finish_hex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::EquivalenceCriterion;

    const SRC: &str = "class Main { static int main() {
        int s = 0;
        for (int i = 0; i < 8; i = i + 1) { s = s + i; }
        return s;
    } }";

    /// A sized guest: builds then traverses an `n`-node list, where `n`
    /// is the swept size served through `readInput()`.
    const SIZED_SRC: &str = "class Main { static int main() {
        int n = readInput();
        Node head = null;
        for (int i = 0; i < n; i = i + 1) {
            Node x = new Node();
            x.next = head;
            head = x;
        }
        int c = 0;
        while (head != null) { c = c + 1; head = head.next; }
        return c;
    } }
    class Node { Node next; }";

    fn sweep_spec(sizes: &[u64]) -> JobSpec {
        JobSpec::Sweep {
            program: "prog.jay".into(),
            source: SIZED_SRC.into(),
            sizes: sizes.to_vec(),
            ablations: vec![SweepAblation::default()],
        }
    }

    #[test]
    fn cache_key_is_stable_and_sensitive() {
        let a = sweep_spec(&[4, 8]);
        assert_eq!(a.cache_key(), a.cache_key(), "same spec, same key");
        assert_eq!(a.cache_key().len(), 64, "sha-256 hex");
        let b = sweep_spec(&[4, 8, 16]);
        assert_ne!(a.cache_key(), b.cache_key(), "sizes are part of the key");
        let mut c = sweep_spec(&[4, 8]);
        if let JobSpec::Sweep { ablations, .. } = &mut c {
            ablations[0].options.criterion = EquivalenceCriterion::SameType;
        }
        assert_ne!(a.cache_key(), c.cache_key(), "options are part of the key");
        let mut d = sweep_spec(&[4, 8]);
        if let JobSpec::Sweep { program, .. } = &mut d {
            *program = "other.jay".into();
        }
        assert_ne!(
            a.cache_key(),
            d.cache_key(),
            "display name appears in reports, so it is part of the key"
        );
    }

    /// Field framing must prevent ambiguity: moving a byte between
    /// adjacent fields changes the key.
    #[test]
    fn cache_key_framing_is_unambiguous() {
        let a = JobSpec::Profile {
            program: "ab".into(),
            source: "c".into(),
            input: vec![],
            options: AlgoProfOptions::default(),
        };
        let b = JobSpec::Profile {
            program: "a".into(),
            source: "bc".into(),
            input: vec![],
            options: AlgoProfOptions::default(),
        };
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn profile_execute_matches_direct_call() {
        let spec = JobSpec::Profile {
            program: "prog.jay".into(),
            source: SRC.into(),
            input: vec![],
            options: AlgoProfOptions::default(),
        };
        let out = spec.execute().expect("runs");
        let direct = crate::run::profile_source_with(
            SRC,
            &InstrumentOptions::default(),
            AlgoProfOptions::default(),
            &[],
        )
        .expect("runs");
        // Single-threaded guests keep the exact pre-thread rendering.
        assert_eq!(out.text, direct.render_text());
        assert!(out.json.is_none());
    }

    #[test]
    fn sweep_execute_matches_run_sweep() {
        let spec = sweep_spec(&[4, 8]);
        let out = spec.execute().expect("runs");
        let JobSpec::Sweep {
            program,
            source,
            sizes,
            ablations,
        } = &spec
        else {
            unreachable!()
        };
        let jobs: Vec<SweepJob> = sizes
            .iter()
            .map(|&n| SweepJob::for_size(source, n))
            .collect();
        let report = run_sweep(
            &jobs,
            &SweepConfig {
                ablations: ablations.clone(),
                workers: 4,
                progress: false,
                program: program.clone(),
            },
        )
        .expect("sweeps");
        assert_eq!(out.text, report.render_text());
        assert_eq!(out.json.as_deref(), Some(report.render_json().as_str()));
    }

    #[test]
    fn analyze_execute_matches_profile_trace() {
        let trace = crate::run::record_source(SRC).expect("records");
        let spec = JobSpec::Analyze {
            trace: trace.clone(),
            options: AlgoProfOptions::default(),
        };
        let out = spec.execute().expect("analyzes");
        let direct = crate::run::profile_trace(&trace).expect("replays");
        assert_eq!(out.text, direct.render_text());
    }

    #[test]
    fn execute_reports_guest_errors() {
        let spec = JobSpec::Profile {
            program: "bad.jay".into(),
            source: "class Main {".into(),
            input: vec![],
            options: AlgoProfOptions::default(),
        };
        let err = spec.execute().unwrap_err();
        assert!(err.to_string().contains("compilation"));
    }
}
