//! **algoprof** — an algorithmic profiler, reproducing *"Algorithmic
//! Profiling"* (Zaparanuks & Hauswirth, PLDI 2012).
//!
//! A traditional profiler reports *where* a program spends resources; an
//! algorithmic profiler reports *why* and *how cost scales*: it finds the
//! repetitions (loops and recursions) in a run, determines each
//! algorithm's inputs and their sizes automatically, measures cost in
//! algorithm-level units (steps, structure reads/writes, element
//! creations, I/O), groups repetitions into algorithms, classifies them
//! (construction / modification / traversal / input / output), and fits
//! empirical cost functions such as `steps ≈ 0.25·n²`.
//!
//! The profiler consumes instrumentation events from the
//! [`algoprof_vm`] guest VM (the substitution for the paper's JVM — see
//! the repository DESIGN.md).
//!
//! # Quickstart
//!
//! ```
//! use algoprof::{AlgoProf, CostMetric};
//! use algoprof_vm::{compile, InstrumentOptions, Interp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     class Main {
//!         static int main() {
//!             Node head = null;
//!             for (int i = 0; i < 50; i = i + 1) {
//!                 Node n = new Node();
//!                 n.next = head;
//!                 head = n;
//!             }
//!             return 0;
//!         }
//!     }
//!     class Node { Node next; }
//! "#;
//! let program = compile(src)?.instrument(&InstrumentOptions::default());
//! let mut profiler = AlgoProf::new();
//! Interp::new(&program).run(&mut profiler)?;
//! let profile = profiler.finish(&program);
//!
//! // The construction loop is one algorithm with a measurable input.
//! let algo = profile.algorithm_by_root_name("Main.main:loop0").expect("found");
//! let input = profile.primary_input(algo.id).expect("has an input");
//! assert_eq!(profile.registry().input(input).max_size, 50);
//! # Ok(())
//! # }
//! ```

pub mod algorithms;
pub mod classify;
pub mod cost;
pub mod crossval;
pub mod hash;
pub mod html;
pub mod inputs;
pub mod jobs;
pub mod pool;
pub mod profile;
pub mod profiler;
pub mod report;
pub mod reptree;
pub mod run;
pub mod snapshot;
pub mod stream;
pub mod sweep;

pub use algorithms::{Algorithm, AlgorithmId, DataPoint, GroupingStrategy};
pub use classify::{AlgorithmClass, Classification};
pub use cost::{AccessOp, CostKey, CostMap};
pub use crossval::{cross_validate, render_cross_checks, CrossCheck};
pub use hash::{sha256_hex, Sha256};
pub use html::{render_html, render_html_set, render_sweep_html};
pub use inputs::{InputId, InputInfo, InputKind, InputRegistry};
pub use jobs::{JobError, JobOutput, JobSpec, CACHE_SCHEMA_VERSION};
pub use pool::{default_workers, run_indexed, WorkerPool};
pub use profile::{
    merge_invocation_series, merge_invocation_series_nominal, merge_series, AlgorithmicProfile,
    CostMetric, ProfileSet,
};
pub use profiler::{AlgoProf, AlgoProfOptions, SnapshotPolicy};
pub use report::{render as render_report, render_merged, render_set};
pub use reptree::{Invocation, NodeId, RepKind, RepNode, RepTree};
pub use run::{
    profile_source, profile_source_set_with, profile_source_with, profile_trace,
    profile_trace_set_with, profile_trace_with, record_and_profile_source, record_source,
    record_source_with, ProfileError,
};
pub use stream::{render_stream_fits, StreamNodeFit, StreamingAnalysis, StreamingReport};

pub use snapshot::{
    ArraySizeStrategy, ElemKey, EquivalenceCriterion, IncrementalMode, Measurement, Snapshot,
    SnapshotStats,
};
pub use sweep::{
    run_sweep, SweepAblation, SweepConfig, SweepError, SweepJob, SweepJobReport, SweepReport,
    SweepRunReport, SweepSeries,
};

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_vm::{compile, InstrumentOptions, Interp};

    /// Profiles a source program end to end.
    fn profile_src(src: &str) -> AlgorithmicProfile {
        let program = compile(src)
            .expect("compiles")
            .instrument(&InstrumentOptions::default());
        let mut prof = AlgoProf::new();
        Interp::new(&program).run(&mut prof).expect("runs");
        prof.finish(&program)
    }

    #[test]
    fn construction_loop_is_classified_and_sized() {
        let profile = profile_src(
            r#"class Main {
                static int main() {
                    Node head = null;
                    for (int i = 0; i < 30; i = i + 1) {
                        Node n = new Node();
                        n.next = head;
                        head = n;
                    }
                    return 0;
                }
            }
            class Node { Node next; }"#,
        );
        let algo = profile
            .algorithm_by_root_name("Main.main:loop0")
            .expect("loop algorithm exists");
        assert_eq!(
            profile.classifications(algo.id)[0].class,
            AlgorithmClass::Construction
        );
        let input = profile.primary_input(algo.id).expect("input detected");
        assert_eq!(profile.registry().input(input).max_size, 30);
        assert!(profile.input_description(input).contains("Node"));
        // 30 back edges = 30 algorithmic steps.
        assert_eq!(algo.total_costs.steps(), 30);
    }

    #[test]
    fn traversal_loop_is_classified() {
        let profile = profile_src(
            r#"class Main {
                static int main() {
                    Node head = null;
                    for (int i = 0; i < 10; i = i + 1) {
                        Node n = new Node();
                        n.next = head;
                        head = n;
                    }
                    int count = 0;
                    Node cur = head;
                    while (cur != null) { count = count + 1; cur = cur.next; }
                    return count;
                }
            }
            class Node { Node next; }"#,
        );
        let traversal = profile
            .algorithm_by_root_name("Main.main:loop1")
            .expect("second loop");
        assert_eq!(
            profile.classifications(traversal.id)[0].class,
            AlgorithmClass::Traversal
        );
        // Construction and traversal see the same input.
        let construction = profile
            .algorithm_by_root_name("Main.main:loop0")
            .expect("first loop");
        assert_eq!(construction.inputs, traversal.inputs);
    }

    #[test]
    fn recursive_construction_builds_recursion_node() {
        let profile = profile_src(
            r#"class Main {
                static int main() {
                    Node list = build(20);
                    return 0;
                }
                static Node build(int n) {
                    if (n == 0) { return null; }
                    Node head = new Node();
                    head.next = build(n - 1);
                    return head;
                }
            }
            class Node { Node next; }"#,
        );
        let rec = profile
            .algorithm_by_root_name("Main.build")
            .expect("recursion algorithm");
        // 21 calls, 20 of them subsequent (steps).
        assert_eq!(rec.total_costs.steps(), 20);
        assert_eq!(
            profile.classifications(rec.id)[0].class,
            AlgorithmClass::Construction
        );
        let input = profile.primary_input(rec.id).expect("input");
        assert_eq!(profile.registry().input(input).max_size, 20);
    }

    #[test]
    fn io_algorithm_classification() {
        let src = r#"class Main {
            static int main() {
                int s = 0;
                for (int i = 0; i < 5; i = i + 1) { s = s + readInput(); }
                for (int i = 0; i < 3; i = i + 1) { print(s); }
                return s;
            }
        }"#;
        let program = compile(src)
            .expect("compiles")
            .instrument(&InstrumentOptions::default());
        let mut prof = AlgoProf::new();
        Interp::new(&program)
            .with_input(vec![1, 2, 3, 4, 5])
            .run(&mut prof)
            .expect("runs");
        let profile = prof.finish(&program);
        let reader = profile
            .algorithm_by_root_name("Main.main:loop0")
            .expect("read loop");
        assert!(profile
            .classifications(reader.id)
            .iter()
            .any(|c| c.class == AlgorithmClass::Input));
        let writer = profile
            .algorithm_by_root_name("Main.main:loop1")
            .expect("write loop");
        assert!(profile
            .classifications(writer.id)
            .iter()
            .any(|c| c.class == AlgorithmClass::Output));
    }

    #[test]
    fn data_structure_less_loops_are_flagged() {
        let profile = profile_src(
            r#"class Main {
                static int main() {
                    int s = 0;
                    for (int i = 0; i < 100; i = i + 1) { s = s + i; }
                    return s;
                }
            }"#,
        );
        let algo = profile
            .algorithm_by_root_name("Main.main:loop0")
            .expect("loop");
        assert!(profile.is_data_structure_less(algo.id));
        assert_eq!(
            profile.describe_algorithm(algo.id),
            "Data-structure-less algorithm"
        );
    }

    #[test]
    fn render_text_contains_tree_and_algorithms() {
        let profile = profile_src(
            r#"class Main {
                static int main() {
                    int s = 0;
                    for (int i = 0; i < 4; i = i + 1) { s = s + i; }
                    return s;
                }
            }"#,
        );
        let text = profile.render_text();
        assert!(text.contains("Program"));
        assert!(text.contains("Main.main:loop0"));
        assert!(text.contains("algorithm#"));
    }
}
