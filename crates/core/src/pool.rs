//! Worker pools: a scoped batch pool for sweeps and a persistent
//! bounded-queue pool for the serve daemon.
//!
//! The sweep engine needs exactly one primitive: run `n_tasks`
//! independent closures on up to `workers` OS threads and get the
//! results back *in task order*, so downstream merging is independent of
//! scheduling ([`run_indexed`]). Tasks are claimed from a shared atomic
//! counter (classic self-scheduling), which load-balances uneven job
//! costs without any queue allocation; results land in a pre-sized slot
//! vector, so the output order is fixed by construction no matter which
//! worker finishes when.
//!
//! The serve daemon needs a different shape: a long-lived
//! [`WorkerPool`] whose threads outlive any single submission, fed from
//! a *bounded* queue so a flood of submissions produces backpressure
//! (the daemon answers 503) instead of unbounded memory growth.
//!
//! No external dependencies: scoped threads make the borrow of `task`
//! and the result slots safe without `Arc` in the batch pool; the
//! persistent pool uses the usual `Arc<Mutex + Condvar>` trio.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The number of workers to use when the caller does not specify one:
/// the machine's available parallelism, or 1 if that cannot be
/// determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `task(i)` for every `i` in `0..n_tasks` on up to `workers`
/// threads and returns the results indexed by `i` — the output is
/// identical for every worker count.
///
/// `workers == 0` or `workers == 1` runs inline on the calling thread
/// (no spawn overhead for the serial case). A panicking task propagates
/// the panic to the caller once the scope joins.
pub fn run_indexed<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n_tasks.max(1));
    if workers <= 1 {
        return (0..n_tasks).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let out = task(i);
                *slots[i].lock().expect("result slot is never poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot is never poisoned")
                .expect("every task index was claimed and completed")
        })
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the pool handle and its worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    shutdown: AtomicBool,
}

/// A persistent worker pool with a bounded submission queue.
///
/// Jobs are opaque closures; completion is communicated by the closure
/// itself (the serve daemon records results in its job table). The queue
/// bound is a backpressure mechanism: [`WorkerPool::try_submit`] hands a
/// full queue's job straight back to the caller instead of blocking, so
/// a server thread can answer "try again later" while the pool drains.
///
/// Dropping the pool (or calling [`WorkerPool::shutdown`]) finishes all
/// queued jobs first, then joins the workers — a graceful drain, not an
/// abort.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    capacity: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (min 1) feeding from a queue bounded at
    /// `capacity` pending jobs (min 1).
    pub fn new(workers: usize, capacity: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            capacity: capacity.max(1),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Jobs waiting in the queue (excludes jobs already running).
    pub fn queued(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool queue is never poisoned")
            .len()
    }

    /// Enqueues `job`, or returns it unchanged when the queue is at
    /// capacity (backpressure) or the pool is shutting down.
    pub fn try_submit<F>(&self, job: F) -> Result<(), F>
    where
        F: FnOnce() + Send + 'static,
    {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(job);
        }
        let mut queue = self
            .shared
            .queue
            .lock()
            .expect("pool queue is never poisoned");
        if queue.len() >= self.capacity {
            return Err(job);
        }
        queue.push_back(Box::new(job));
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Drains the queue (running every job already accepted), then joins
    /// the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.not_empty.notify_all();
        // The pool can be dropped from *inside* a job (a job may own the
        // last handle to a structure that owns the pool); joining the
        // current thread would deadlock, so that worker detaches itself.
        let me = std::thread::current().id();
        for h in self.handles.drain(..) {
            if h.thread().id() == me {
                continue;
            }
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue is never poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .expect("pool queue is never poisoned");
            }
        };
        // A panicking job must not take the worker thread (and every job
        // behind it) down with it; the daemon reports the job failed
        // through its own channels.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(100, workers, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = run_indexed(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn uneven_task_costs_balance() {
        // Tasks with wildly different costs still land in their slots.
        let out = run_indexed(32, 4, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn worker_pool_runs_all_jobs() {
        let pool = WorkerPool::new(3, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.try_submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .ok()
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn worker_pool_bounds_its_queue() {
        // Workers blocked on a gate; capacity 2 ⇒ the pool accepts the
        // running jobs plus two queued, then pushes back.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = WorkerPool::new(1, 2);
        let submit_blocker = |pool: &WorkerPool| {
            let gate = Arc::clone(&gate);
            pool.try_submit(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .is_ok()
        };
        assert!(submit_blocker(&pool)); // picked up by the worker
                                        // Wait until the worker has claimed the first job, then fill the
                                        // queue to capacity; the next submission must bounce.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.queued() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(submit_blocker(&pool));
        assert!(submit_blocker(&pool));
        let bounced = pool.try_submit(|| {}).is_err();
        assert!(bounced, "queue at capacity must push back");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn pool_dropped_from_inside_a_job_does_not_deadlock() {
        let (tx, rx) = std::sync::mpsc::channel();
        let pool = Arc::new(WorkerPool::new(2, 8));
        let inner = Arc::clone(&pool);
        pool.try_submit(move || {
            // This drop may be the last handle, running the pool's own
            // shutdown from a worker thread.
            drop(inner);
            tx.send(()).expect("receiver alive");
        })
        .ok()
        .expect("accepted");
        drop(pool);
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("job completed without deadlocking on self-join");
    }

    #[test]
    fn worker_pool_survives_a_panicking_job() {
        let pool = WorkerPool::new(1, 8);
        let done = Arc::new(AtomicBool::new(false));
        pool.try_submit(|| panic!("job panics"))
            .ok()
            .expect("accepted");
        let d = Arc::clone(&done);
        pool.try_submit(move || d.store(true, Ordering::SeqCst))
            .ok()
            .expect("accepted");
        pool.shutdown();
        assert!(done.load(Ordering::SeqCst), "worker survived the panic");
    }
}
