//! A minimal work-stealing worker pool over `std::thread::scope`.
//!
//! The sweep engine needs exactly one primitive: run `n_tasks`
//! independent closures on up to `workers` OS threads and get the
//! results back *in task order*, so downstream merging is independent of
//! scheduling. Tasks are claimed from a shared atomic counter (classic
//! self-scheduling), which load-balances uneven job costs without any
//! queue allocation; results land in a pre-sized slot vector, so the
//! output order is fixed by construction no matter which worker finishes
//! when.
//!
//! No external dependencies: scoped threads make the borrow of `task`
//! and the result slots safe without `Arc`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of workers to use when the caller does not specify one:
/// the machine's available parallelism, or 1 if that cannot be
/// determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `task(i)` for every `i` in `0..n_tasks` on up to `workers`
/// threads and returns the results indexed by `i` — the output is
/// identical for every worker count.
///
/// `workers == 0` or `workers == 1` runs inline on the calling thread
/// (no spawn overhead for the serial case). A panicking task propagates
/// the panic to the caller once the scope joins.
pub fn run_indexed<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n_tasks.max(1));
    if workers <= 1 {
        return (0..n_tasks).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let out = task(i);
                *slots[i].lock().expect("result slot is never poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot is never poisoned")
                .expect("every task index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(100, workers, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = run_indexed(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn uneven_task_costs_balance() {
        // Tasks with wildly different costs still land in their slots.
        let out = run_indexed(32, 4, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
