//! The final algorithmic profile: repetition tree + inputs + algorithms
//! + classifications + cost-function fitting.

use algoprof_fit::{best_fit, Fit, PowerFit};
use algoprof_vm::CompiledProgram;

use crate::algorithms::{group_algorithms_with, Algorithm, AlgorithmId, GroupingStrategy};
use crate::classify::{classify, AlgorithmClass, Classification};
use crate::cost::CostKey;
use crate::inputs::{InputId, InputKind, InputRegistry};
use crate::reptree::{NodeId, RepKind, RepTree};

/// Which combined cost is plotted against input size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostMetric {
    /// Algorithmic steps (loop iterations + recursive calls).
    Steps,
    /// Structure/array reads of the plotted input.
    Reads,
    /// Structure/array writes of the plotted input.
    Writes,
    /// Element creations (all classes).
    Creations,
    /// External input reads.
    InputReads,
    /// External output writes.
    OutputWrites,
}

/// A complete algorithmic profile of one run.
///
/// Self-contained: names are resolved against the program at build time,
/// so the profile can outlive the `CompiledProgram`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmicProfile {
    tree: RepTree,
    registry: InputRegistry,
    algorithms: Vec<Algorithm>,
    classifications: Vec<Vec<Classification>>,
    node_names: Vec<String>,
    input_names: Vec<String>,
    class_names: Vec<String>,
}

impl AlgorithmicProfile {
    /// Groups, classifies, and names everything. Called by
    /// [`AlgoProf::finish`](crate::AlgoProf::finish).
    pub fn build(tree: RepTree, registry: InputRegistry, program: &CompiledProgram) -> Self {
        Self::build_with(tree, registry, program, GroupingStrategy::default())
    }

    /// Like [`AlgorithmicProfile::build`] with an explicit grouping
    /// strategy.
    pub fn build_with(
        tree: RepTree,
        registry: InputRegistry,
        program: &CompiledProgram,
        strategy: GroupingStrategy,
    ) -> Self {
        let algorithms = group_algorithms_with(&tree, Some(program), strategy);
        let classifications = algorithms.iter().map(|a| classify(a, &registry)).collect();
        let node_names = tree
            .nodes()
            .iter()
            .map(|n| match n.kind {
                RepKind::Root => "Program".to_owned(),
                RepKind::Loop(l) => program.loop_info(l).name.clone(),
                RepKind::Recursion(f) => format!("{} (recursion)", program.func(f).name),
            })
            .collect();
        let input_names = registry
            .inputs()
            .iter()
            .map(|i| i.describe(program))
            .collect();
        let class_names = program.classes.iter().map(|c| c.name.clone()).collect();
        AlgorithmicProfile {
            tree,
            registry,
            algorithms,
            classifications,
            node_names,
            input_names,
            class_names,
        }
    }

    /// The repetition tree.
    pub fn tree(&self) -> &RepTree {
        &self.tree
    }

    /// The input registry.
    pub fn registry(&self) -> &InputRegistry {
        &self.registry
    }

    /// All algorithms found in the run (the root's data-structure-less
    /// algorithm included).
    pub fn algorithms(&self) -> &[Algorithm] {
        &self.algorithms
    }

    /// One algorithm by id.
    pub fn algorithm(&self, id: AlgorithmId) -> &Algorithm {
        &self.algorithms[id.index()]
    }

    /// The per-input classifications of one algorithm.
    pub fn classifications(&self, id: AlgorithmId) -> &[Classification] {
        &self.classifications[id.index()]
    }

    /// The display name of a repetition-tree node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// The description of an input, e.g. `Node-based recursive structure`.
    pub fn input_description(&self, id: InputId) -> &str {
        &self.input_names[id.index()]
    }

    /// Finds the algorithm whose root node's name contains `needle`
    /// (loops are named `Class.method:loopN@Lline`).
    pub fn algorithm_by_root_name(&self, needle: &str) -> Option<&Algorithm> {
        self.algorithms
            .iter()
            .find(|a| self.node_name(a.root).contains(needle))
    }

    /// All algorithms whose member names contain `needle`.
    pub fn algorithms_touching(&self, needle: &str) -> Vec<&Algorithm> {
        self.algorithms
            .iter()
            .filter(|a| {
                a.members
                    .iter()
                    .any(|&m| self.node_name(m).contains(needle))
            })
            .collect()
    }

    /// The ⟨input size, cost⟩ series of one algorithm for one input and
    /// metric, ready for fitting or plotting.
    pub fn series(&self, algo: AlgorithmId, input: InputId, metric: CostMetric) -> Vec<(f64, f64)> {
        let a = self.algorithm(algo);
        a.points
            .iter()
            .filter_map(|p| {
                let size = *p.input_sizes.get(&input)?;
                let cost = match metric {
                    CostMetric::Steps => p.costs.steps(),
                    CostMetric::Reads => p.costs.reads_of(input),
                    CostMetric::Writes => p.costs.writes_of(input),
                    CostMetric::Creations => p.costs.creations(),
                    CostMetric::InputReads => p.costs.get(CostKey::InputRead),
                    CostMetric::OutputWrites => p.costs.get(CostKey::OutputWrite),
                };
                Some((size as f64, cost as f64))
            })
            .collect()
    }

    /// The ⟨size, cost⟩ series across *all invocations* of an algorithm,
    /// where each point's size is the largest structure/array input the
    /// invocation accessed. This is the Figure-1 view: a harness that
    /// sweeps input sizes creates a fresh structure per run, so each data
    /// point involves a different [`InputId`] playing the same role.
    pub fn invocation_series(&self, algo: AlgorithmId, metric: CostMetric) -> Vec<(f64, f64)> {
        let a = self.algorithm(algo);
        a.points
            .iter()
            .filter_map(|p| {
                let size = p
                    .input_sizes
                    .iter()
                    .filter(|(&i, _)| {
                        matches!(
                            self.registry.input(i).kind,
                            InputKind::Structure | InputKind::Array(_)
                        )
                    })
                    .map(|(_, &s)| s)
                    .max()?;
                let cost = match metric {
                    CostMetric::Steps => p.costs.steps(),
                    CostMetric::Reads => p.costs.total_reads(),
                    CostMetric::Writes => p.costs.total_writes(),
                    CostMetric::Creations => p.costs.creations(),
                    CostMetric::InputReads => p.costs.get(CostKey::InputRead),
                    CostMetric::OutputWrites => p.costs.get(CostKey::OutputWrite),
                };
                Some((size as f64, cost as f64))
            })
            .collect()
    }

    /// Fits the best cost function for steps against per-invocation input
    /// size (see [`AlgorithmicProfile::invocation_series`]).
    pub fn fit_invocation_steps(&self, algo: AlgorithmId) -> Option<Fit> {
        best_fit(&self.invocation_series(algo, CostMetric::Steps))
    }

    /// Fits the best cost function for `algo`'s steps against `input`'s
    /// size.
    pub fn fit_steps(&self, algo: AlgorithmId, input: InputId) -> Option<Fit> {
        best_fit(&self.series(algo, input, CostMetric::Steps))
    }

    /// Log–log power-law fit of steps vs input size (the empirical order
    /// of growth).
    pub fn fit_power_law(&self, algo: AlgorithmId, input: InputId) -> Option<PowerFit> {
        algoprof_fit::fit_power_law(&self.series(algo, input, CostMetric::Steps))
    }

    /// Power-law fit over the per-invocation series (see
    /// [`AlgorithmicProfile::invocation_series`]).
    pub fn fit_invocation_power_law(&self, algo: AlgorithmId) -> Option<PowerFit> {
        algoprof_fit::fit_power_law(&self.invocation_series(algo, CostMetric::Steps))
    }

    /// The primary (structure or array) input of an algorithm, if any:
    /// the one with the largest observed size.
    pub fn primary_input(&self, algo: AlgorithmId) -> Option<InputId> {
        self.algorithm(algo)
            .inputs
            .iter()
            .copied()
            .filter(|&i| {
                matches!(
                    self.registry.input(i).kind,
                    InputKind::Structure | InputKind::Array(_)
                )
            })
            .max_by_key(|&i| self.registry.input(i).max_size)
    }

    /// A human summary like
    /// `Modification of a Node-based recursive structure`.
    ///
    /// A size-sweeping harness gives an algorithm many same-shaped inputs
    /// (one per run); identical descriptions are deduplicated.
    pub fn describe_algorithm(&self, id: AlgorithmId) -> String {
        let mut parts: Vec<String> = self
            .classifications(id)
            .iter()
            .map(|c| match (c.input, c.class) {
                (Some(i), class) => format!("{} of a {}", class, self.input_description(i)),
                (None, class) => format!("{class} algorithm"),
            })
            .collect();
        parts.sort();
        parts.dedup();
        parts.join("; ")
    }

    /// Structure accesses broken down by element type (paper §3.3's
    /// `cost{input#3, Vertex, PUT}` view): for each class touched through
    /// `input`, the total reads and writes.
    pub fn accesses_by_type(&self, algo: AlgorithmId, input: InputId) -> Vec<(String, u64, u64)> {
        let a = self.algorithm(algo);
        let mut by_class: std::collections::BTreeMap<algoprof_vm::ClassId, (u64, u64)> =
            Default::default();
        for (key, count) in a.total_costs.iter() {
            if let CostKey::StructAccessByType {
                input: i,
                class,
                op,
            } = key
            {
                if i == input {
                    let entry = by_class.entry(class).or_insert((0, 0));
                    match op {
                        crate::cost::AccessOp::Read => entry.0 += count,
                        crate::cost::AccessOp::Write => entry.1 += count,
                    }
                }
            }
        }
        by_class
            .into_iter()
            .map(|(class, (reads, writes))| {
                (
                    self.class_names
                        .get(class.index())
                        .cloned()
                        .unwrap_or_else(|| class.to_string()),
                    reads,
                    writes,
                )
            })
            .collect()
    }

    /// Graphviz DOT rendering of the repetition tree with algorithm
    /// clusters (open with `dot -Tsvg`).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph repetition_tree {\n  node [shape=box];\n");
        for node in self.tree.nodes() {
            let algo = self
                .algorithms
                .iter()
                .find(|a| a.members.contains(&node.id))
                .map(|a| a.id.0)
                .unwrap_or(u32::MAX);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "  n{} [label=\"{}\\ninvocations={} steps={}\\nalgorithm#{}\"];\n",
                    node.id.0,
                    self.node_name(node.id).replace('"', "'"),
                    node.invocations.len(),
                    node.total_steps(),
                    algo,
                ),
            );
            if let Some(p) = node.parent {
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!("  n{} -> n{};\n", p.0, node.id.0),
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Whether the algorithm is data-structure-less.
    pub fn is_data_structure_less(&self, id: AlgorithmId) -> bool {
        self.classifications(id)
            .iter()
            .all(|c| c.class == AlgorithmClass::DataStructureLess)
    }

    /// Renders the Figure-3-style textual repetition tree with algorithm
    /// annotations.
    pub fn render_text(&self) -> String {
        crate::report::render(self)
    }

    /// Writes a `size,cost` CSV for one series.
    pub fn series_csv(&self, algo: AlgorithmId, input: InputId, metric: CostMetric) -> String {
        let mut out = String::from("size,cost\n");
        for (s, c) in self.series(algo, input, metric) {
            out.push_str(&format!("{s},{c}\n"));
        }
        out
    }

    /// Total structure/array reads+writes per algorithm invocation data
    /// point, summed over the given input — used by Figure 5, where the
    /// plotted cost is element copies + appends.
    pub fn access_series(&self, algo: AlgorithmId, input: InputId) -> Vec<(f64, f64)> {
        let a = self.algorithm(algo);
        a.points
            .iter()
            .filter_map(|p| {
                let size = *p.input_sizes.get(&input)?;
                let cost = p.costs.reads_of(input) + p.costs.writes_of(input);
                Some((size as f64, cost as f64))
            })
            .collect()
    }
}

/// Memory-footprint summary of a profile (paper §3.3 notes that keeping
/// per-invocation history "can lead to large memory requirements"; this
/// quantifies it, and [`algoprof_fit::StreamingFit`] is the online
/// alternative the paper sketches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileStats {
    /// Repetition-tree nodes.
    pub nodes: usize,
    /// Stored invocations across all nodes.
    pub invocations: usize,
    /// Distinct cost-map entries across all invocations.
    pub cost_entries: usize,
    /// Input observations across all invocations.
    pub observations: usize,
    /// Registered inputs.
    pub inputs: usize,
}

impl AlgorithmicProfile {
    /// Counts the history this profile retains.
    pub fn stats(&self) -> ProfileStats {
        let mut invocations = 0;
        let mut cost_entries = 0;
        let mut observations = 0;
        for node in self.tree.nodes() {
            invocations += node.invocations.len();
            for inv in &node.invocations {
                cost_entries += inv.costs.iter().count();
                observations += inv.inputs.len();
            }
        }
        ProfileStats {
            nodes: self.tree.len(),
            invocations,
            cost_entries,
            observations,
            inputs: self.registry.inputs().len(),
        }
    }
}

/// One algorithmic profile per guest thread, produced by
/// [`AlgoProf::finish_set`](crate::AlgoProf::finish_set).
///
/// Index 0 is always the main thread. Single-threaded runs yield a set
/// with exactly one profile, so every single-threaded code path keeps
/// its old behaviour by looking at [`ProfileSet::main`].
#[derive(Debug, PartialEq)]
pub struct ProfileSet {
    threads: Vec<AlgorithmicProfile>,
}

impl ProfileSet {
    /// Wraps per-thread profiles; `threads[0]` must be the main thread.
    pub fn new(threads: Vec<AlgorithmicProfile>) -> Self {
        assert!(
            !threads.is_empty(),
            "a profile set has at least the main thread"
        );
        ProfileSet { threads }
    }

    /// The main thread's profile.
    pub fn main(&self) -> &AlgorithmicProfile {
        &self.threads[0]
    }

    /// Consumes the set, keeping only the main thread's profile.
    pub fn into_main(self) -> AlgorithmicProfile {
        self.threads
            .into_iter()
            .next()
            .expect("a profile set has at least the main thread")
    }

    /// Profile of thread `t` (`t0` = main) when it exists.
    pub fn thread(&self, t: usize) -> Option<&AlgorithmicProfile> {
        self.threads.get(t)
    }

    /// All per-thread profiles, main thread first.
    pub fn threads(&self) -> &[AlgorithmicProfile] {
        &self.threads
    }

    /// Number of guest threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Always false — the main thread is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the run spawned any thread beyond main.
    pub fn is_threaded(&self) -> bool {
        self.threads.len() > 1
    }

    /// Merged ⟨size, cost⟩ view across all threads for the algorithm
    /// rooted at `root_name` (exact node-name match) — every thread that
    /// ran the algorithm contributes its invocations.
    pub fn merged_series(&self, root_name: &str, metric: CostMetric) -> Vec<(f64, f64)> {
        let refs: Vec<&AlgorithmicProfile> = self.threads.iter().collect();
        merge_invocation_series(&refs, root_name, metric)
    }

    /// Union of algorithm root names across all threads, deduplicated,
    /// in deterministic (sorted) order.
    pub fn algorithm_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for p in &self.threads {
            for a in p.algorithms() {
                let n = p.node_name(a.root).to_string();
                if !names.contains(&n) {
                    names.push(n);
                }
            }
        }
        names.sort();
        names
    }
}

/// Merges ⟨size, steps⟩ series for the same algorithm (matched by root
/// node name) across several profiles — the paper's "set of program
/// runs" usage, where each run contributes data points.
pub fn merge_series(
    profiles: &[&AlgorithmicProfile],
    root_name_needle: &str,
    metric: CostMetric,
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for p in profiles {
        if let Some(a) = p.algorithm_by_root_name(root_name_needle) {
            out.extend(p.invocation_series(a.id, metric));
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Like [`merge_series`] but matching the root node name *exactly* — the
/// sweep engine's merge, where every profile comes from the same source
/// text and names are identical, so substring matching could only
/// introduce ambiguity (`loop1` is a substring of `loop10`'s name
/// prefix).
pub fn merge_invocation_series(
    profiles: &[&AlgorithmicProfile],
    root_name: &str,
    metric: CostMetric,
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for p in profiles {
        for a in p.algorithms() {
            if p.node_name(a.root) == root_name {
                out.extend(p.invocation_series(a.id, metric));
            }
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Like [`merge_invocation_series`], but each profile's points take the
/// *nominal* input size paired with that profile as their x value — the
/// sweep engine's merge. A sweep controls the requested size exactly,
/// while the measured per-invocation structure size can overshoot it: a
/// doubling array list asked for 48 elements grows its backing array to
/// capacity 64, so its run used to land on x = 64 — colliding with the
/// n = 64 job's point and leaving the requested size 48 with no point at
/// all. The job's requested size is the independent variable the sweep
/// varies, so it is the correct x.
pub fn merge_invocation_series_nominal(
    profiles: &[(&AlgorithmicProfile, u64)],
    root_name: &str,
    metric: CostMetric,
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &(p, size) in profiles {
        for a in p.algorithms() {
            if p.node_name(a.root) == root_name {
                out.extend(
                    p.invocation_series(a.id, metric)
                        .into_iter()
                        .map(|(_, cost)| (size as f64, cost)),
                );
            }
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    out
}
