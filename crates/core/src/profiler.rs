//! The AlgoProf dynamic analysis (paper §3.2–§3.4).
//!
//! `AlgoProf` consumes the VM's instrumentation events and incrementally
//! builds a repetition tree, following the paper's pseudocode:
//!
//! * **loop entry** — `tn = tn.getOrCreateChild(loop)`, push shadow;
//! * **loop back edge** — `tn.cost{STEP}++`;
//! * **loop exit** — `remeasureInputs(); finalizeRepetition(tn)`, pop;
//! * **method entry** — fold recursion: jump to a header found on the
//!   path to the root (counting a step) or create a recursion child;
//! * **method exit** — when the recursion depth returns to zero,
//!   remeasure and finalize;
//! * **field/array accesses** — identify the input (reverse reference
//!   map, then snapshot + equivalence criterion), count the access, and
//!   track per-invocation sizes with the paper's first-access /
//!   exit-remeasurement snapshot optimization.

use algoprof_vm::{CompiledProgram, FieldId, FuncId, Heap, LoopId, ProfilerHooks, Value};

use crate::cost::{AccessOp, CostKey};
use crate::inputs::{InputId, InputRegistry};
use crate::profile::AlgorithmicProfile;
use crate::reptree::{ActiveObservation, NodeId, RepKind, RepTree};
use crate::snapshot::{
    ArraySizeStrategy, ElemKey, EquivalenceCriterion, IncrementalMode, SnapshotStats,
};

/// When structure snapshots are taken (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotPolicy {
    /// Snapshot at a repetition's first access of each input and once
    /// more at repetition exit (`remeasureInputs`) — AlgoProf's
    /// optimization.
    #[default]
    FirstAndLast,
    /// Snapshot at every access (precise but expensive; kept for the
    /// ablation benchmarks).
    EveryAccess,
}

/// Configuration of the algorithmic profiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlgoProfOptions {
    /// Snapshot-equivalence criterion for input identity.
    pub criterion: EquivalenceCriterion,
    /// Array sizing strategy.
    pub array_strategy: ArraySizeStrategy,
    /// Snapshot frequency.
    pub snapshot_policy: SnapshotPolicy,
    /// How repetitions group into algorithms.
    pub grouping: crate::algorithms::GroupingStrategy,
    /// Snapshot-cache behaviour for re-measured inputs.
    pub incremental: IncrementalMode,
}

/// The algorithmic profiler. Feed it to
/// [`Interp::run`](algoprof_vm::Interp::run) against an *instrumented*
/// program, then call [`AlgoProf::finish`] to obtain the profile.
///
/// # Example
///
/// ```
/// use algoprof_vm::{compile, InstrumentOptions, Interp};
/// use algoprof::AlgoProf;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = r#"
///     class Main {
///         static int main() {
///             int s = 0;
///             for (int i = 0; i < 10; i = i + 1) { s = s + i; }
///             return s;
///         }
///     }
/// "#;
/// let program = compile(src)?.instrument(&InstrumentOptions::default());
/// let mut prof = AlgoProf::new();
/// Interp::new(&program).run(&mut prof)?;
/// let profile = prof.finish(&program);
/// // Two algorithms: the program root and the loop.
/// assert_eq!(profile.algorithms().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AlgoProf {
    opts: AlgoProfOptions,
    tree: RepTree,
    registry: InputRegistry,
    tn: NodeId,
    shadow: Vec<NodeId>,
}

impl AlgoProf {
    /// Creates a profiler with default options (SomeElements equivalence,
    /// capacity array sizing, first/last snapshots).
    pub fn new() -> Self {
        AlgoProf::with_options(AlgoProfOptions::default())
    }

    /// Creates a profiler with explicit options.
    pub fn with_options(opts: AlgoProfOptions) -> Self {
        let tree = RepTree::new();
        let tn = tree.root();
        AlgoProf {
            opts,
            tree,
            registry: InputRegistry::with_incremental(
                opts.criterion,
                opts.array_strategy,
                opts.incremental,
            ),
            tn,
            shadow: Vec::new(),
        }
    }

    /// The repetition tree built so far.
    pub fn tree(&self) -> &RepTree {
        &self.tree
    }

    /// The input registry built so far.
    pub fn registry(&self) -> &InputRegistry {
        &self.registry
    }

    /// Counters of snapshot-traversal work done (and saved) so far.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.registry.snapshot_stats()
    }

    /// Finalizes all open invocations and produces the profile.
    ///
    /// Call this after the interpreter run completed successfully; a
    /// failed run leaves partially-attributed data.
    pub fn finish(mut self, program: &CompiledProgram) -> AlgorithmicProfile {
        // Close any repetitions left open (the root always is; more remain
        // only after an aborted run).
        self.tree.finalize_all();
        AlgorithmicProfile::build_with(self.tree, self.registry, program, self.opts.grouping)
    }

    // ------------------------------------------------------------ helpers

    fn parent_link(&self) -> (NodeId, usize) {
        let ordinal = self
            .tree
            .current_ordinal(self.tn)
            .expect("the current node has an active invocation");
        (self.tn, ordinal)
    }

    /// Inputs observed by any invocation active on the current chain —
    /// the candidate set for value-based snapshot matching.
    fn chain_candidates(&self) -> Vec<InputId> {
        let mut out = Vec::new();
        for node in self.tree.path_to_root(self.tn) {
            for activation in &self.tree.node(node).active {
                out.extend(activation.inputs.keys().copied());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Resolves the input accessed through reference `r`, taking a
    /// snapshot only when needed. Returns the input and the size if one
    /// was measured.
    fn resolve_input(
        &mut self,
        program: &CompiledProgram,
        heap: &Heap,
        r: Value,
    ) -> Option<(InputId, Option<usize>)> {
        let key = match r {
            Value::Obj(o) => ElemKey::Obj(o),
            Value::Arr(a) => ElemKey::Arr(a),
            _ => return None,
        };
        if let Some(id) = self.registry.resolve_ref(key) {
            return Some((id, None));
        }
        // Unknown reference. Under the first/last policy, attribute
        // mid-construction references to the invocation's open input
        // without traversing (the paper's "memorize the one accessed
        // reference" trick) — but only for structures; arrays are always
        // identified.
        if self.opts.snapshot_policy == SnapshotPolicy::FirstAndLast && matches!(r, Value::Obj(_)) {
            if let Some(open) = self.tree.node(self.tn).current().and_then(|c| c.open_input) {
                return Some((open, None));
            }
        }
        let m = self.registry.measure_unidentified(program, heap, r)?;
        let size = m.snapshot.size_under(self.registry.array_strategy());
        let candidates = self.chain_candidates();
        let id = self.registry.identify(m, &candidates);
        Some((id, Some(size)))
    }

    /// Records an access observation of `input` through `r` on the
    /// current node's active invocation.
    fn observe(
        &mut self,
        program: &CompiledProgram,
        heap: &Heap,
        input: InputId,
        r: Value,
        measured: Option<usize>,
    ) {
        let every_access = self.opts.snapshot_policy == SnapshotPolicy::EveryAccess;
        let exists = self
            .tree
            .node(self.tn)
            .current()
            .is_some_and(|c| c.inputs.contains_key(&input));

        // First access in this invocation (or every access, under that
        // policy): measure from the accessed reference and refresh the
        // registry.
        let size = if !exists || every_access {
            match measured {
                Some(s) => Some(s),
                None => self.registry.remeasure(program, heap, input, r),
            }
        } else {
            None
        };

        let node = self.tree.node_mut(self.tn);
        let cur = node
            .current_mut()
            .expect("the current node has an active invocation");
        let obs = cur.inputs.entry(input).or_insert_with(|| {
            let s = size.unwrap_or(0);
            ActiveObservation {
                first_size: s,
                exit_size: s,
                max_size: s,
                last_ref: None,
            }
        });
        obs.last_ref = Some(r);
        if let Some(s) = size {
            obs.max_size = obs.max_size.max(s);
            obs.exit_size = s;
        }
        // Only *structure* accesses set the open input: unresolved object
        // references fall back to it mid-construction. Array accesses must
        // not capture it, or freshly allocated helper arrays would swallow
        // subsequent unknown objects.
        if matches!(r, Value::Obj(_)) {
            cur.open_input = Some(input);
        }
    }

    /// The paper's `remeasureInputs`: re-snapshot every input of the
    /// terminating invocation from the last reference accessed.
    fn remeasure_inputs(&mut self, program: &CompiledProgram, heap: &Heap) {
        let entries: Vec<(InputId, Value)> = match self.tree.node(self.tn).current() {
            Some(cur) => cur
                .inputs
                .iter()
                .filter_map(|(&id, obs)| obs.last_ref.map(|r| (id, r)))
                .collect(),
            None => return,
        };
        for (id, r) in entries {
            if let Some(size) = self.registry.remeasure(program, heap, id, r) {
                let node = self.tree.node_mut(self.tn);
                if let Some(obs) = node.current_mut().and_then(|c| c.inputs.get_mut(&id)) {
                    obs.exit_size = size;
                    obs.max_size = obs.max_size.max(size);
                }
            }
        }
    }

    fn bump(&mut self, key: CostKey) {
        let node = self.tree.node_mut(self.tn);
        if let Some(cur) = node.current_mut() {
            cur.costs.bump(key);
        }
    }

    fn on_access(
        &mut self,
        r: Value,
        op: AccessOp,
        is_array: bool,
        class: Option<algoprof_vm::ClassId>,
        program: &CompiledProgram,
        heap: &Heap,
    ) {
        let Some((input, measured)) = self.resolve_input(program, heap, r) else {
            return;
        };
        // Hooks fire after the mutation, so the current heap epoch covers
        // this write.
        if op == AccessOp::Write {
            self.registry.mark_dirty(input, heap.epoch());
        }
        if is_array {
            self.bump(CostKey::ArrayAccess { input, op });
        } else {
            self.bump(CostKey::StructAccess { input, op });
            if let Some(class) = class {
                self.bump(CostKey::StructAccessByType { input, class, op });
            }
        }
        self.observe(program, heap, input, r, measured);
    }
}

impl Default for AlgoProf {
    fn default() -> Self {
        AlgoProf::new()
    }
}

impl ProfilerHooks for AlgoProf {
    fn on_loop_entry(&mut self, l: LoopId, _program: &CompiledProgram, _heap: &Heap) {
        let link = self.parent_link();
        let child = self.tree.get_or_create_child(self.tn, RepKind::Loop(l));
        self.shadow.push(self.tn);
        self.tn = child;
        self.tree.start_invocation(child, Some(link));
    }

    fn on_loop_back_edge(&mut self, _l: LoopId, _program: &CompiledProgram, _heap: &Heap) {
        self.bump(CostKey::Step);
    }

    fn on_loop_exit(&mut self, _l: LoopId, program: &CompiledProgram, heap: &Heap) {
        self.remeasure_inputs(program, heap);
        self.tree.finalize_invocation(self.tn);
        self.tn = self.shadow.pop().expect("loop exit balances a loop entry");
    }

    fn on_method_entry(&mut self, m: FuncId, _program: &CompiledProgram, _heap: &Heap) {
        if let Some(header) = self.tree.find_on_path_to_root(self.tn, m) {
            self.shadow.push(self.tn);
            self.tn = header;
            self.bump(CostKey::Step);
            self.tree.node_mut(header).recursion_depth += 1;
        } else {
            let link = self.parent_link();
            let child = self
                .tree
                .get_or_create_child(self.tn, RepKind::Recursion(m));
            self.shadow.push(self.tn);
            self.tn = child;
            if self.tree.node(child).recursion_depth == 0 {
                self.tree.start_invocation(child, Some(link));
            }
            self.tree.node_mut(child).recursion_depth += 1;
        }
    }

    fn on_method_exit(&mut self, _m: FuncId, program: &CompiledProgram, heap: &Heap) {
        let node = self.tree.node_mut(self.tn);
        node.recursion_depth = node.recursion_depth.saturating_sub(1);
        if node.recursion_depth == 0 {
            self.remeasure_inputs(program, heap);
            self.tree.finalize_invocation(self.tn);
        }
        self.tn = self
            .shadow
            .pop()
            .expect("method exit balances a method entry");
    }

    fn on_field_get(
        &mut self,
        obj: Value,
        _field: FieldId,
        program: &CompiledProgram,
        heap: &Heap,
    ) {
        let class = match obj {
            Value::Obj(o) => Some(heap.object(o).class),
            _ => None,
        };
        self.on_access(obj, AccessOp::Read, false, class, program, heap);
    }

    fn on_field_put(
        &mut self,
        obj: Value,
        _field: FieldId,
        _value: Value,
        program: &CompiledProgram,
        heap: &Heap,
    ) {
        let class = match obj {
            Value::Obj(o) => Some(heap.object(o).class),
            _ => None,
        };
        self.on_access(obj, AccessOp::Write, false, class, program, heap);
    }

    fn on_array_load(&mut self, arr: Value, program: &CompiledProgram, heap: &Heap) {
        self.on_access(arr, AccessOp::Read, true, None, program, heap);
    }

    fn on_array_store(
        &mut self,
        arr: Value,
        _index: usize,
        _value: Value,
        program: &CompiledProgram,
        heap: &Heap,
    ) {
        self.on_access(arr, AccessOp::Write, true, None, program, heap);
    }

    fn on_alloc(&mut self, obj: Value, _program: &CompiledProgram, heap: &Heap) {
        if let Value::Obj(o) = obj {
            let class = heap.object(o).class;
            self.bump(CostKey::Creation { class });
        }
    }

    fn on_input_read(&mut self, _program: &CompiledProgram, _heap: &Heap) {
        let id = self.registry.external_input();
        self.bump(CostKey::InputRead);
        self.registry.bump_external(id);
        let node = self.tree.node_mut(self.tn);
        if let Some(cur) = node.current_mut() {
            let obs = cur.inputs.entry(id).or_insert(ActiveObservation {
                first_size: 0,
                exit_size: 0,
                max_size: 0,
                last_ref: None,
            });
            obs.max_size += 1;
            obs.exit_size = obs.max_size;
        }
    }

    fn on_output_write(&mut self, _program: &CompiledProgram, _heap: &Heap) {
        let id = self.registry.external_output();
        self.bump(CostKey::OutputWrite);
        self.registry.bump_external(id);
        let node = self.tree.node_mut(self.tn);
        if let Some(cur) = node.current_mut() {
            let obs = cur.inputs.entry(id).or_insert(ActiveObservation {
                first_size: 0,
                exit_size: 0,
                max_size: 0,
                last_ref: None,
            });
            obs.max_size += 1;
            obs.exit_size = obs.max_size;
        }
    }
}
