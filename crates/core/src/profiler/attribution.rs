//! Input-attribution stage: the data-flow half of AlgoProf.
//!
//! [`AttributionStage`] owns the input registry and reacts to the *data*
//! events — field/array accesses and external I/O. For each access it
//! identifies the input behind the reference (reverse reference map
//! first, then snapshot + equivalence criterion), counts the access on
//! the current invocation, and tracks per-invocation sizes with the
//! paper's first-access / exit-remeasurement snapshot optimization
//! (§3.4). It navigates the repetition tree only through the
//! [`RepetitionStage`] handed to each call.

use algoprof_vm::{ClassId, CompiledProgram, Heap, Value};

use crate::cost::{AccessOp, CostKey};
use crate::inputs::{InputId, InputRegistry};
use crate::reptree::ActiveObservation;
use crate::snapshot::{ElemKey, SnapshotStats};

use super::repetition::RepetitionStage;
use super::{AlgoProfOptions, SnapshotPolicy};

/// What kind of heap location an access event touched: an array slot,
/// or an object field (with the object's class when known).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessTarget {
    Array,
    Field(Option<ClassId>),
}

/// Identifies inputs and records access/size observations.
#[derive(Debug)]
pub struct AttributionStage {
    registry: InputRegistry,
    snapshot_policy: SnapshotPolicy,
}

impl AttributionStage {
    /// A fresh stage configured from the profiler options.
    pub fn new(opts: &AlgoProfOptions) -> Self {
        AttributionStage {
            registry: InputRegistry::with_incremental(
                opts.criterion,
                opts.array_strategy,
                opts.incremental,
            ),
            snapshot_policy: opts.snapshot_policy,
        }
    }

    /// The input registry built so far.
    pub fn registry(&self) -> &InputRegistry {
        &self.registry
    }

    /// Consumes the stage, yielding the registry for profile building.
    pub fn into_registry(self) -> InputRegistry {
        self.registry
    }

    /// Counters of snapshot-traversal work done (and saved) so far.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.registry.snapshot_stats()
    }

    /// Resolves the input accessed through reference `r`, taking a
    /// snapshot only when needed. Returns the input and the size if one
    /// was measured.
    fn resolve_input(
        &mut self,
        rep: &RepetitionStage,
        program: &CompiledProgram,
        heap: &Heap,
        r: Value,
    ) -> Option<(InputId, Option<usize>)> {
        let key = match r {
            Value::Obj(o) => ElemKey::Obj(o),
            Value::Arr(a) => ElemKey::Arr(a),
            _ => return None,
        };
        if let Some(id) = self.registry.resolve_ref(key) {
            return Some((id, None));
        }
        // Unknown reference. Under the first/last policy, attribute
        // mid-construction references to the invocation's open input
        // without traversing (the paper's "memorize the one accessed
        // reference" trick) — but only for structures; arrays are always
        // identified.
        if self.snapshot_policy == SnapshotPolicy::FirstAndLast && matches!(r, Value::Obj(_)) {
            if let Some(open) = rep.current().and_then(|c| c.open_input) {
                return Some((open, None));
            }
        }
        let m = self.registry.measure_unidentified(program, heap, r)?;
        let size = m.snapshot.size_under(self.registry.array_strategy());
        let candidates = rep.chain_candidates();
        let id = self.registry.identify(m, &candidates);
        Some((id, Some(size)))
    }

    /// Records an access observation of `input` through `r` on the
    /// current node's active invocation.
    fn observe(
        &mut self,
        rep: &mut RepetitionStage,
        program: &CompiledProgram,
        heap: &Heap,
        input: InputId,
        r: Value,
        measured: Option<usize>,
    ) {
        let every_access = self.snapshot_policy == SnapshotPolicy::EveryAccess;
        let exists = rep.current().is_some_and(|c| c.inputs.contains_key(&input));

        // First access in this invocation (or every access, under that
        // policy): measure from the accessed reference and refresh the
        // registry.
        let size = if !exists || every_access {
            match measured {
                Some(s) => Some(s),
                None => self.registry.remeasure(program, heap, input, r),
            }
        } else {
            None
        };

        let cur = rep
            .current_mut()
            .expect("the current node has an active invocation");
        let obs = cur.inputs.entry(input).or_insert_with(|| {
            let s = size.unwrap_or(0);
            ActiveObservation {
                first_size: s,
                exit_size: s,
                max_size: s,
                last_ref: None,
            }
        });
        obs.last_ref = Some(r);
        if let Some(s) = size {
            obs.max_size = obs.max_size.max(s);
            obs.exit_size = s;
        }
        // Only *structure* accesses set the open input: unresolved object
        // references fall back to it mid-construction. Array accesses must
        // not capture it, or freshly allocated helper arrays would swallow
        // subsequent unknown objects.
        if matches!(r, Value::Obj(_)) {
            cur.open_input = Some(input);
        }
    }

    /// The paper's `remeasureInputs`: re-snapshot every input of the
    /// terminating invocation from the last reference accessed. Called
    /// *before* the repetition stage finalizes the invocation.
    pub fn remeasure_inputs(
        &mut self,
        rep: &mut RepetitionStage,
        program: &CompiledProgram,
        heap: &Heap,
    ) {
        let entries: Vec<(InputId, Value)> = match rep.current() {
            Some(cur) => cur
                .inputs
                .iter()
                .filter_map(|(&id, obs)| obs.last_ref.map(|r| (id, r)))
                .collect(),
            None => return,
        };
        for (id, r) in entries {
            if let Some(size) = self.registry.remeasure(program, heap, id, r) {
                if let Some(obs) = rep.current_mut().and_then(|c| c.inputs.get_mut(&id)) {
                    obs.exit_size = size;
                    obs.max_size = obs.max_size.max(size);
                }
            }
        }
    }

    /// Handles one field or array access event end-to-end: resolve the
    /// input, count the access, observe the size.
    pub fn on_access(
        &mut self,
        rep: &mut RepetitionStage,
        r: Value,
        op: AccessOp,
        target: AccessTarget,
        program: &CompiledProgram,
        heap: &Heap,
    ) {
        let Some((input, measured)) = self.resolve_input(rep, program, heap, r) else {
            return;
        };
        // Events fire after the mutation, so the current heap epoch covers
        // this write.
        if op == AccessOp::Write {
            self.registry.mark_dirty(input, heap.epoch());
        }
        match target {
            AccessTarget::Array => rep.bump(CostKey::ArrayAccess { input, op }),
            AccessTarget::Field(class) => {
                rep.bump(CostKey::StructAccess { input, op });
                if let Some(class) = class {
                    rep.bump(CostKey::StructAccessByType { input, class, op });
                }
            }
        }
        self.observe(rep, program, heap, input, r, measured);
    }

    /// A cross-thread read of data this thread wrote last (Coppa et
    /// al.): the consuming thread's read attributes the input identity
    /// and *size* to the writing thread's current invocation, without
    /// counting any access cost here — the reading thread's own pipeline
    /// already counts the access.
    pub fn on_remote_read(
        &mut self,
        rep: &mut RepetitionStage,
        r: Value,
        program: &CompiledProgram,
        heap: &Heap,
    ) {
        let Some((input, measured)) = self.resolve_input(rep, program, heap, r) else {
            return;
        };
        self.observe(rep, program, heap, input, r, measured);
    }

    /// External I/O: both streams are inputs whose "size" is the number
    /// of values transferred so far in the current invocation.
    pub fn on_external_io(&mut self, rep: &mut RepetitionStage, op: AccessOp) {
        let (id, key) = match op {
            AccessOp::Read => (self.registry.external_input(), CostKey::InputRead),
            AccessOp::Write => (self.registry.external_output(), CostKey::OutputWrite),
        };
        rep.bump(key);
        self.registry.bump_external(id);
        if let Some(cur) = rep.current_mut() {
            let obs = cur.inputs.entry(id).or_insert(ActiveObservation {
                first_size: 0,
                exit_size: 0,
                max_size: 0,
                last_ref: None,
            });
            obs.max_size += 1;
            obs.exit_size = obs.max_size;
        }
    }
}
