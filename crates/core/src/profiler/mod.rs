//! The AlgoProf dynamic analysis (paper §3.2–§3.4).
//!
//! `AlgoProf` is an [`EventSink`]: it consumes the VM's unified
//! [`Event`] stream (live from the interpreter, or replayed from a
//! recording — same code path either way) and incrementally builds an
//! algorithmic profile. Internally it is a two-stage pipeline:
//!
//! * [`RepetitionStage`] handles the control-flow events, following the
//!   paper's pseudocode — **loop entry** `tn = tn.getOrCreateChild(loop)`
//!   plus a shadow push; **loop back edge** `tn.cost{STEP}++`; **loop
//!   exit** finalize and pop; **method entry** folds recursion by
//!   jumping to a header on the path to the root (counting a step) or
//!   creating a recursion child; **method exit** finalizes when the
//!   recursion depth returns to zero;
//! * [`AttributionStage`] handles the data events — field/array accesses
//!   identify the input (reverse reference map, then snapshot +
//!   equivalence criterion), count the access, and track per-invocation
//!   sizes with the paper's first-access / exit-remeasurement snapshot
//!   optimization.
//!
//! The [`EventSink`] impl on [`AlgoProf`] is the pipeline driver: it
//! routes each event to the right stage and sequences the one cross-stage
//! interaction (inputs are remeasured *before* a repetition finalizes).

pub mod attribution;
pub mod repetition;

use algoprof_vm::{CompiledProgram, Event, EventCx, EventSink, Value};

use crate::cost::{AccessOp, CostKey};
use crate::inputs::InputRegistry;
use crate::profile::AlgorithmicProfile;
use crate::reptree::RepTree;
use crate::snapshot::{ArraySizeStrategy, EquivalenceCriterion, IncrementalMode, SnapshotStats};

pub use attribution::{AccessTarget, AttributionStage};
pub use repetition::RepetitionStage;

/// When structure snapshots are taken (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotPolicy {
    /// Snapshot at a repetition's first access of each input and once
    /// more at repetition exit (`remeasureInputs`) — AlgoProf's
    /// optimization.
    #[default]
    FirstAndLast,
    /// Snapshot at every access (precise but expensive; kept for the
    /// ablation benchmarks).
    EveryAccess,
}

/// Configuration of the algorithmic profiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlgoProfOptions {
    /// Snapshot-equivalence criterion for input identity.
    pub criterion: EquivalenceCriterion,
    /// Array sizing strategy.
    pub array_strategy: ArraySizeStrategy,
    /// Snapshot frequency.
    pub snapshot_policy: SnapshotPolicy,
    /// How repetitions group into algorithms.
    pub grouping: crate::algorithms::GroupingStrategy,
    /// Snapshot-cache behaviour for re-measured inputs.
    pub incremental: IncrementalMode,
}

/// The algorithmic profiler. Feed it to
/// [`Interp::run`](algoprof_vm::Interp::run) against an *instrumented*
/// program — or compose it with other sinks via
/// [`Tee`](algoprof_vm::Tee) / [`Fanout`](algoprof_vm::Fanout) — then
/// call [`AlgoProf::finish`] to obtain the profile.
///
/// # Example
///
/// ```
/// use algoprof_vm::{compile, InstrumentOptions, Interp};
/// use algoprof::AlgoProf;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = r#"
///     class Main {
///         static int main() {
///             int s = 0;
///             for (int i = 0; i < 10; i = i + 1) { s = s + i; }
///             return s;
///         }
///     }
/// "#;
/// let program = compile(src)?.instrument(&InstrumentOptions::default());
/// let mut prof = AlgoProf::new();
/// Interp::new(&program).run(&mut prof)?;
/// let profile = prof.finish(&program);
/// // Two algorithms: the program root and the loop.
/// assert_eq!(profile.algorithms().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AlgoProf {
    opts: AlgoProfOptions,
    repetition: RepetitionStage,
    attribution: AttributionStage,
}

impl AlgoProf {
    /// Creates a profiler with default options (SomeElements equivalence,
    /// capacity array sizing, first/last snapshots).
    pub fn new() -> Self {
        AlgoProf::with_options(AlgoProfOptions::default())
    }

    /// Creates a profiler with explicit options.
    pub fn with_options(opts: AlgoProfOptions) -> Self {
        AlgoProf {
            opts,
            repetition: RepetitionStage::new(),
            attribution: AttributionStage::new(&opts),
        }
    }

    /// The repetition tree built so far.
    pub fn tree(&self) -> &RepTree {
        self.repetition.tree()
    }

    /// The input registry built so far.
    pub fn registry(&self) -> &InputRegistry {
        self.attribution.registry()
    }

    /// Counters of snapshot-traversal work done (and saved) so far.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.attribution.snapshot_stats()
    }

    /// Finalizes all open invocations and produces the profile.
    ///
    /// Call this after the interpreter run completed successfully; a
    /// failed run leaves partially-attributed data.
    pub fn finish(self, program: &CompiledProgram) -> AlgorithmicProfile {
        let AlgoProf {
            opts,
            repetition,
            attribution,
        } = self;
        AlgorithmicProfile::build_with(
            repetition.into_finalized_tree(),
            attribution.into_registry(),
            program,
            opts.grouping,
        )
    }
}

impl Default for AlgoProf {
    fn default() -> Self {
        AlgoProf::new()
    }
}

impl EventSink for AlgoProf {
    fn event(&mut self, ev: &Event, cx: &EventCx<'_>) {
        let (program, heap) = (cx.program, cx.heap);
        let (rep, attr) = (&mut self.repetition, &mut self.attribution);
        match *ev {
            Event::LoopEntry { l } => rep.enter_loop(l),
            Event::LoopBackEdge { .. } => rep.bump(CostKey::Step),
            Event::LoopExit { .. } => {
                attr.remeasure_inputs(rep, program, heap);
                rep.exit_loop();
            }
            Event::MethodEntry { func } => rep.enter_method(func),
            Event::MethodExit { .. } => {
                if rep.leave_method_frame() {
                    attr.remeasure_inputs(rep, program, heap);
                    rep.finalize_current();
                }
                rep.pop_method();
            }
            Event::FieldRead { obj, .. } => {
                let class = match obj {
                    Value::Obj(o) => Some(heap.object(o).class),
                    _ => None,
                };
                let target = AccessTarget::Field(class);
                attr.on_access(rep, obj, AccessOp::Read, target, program, heap);
            }
            Event::FieldWrite { obj, tracked, .. } if tracked => {
                let target = AccessTarget::Field(Some(heap.object(obj).class));
                attr.on_access(rep, Value::Obj(obj), AccessOp::Write, target, program, heap);
            }
            Event::ArrayRead { arr } => {
                attr.on_access(rep, arr, AccessOp::Read, AccessTarget::Array, program, heap);
            }
            Event::ArrayWrite { arr, tracked, .. } if tracked => {
                attr.on_access(
                    rep,
                    Value::Arr(arr),
                    AccessOp::Write,
                    AccessTarget::Array,
                    program,
                    heap,
                );
            }
            Event::ObjectAlloc { class, tracked, .. } if tracked => {
                rep.bump(CostKey::Creation { class });
            }
            Event::InputRead => attr.on_external_io(rep, AccessOp::Read),
            Event::OutputWrite => attr.on_external_io(rep, AccessOp::Write),
            // Untracked mutations, array allocations, and instruction
            // ticks carry no algorithmic cost.
            _ => {}
        }
    }
}
