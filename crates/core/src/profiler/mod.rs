//! The AlgoProf dynamic analysis (paper §3.2–§3.4).
//!
//! `AlgoProf` is an [`EventSink`]: it consumes the VM's unified
//! [`Event`] stream (live from the interpreter, or replayed from a
//! recording — same code path either way) and incrementally builds an
//! algorithmic profile. Internally it is a two-stage pipeline:
//!
//! * [`RepetitionStage`] handles the control-flow events, following the
//!   paper's pseudocode — **loop entry** `tn = tn.getOrCreateChild(loop)`
//!   plus a shadow push; **loop back edge** `tn.cost{STEP}++`; **loop
//!   exit** finalize and pop; **method entry** folds recursion by
//!   jumping to a header on the path to the root (counting a step) or
//!   creating a recursion child; **method exit** finalizes when the
//!   recursion depth returns to zero;
//! * [`AttributionStage`] handles the data events — field/array accesses
//!   identify the input (reverse reference map, then snapshot +
//!   equivalence criterion), count the access, and track per-invocation
//!   sizes with the paper's first-access / exit-remeasurement snapshot
//!   optimization.
//!
//! The [`EventSink`] impl on [`AlgoProf`] is the pipeline driver: it
//! routes each event to the right stage and sequences the one cross-stage
//! interaction (inputs are remeasured *before* a repetition finalizes).
//!
//! # Threads
//!
//! The profiler keeps **one pipeline pair per guest thread** and follows
//! the stream's current-thread protocol ([`Event::ThreadSwitch`]): each
//! event is charged to the thread it occurred on, yielding one repetition
//! tree — and ultimately one [`AlgorithmicProfile`] — per thread (see
//! [`ProfileSet`]). Two cross-thread rules, following Coppa, Demetrescu
//! and Finocchi's input-sensitive profiling of multithreaded programs:
//!
//! * **contention is cost to the waiter** — a [`Event::LockWait`] bumps
//!   [`CostKey::LockContention`] on the *blocked* thread's current
//!   invocation;
//! * **cross-thread reads attribute size to the writer** — when a thread
//!   reads a location last written by another thread, the input's
//!   identity and size are also observed on the writing thread's current
//!   invocation (without double-counting the access itself).
//!
//! Single-threaded streams carry no thread events, so everything lands on
//! the one main-thread pipeline exactly as before.

pub mod attribution;
pub mod repetition;

use std::collections::HashMap;

use algoprof_vm::{CompiledProgram, Event, EventCx, EventSink, ThreadId, Value};

use crate::cost::{AccessOp, CostKey};
use crate::inputs::InputRegistry;
use crate::profile::{AlgorithmicProfile, ProfileSet};
use crate::reptree::RepTree;
use crate::snapshot::{
    ArraySizeStrategy, ElemKey, EquivalenceCriterion, IncrementalMode, SnapshotStats,
};

pub use attribution::{AccessTarget, AttributionStage};
pub use repetition::RepetitionStage;

/// When structure snapshots are taken (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotPolicy {
    /// Snapshot at a repetition's first access of each input and once
    /// more at repetition exit (`remeasureInputs`) — AlgoProf's
    /// optimization.
    #[default]
    FirstAndLast,
    /// Snapshot at every access (precise but expensive; kept for the
    /// ablation benchmarks).
    EveryAccess,
}

/// Configuration of the algorithmic profiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlgoProfOptions {
    /// Snapshot-equivalence criterion for input identity.
    pub criterion: EquivalenceCriterion,
    /// Array sizing strategy.
    pub array_strategy: ArraySizeStrategy,
    /// Snapshot frequency.
    pub snapshot_policy: SnapshotPolicy,
    /// How repetitions group into algorithms.
    pub grouping: crate::algorithms::GroupingStrategy,
    /// Snapshot-cache behaviour for re-measured inputs.
    pub incremental: IncrementalMode,
}

/// The algorithmic profiler. Feed it to
/// [`Interp::run`](algoprof_vm::Interp::run) against an *instrumented*
/// program — or compose it with other sinks via
/// [`Tee`](algoprof_vm::Tee) / [`Fanout`](algoprof_vm::Fanout) — then
/// call [`AlgoProf::finish`] to obtain the profile.
///
/// # Example
///
/// ```
/// use algoprof_vm::{compile, InstrumentOptions, Interp};
/// use algoprof::AlgoProf;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = r#"
///     class Main {
///         static int main() {
///             int s = 0;
///             for (int i = 0; i < 10; i = i + 1) { s = s + i; }
///             return s;
///         }
///     }
/// "#;
/// let program = compile(src)?.instrument(&InstrumentOptions::default());
/// let mut prof = AlgoProf::new();
/// Interp::new(&program).run(&mut prof)?;
/// let profile = prof.finish(&program);
/// // Two algorithms: the program root and the loop.
/// assert_eq!(profile.algorithms().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AlgoProf {
    opts: AlgoProfOptions,
    /// One (repetition, attribution) pipeline per guest thread, indexed
    /// by [`ThreadId::index`]. Slot 0 is the main thread and always
    /// exists.
    threads: Vec<(RepetitionStage, AttributionStage)>,
    /// Index of the thread currently executing (the stream starts
    /// implicitly in the main thread).
    cur: usize,
    /// Last thread to write each heap location (allocation counts as a
    /// write). Drives the cross-thread read rule.
    last_writer: HashMap<ElemKey, usize>,
}

impl AlgoProf {
    /// Creates a profiler with default options (SomeElements equivalence,
    /// capacity array sizing, first/last snapshots).
    pub fn new() -> Self {
        AlgoProf::with_options(AlgoProfOptions::default())
    }

    /// Creates a profiler with explicit options.
    pub fn with_options(opts: AlgoProfOptions) -> Self {
        AlgoProf {
            opts,
            threads: vec![(RepetitionStage::new(), AttributionStage::new(&opts))],
            cur: 0,
            last_writer: HashMap::new(),
        }
    }

    /// The current thread's pipeline pair, split-borrowed.
    fn pipeline(&mut self) -> (&mut RepetitionStage, &mut AttributionStage) {
        let t = &mut self.threads[self.cur];
        (&mut t.0, &mut t.1)
    }

    /// Makes sure a pipeline slot exists for `thread`.
    fn ensure_thread(&mut self, thread: ThreadId) {
        while self.threads.len() <= thread.index() {
            self.threads
                .push((RepetitionStage::new(), AttributionStage::new(&self.opts)));
        }
    }

    /// Applies the cross-thread read rule for a read through `r`: when
    /// another thread wrote this location last, the read also observes
    /// the input (identity and size) on *that* thread's current
    /// invocation.
    fn credit_remote_writer(
        &mut self,
        r: Value,
        program: &CompiledProgram,
        heap: &algoprof_vm::Heap,
    ) {
        let key = match r {
            Value::Obj(o) => ElemKey::Obj(o),
            Value::Arr(a) => ElemKey::Arr(a),
            _ => return,
        };
        let Some(&w) = self.last_writer.get(&key) else {
            return;
        };
        if w == self.cur || w >= self.threads.len() {
            return;
        }
        let (rep, attr) = {
            let t = &mut self.threads[w];
            (&mut t.0, &mut t.1)
        };
        attr.on_remote_read(rep, r, program, heap);
    }

    /// Number of guest threads seen so far (at least 1).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The main thread's repetition tree built so far.
    pub fn tree(&self) -> &RepTree {
        self.threads[0].0.tree()
    }

    /// The main thread's input registry built so far.
    pub fn registry(&self) -> &InputRegistry {
        self.threads[0].1.registry()
    }

    /// Counters of snapshot-traversal work done (and saved) so far,
    /// summed across all threads.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        let mut total = SnapshotStats::default();
        for (_, attr) in &self.threads {
            let s = attr.snapshot_stats();
            total.full_walks += s.full_walks;
            total.cache_hits += s.cache_hits;
            total.partial_redos += s.partial_redos;
            total.objects_traversed += s.objects_traversed;
            total.arrays_traversed += s.arrays_traversed;
            total.elements_scanned += s.elements_scanned;
        }
        total
    }

    /// Finalizes all open invocations and produces the *main thread's*
    /// profile. For threaded programs, use [`AlgoProf::finish_set`] to
    /// keep every thread's profile.
    ///
    /// Call this after the interpreter run completed successfully; a
    /// failed run leaves partially-attributed data.
    pub fn finish(self, program: &CompiledProgram) -> AlgorithmicProfile {
        self.finish_set(program).into_main()
    }

    /// Finalizes all open invocations and produces one profile per guest
    /// thread (index 0 is the main thread).
    pub fn finish_set(self, program: &CompiledProgram) -> ProfileSet {
        let AlgoProf { opts, threads, .. } = self;
        ProfileSet::new(
            threads
                .into_iter()
                .map(|(rep, attr)| {
                    AlgorithmicProfile::build_with(
                        rep.into_finalized_tree(),
                        attr.into_registry(),
                        program,
                        opts.grouping,
                    )
                })
                .collect(),
        )
    }
}

impl Default for AlgoProf {
    fn default() -> Self {
        AlgoProf::new()
    }
}

impl EventSink for AlgoProf {
    fn event(&mut self, ev: &Event, cx: &EventCx<'_>) {
        let (program, heap) = (cx.program, cx.heap);
        match *ev {
            Event::LoopEntry { l } => self.pipeline().0.enter_loop(l),
            Event::LoopBackEdge { .. } => self.pipeline().0.bump(CostKey::Step),
            Event::LoopExit { .. } => {
                let (rep, attr) = self.pipeline();
                attr.remeasure_inputs(rep, program, heap);
                rep.exit_loop();
            }
            Event::MethodEntry { func } => self.pipeline().0.enter_method(func),
            Event::MethodExit { .. } => {
                let (rep, attr) = self.pipeline();
                if rep.leave_method_frame() {
                    attr.remeasure_inputs(rep, program, heap);
                    rep.finalize_current();
                }
                rep.pop_method();
            }
            Event::FieldRead { obj, .. } => {
                self.credit_remote_writer(obj, program, heap);
                let class = match obj {
                    Value::Obj(o) => Some(heap.object(o).class),
                    _ => None,
                };
                let target = AccessTarget::Field(class);
                let (rep, attr) = self.pipeline();
                attr.on_access(rep, obj, AccessOp::Read, target, program, heap);
            }
            Event::FieldWrite { obj, tracked, .. } => {
                self.last_writer.insert(ElemKey::Obj(obj), self.cur);
                if tracked {
                    let target = AccessTarget::Field(Some(heap.object(obj).class));
                    let (rep, attr) = self.pipeline();
                    attr.on_access(rep, Value::Obj(obj), AccessOp::Write, target, program, heap);
                }
            }
            Event::ArrayRead { arr } => {
                self.credit_remote_writer(arr, program, heap);
                let (rep, attr) = self.pipeline();
                attr.on_access(rep, arr, AccessOp::Read, AccessTarget::Array, program, heap);
            }
            Event::ArrayWrite { arr, tracked, .. } => {
                self.last_writer.insert(ElemKey::Arr(arr), self.cur);
                if tracked {
                    let (rep, attr) = self.pipeline();
                    attr.on_access(
                        rep,
                        Value::Arr(arr),
                        AccessOp::Write,
                        AccessTarget::Array,
                        program,
                        heap,
                    );
                }
            }
            Event::ObjectAlloc {
                obj,
                class,
                tracked,
            } => {
                self.last_writer.insert(ElemKey::Obj(obj), self.cur);
                if tracked {
                    self.pipeline().0.bump(CostKey::Creation { class });
                }
            }
            Event::ArrayAlloc { arr, .. } => {
                self.last_writer.insert(ElemKey::Arr(arr), self.cur);
            }
            Event::InputRead => {
                let (rep, attr) = self.pipeline();
                attr.on_external_io(rep, AccessOp::Read);
            }
            Event::OutputWrite => {
                let (rep, attr) = self.pipeline();
                attr.on_external_io(rep, AccessOp::Write);
            }
            Event::ThreadSpawn { thread, .. } => self.ensure_thread(thread),
            Event::ThreadSwitch { thread } => {
                self.ensure_thread(thread);
                self.cur = thread.index();
            }
            // A thread's frames were already unwound through MethodExit
            // events; finalization of anything still open happens in
            // `finish_set`.
            Event::ThreadEnd { .. } => {}
            // Contention is cost charged to the *blocked* thread (the
            // current one — LockWait is delivered before the scheduler
            // switches away).
            Event::LockWait { .. } => self.pipeline().0.bump(CostKey::LockContention),
            // Uncontended lock traffic and instruction ticks carry no
            // algorithmic cost.
            Event::LockAcquire { .. } | Event::LockRelease { .. } | Event::Instruction { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CostMetric;
    use crate::report::{render, render_set};
    use algoprof_vm::{compile, InstrumentOptions, Interp};

    /// Two workers hammer one lock-guarded counter; the cooperative
    /// scheduler preempts inside critical sections, so some acquisitions
    /// block.
    const CONTENDED_SRC: &str = "class Main { static int main() {
        Counter c = new Counter();
        int t1 = spawn bump(c, 100);
        int t2 = spawn bump(c, 100);
        int a = join t1;
        int b = join t2;
        return c.total;
    }
    static int bump(Counter c, int n) {
        for (int i = 0; i < n; i = i + 1) {
            lock c;
            c.total = c.total + 1;
            unlock c;
        }
        return n;
    } }
    class Counter { int total; }";

    /// Main builds a 20-node list, a worker thread traverses it: every
    /// node the worker reads was last written by main.
    const PRODUCER_CONSUMER_SRC: &str = "class Main { static int main() {
        Node head = null;
        for (int i = 0; i < 20; i = i + 1) {
            Node n = new Node();
            n.next = head;
            head = n;
        }
        int t = spawn count(head);
        return join t;
    }
    static int count(Node head) {
        int c = 0;
        Node cur = head;
        while (cur != null) { c = c + 1; cur = cur.next; }
        return c;
    } }
    class Node { Node next; }";

    fn run_set(src: &str) -> crate::profile::ProfileSet {
        let program = compile(src)
            .expect("compiles")
            .instrument(&InstrumentOptions::default());
        let mut prof = AlgoProf::new();
        Interp::new(&program).run(&mut prof).expect("runs");
        prof.finish_set(&program)
    }

    #[test]
    fn single_threaded_run_yields_one_profile() {
        let set = run_set(
            "class Main { static int main() {
                int s = 0;
                for (int i = 0; i < 5; i = i + 1) { s = s + i; }
                return s;
            } }",
        );
        assert_eq!(set.len(), 1);
        assert!(!set.is_threaded());
        assert_eq!(render_set(&set), render(set.main()));
    }

    #[test]
    fn threaded_run_builds_one_tree_per_thread() {
        let set = run_set(CONTENDED_SRC);
        assert_eq!(set.len(), 3, "main + two workers");
        assert!(set.is_threaded());
        // Each worker ran the bump loop: 100 back edges on its own tree.
        for t in 1..=2 {
            let p = set.thread(t).expect("worker profile");
            let algo = p
                .algorithm_by_root_name("Main.bump:loop0")
                .expect("worker loop algorithm");
            assert_eq!(algo.total_costs.steps(), 100);
        }
        // Main never ran bump's loop.
        assert!(set
            .main()
            .algorithm_by_root_name("Main.bump:loop0")
            .is_none());
    }

    #[test]
    fn contention_is_charged_to_blocked_threads() {
        let set = run_set(CONTENDED_SRC);
        let waits = |p: &crate::profile::AlgorithmicProfile| -> u64 {
            p.algorithms()
                .iter()
                .map(|a| a.total_costs.contention())
                .sum()
        };
        let w1 = waits(set.thread(1).expect("t1"));
        let w2 = waits(set.thread(2).expect("t2"));
        assert!(
            w1 + w2 > 0,
            "quantum preemption inside critical sections must produce contention"
        );
        // Main only joins; it never touches the lock.
        assert_eq!(waits(set.main()), 0);
    }

    #[test]
    fn merged_view_spans_threads() {
        // Each worker builds its own list, so the same algorithm
        // (`build`'s construction loop) runs on two threads with
        // different input sizes.
        let set = run_set(
            "class Main { static int main() {
                int t1 = spawn build(10);
                int t2 = spawn build(15);
                int a = join t1;
                int b = join t2;
                return a + b;
            }
            static int build(int n) {
                Node head = null;
                for (int i = 0; i < n; i = i + 1) {
                    Node x = new Node();
                    x.next = head;
                    head = x;
                }
                return n;
            } }
            class Node { Node next; }",
        );
        assert_eq!(set.len(), 3);
        let points_of = |t: usize| -> usize {
            let p = set.thread(t).expect("worker profile");
            p.algorithm_by_root_name("Main.build:loop0")
                .map(|a| p.invocation_series(a.id, CostMetric::Steps).len())
                .unwrap_or(0)
        };
        let (s1, s2) = (points_of(1), points_of(2));
        assert!(s1 > 0 && s2 > 0, "both workers have data points");
        // Loops are named `Class.method:loopN@Lline`; the merged view
        // matches the full name exactly.
        let p1 = set.thread(1).expect("worker profile");
        let a1 = p1
            .algorithm_by_root_name("Main.build:loop0")
            .expect("worker loop");
        let full_name = p1.node_name(a1.root).to_string();
        let merged = set.merged_series(&full_name, CostMetric::Steps);
        assert_eq!(merged.len(), s1 + s2, "merged view spans both threads");
        assert!(merged.iter().any(|&(size, _)| size == 10.0));
        assert!(merged.iter().any(|&(size, _)| size == 15.0));
        assert!(set.algorithm_names().contains(&full_name));
    }

    #[test]
    fn cross_thread_reads_attribute_size_to_the_writer() {
        let set = run_set(PRODUCER_CONSUMER_SRC);
        assert_eq!(set.len(), 2);
        // The worker's traversal identifies the list in its own registry.
        let worker = set.thread(1).expect("worker profile");
        let traversal = worker
            .algorithm_by_root_name("Main.count:loop0")
            .expect("traversal loop");
        let input = worker.primary_input(traversal.id).expect("list input");
        assert_eq!(worker.registry().input(input).max_size, 20);
        // Coppa et al.'s rule: the worker's reads also observe the list on
        // the *writing* thread (main). All of main's accesses happened
        // inside its construction loop, so the only way its root
        // invocation can carry an input observation is the remote-read
        // credit.
        let main = set.main();
        let root = main
            .algorithm_by_root_name("Program")
            .expect("root algorithm");
        let series = main.invocation_series(root.id, CostMetric::Steps);
        assert!(
            !series.is_empty(),
            "remote reads must observe the list on main's root invocation"
        );
        assert!(
            series.iter().any(|&(size, _)| size == 20.0),
            "the observed size is the full 20-node list, got {series:?}"
        );
    }

    #[test]
    fn threaded_render_set_has_thread_sections_and_merged_view() {
        let set = run_set(CONTENDED_SRC);
        let text = render_set(&set);
        assert!(text.contains("=== t0 (main) ==="));
        assert!(text.contains("=== t1 ==="));
        assert!(text.contains("=== t2 ==="));
        assert!(text.contains("=== merged (all threads) ==="));
        assert!(
            text.contains("lock-waits="),
            "merged view reports contention"
        );
    }
}
