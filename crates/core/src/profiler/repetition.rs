//! Repetition-structure stage: the tree-navigation half of AlgoProf.
//!
//! [`RepetitionStage`] owns the repetition tree and the profiler's
//! position in it (`tn` plus the shadow stack of the paper's pseudocode).
//! It reacts to the *control-flow* events — loop entry/back-edge/exit,
//! method entry/exit with recursion folding — and exposes the current
//! active invocation so the attribution stage can attach input
//! observations to it. It knows nothing about snapshots or input
//! identity.

use algoprof_vm::{FuncId, LoopId};

use crate::cost::CostKey;
use crate::inputs::InputId;
use crate::reptree::{ActiveInvocation, NodeId, RepKind, RepTree};

/// Tracks the repetition tree and the active position within it.
#[derive(Debug)]
pub struct RepetitionStage {
    tree: RepTree,
    tn: NodeId,
    shadow: Vec<NodeId>,
}

impl RepetitionStage {
    /// A fresh stage positioned at the tree root.
    pub fn new() -> Self {
        let tree = RepTree::new();
        let tn = tree.root();
        RepetitionStage {
            tree,
            tn,
            shadow: Vec::new(),
        }
    }

    /// The repetition tree built so far.
    pub fn tree(&self) -> &RepTree {
        &self.tree
    }

    /// Consumes the stage, finalizing every open invocation (the root
    /// always is; more remain only after an aborted run).
    pub fn into_finalized_tree(mut self) -> RepTree {
        self.tree.finalize_all();
        self.tree
    }

    /// The current node's active invocation, if any.
    pub fn current(&self) -> Option<&ActiveInvocation> {
        self.tree.node(self.tn).current()
    }

    /// Mutable access to the current node's active invocation.
    pub fn current_mut(&mut self) -> Option<&mut ActiveInvocation> {
        self.tree.node_mut(self.tn).current_mut()
    }

    /// Bumps `key` on the current invocation's cost map.
    pub fn bump(&mut self, key: CostKey) {
        if let Some(cur) = self.current_mut() {
            cur.costs.bump(key);
        }
    }

    /// Inputs observed by any invocation active on the current chain —
    /// the candidate set for value-based snapshot matching.
    pub fn chain_candidates(&self) -> Vec<InputId> {
        let mut out = Vec::new();
        for node in self.tree.path_to_root(self.tn) {
            for activation in &self.tree.node(node).active {
                out.extend(activation.inputs.keys().copied());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn parent_link(&self) -> (NodeId, usize) {
        let ordinal = self
            .tree
            .current_ordinal(self.tn)
            .expect("the current node has an active invocation");
        (self.tn, ordinal)
    }

    /// Loop entry: `tn = tn.getOrCreateChild(loop)`, push shadow, start
    /// an invocation linked to the parent.
    pub fn enter_loop(&mut self, l: LoopId) {
        let link = self.parent_link();
        let child = self.tree.get_or_create_child(self.tn, RepKind::Loop(l));
        self.shadow.push(self.tn);
        self.tn = child;
        self.tree.start_invocation(child, Some(link));
    }

    /// Loop exit: finalize the loop's invocation and pop back to the
    /// parent. The caller remeasures inputs *before* calling this.
    pub fn exit_loop(&mut self) {
        self.tree.finalize_invocation(self.tn);
        self.tn = self.shadow.pop().expect("loop exit balances a loop entry");
    }

    /// Method entry with recursion folding: jump to a header already on
    /// the path to the root (counting a step) or create a recursion
    /// child, starting an invocation only at recursion depth zero.
    pub fn enter_method(&mut self, m: FuncId) {
        if let Some(header) = self.tree.find_on_path_to_root(self.tn, m) {
            self.shadow.push(self.tn);
            self.tn = header;
            self.bump(CostKey::Step);
            self.tree.node_mut(header).recursion_depth += 1;
        } else {
            let link = self.parent_link();
            let child = self
                .tree
                .get_or_create_child(self.tn, RepKind::Recursion(m));
            self.shadow.push(self.tn);
            self.tn = child;
            if self.tree.node(child).recursion_depth == 0 {
                self.tree.start_invocation(child, Some(link));
            }
            self.tree.node_mut(child).recursion_depth += 1;
        }
    }

    /// Method exit, first half: drop one recursion level and report
    /// whether the outermost activation just ended — in which case the
    /// caller remeasures inputs, then calls [`finalize_current`] and
    /// [`pop_method`].
    ///
    /// [`finalize_current`]: RepetitionStage::finalize_current
    /// [`pop_method`]: RepetitionStage::pop_method
    pub fn leave_method_frame(&mut self) -> bool {
        let node = self.tree.node_mut(self.tn);
        node.recursion_depth = node.recursion_depth.saturating_sub(1);
        node.recursion_depth == 0
    }

    /// Finalizes the current node's invocation (method exit at recursion
    /// depth zero).
    pub fn finalize_current(&mut self) {
        self.tree.finalize_invocation(self.tn);
    }

    /// Method exit, second half: return to the caller's node.
    pub fn pop_method(&mut self) {
        self.tn = self
            .shadow
            .pop()
            .expect("method exit balances a method entry");
    }
}

impl Default for RepetitionStage {
    fn default() -> Self {
        RepetitionStage::new()
    }
}
