//! Textual rendering of algorithmic profiles (Figure 3 / Figure 4 style).

use std::fmt::Write as _;

use crate::algorithms::AlgorithmId;
use crate::profile::{AlgorithmicProfile, CostMetric};
use crate::reptree::NodeId;

/// Renders the repetition tree with per-node invocation/step statistics,
/// followed by one summary block per algorithm (classification, input
/// size range, and the automatically fitted cost function).
pub fn render(profile: &AlgorithmicProfile) -> String {
    let mut out = String::new();
    out.push_str("Repetition tree\n");
    render_node(profile, profile.tree().root(), "", true, &mut out);
    out.push('\n');

    for algo in profile.algorithms() {
        let _ = writeln!(
            out,
            "[{}] root={} members={}",
            algo.id,
            profile.node_name(algo.root),
            algo.members.len()
        );
        let _ = writeln!(out, "  kind: {}", profile.describe_algorithm(algo.id));
        let _ = writeln!(out, "  invocations: {}", algo.invocation_count());
        let _ = writeln!(out, "  total steps: {}", algo.total_costs.steps());
        if let Some(input) = profile.primary_input(algo.id) {
            let series = profile.invocation_series(algo.id, CostMetric::Steps);
            if !series.is_empty() {
                let min = series.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
                let max = series.iter().map(|p| p.0).fold(0.0f64, f64::max);
                let _ = writeln!(
                    out,
                    "  input: {} (sizes {}..{}, {} points)",
                    profile.input_description(input),
                    min,
                    max,
                    series.len()
                );
                // Per-element-type access breakdown (only interesting for
                // structures with several classes, e.g. Vertex/Edge).
                let by_type = profile.accesses_by_type(algo.id, input);
                if by_type.len() > 1 {
                    for (class, reads, writes) in by_type {
                        let _ = writeln!(out, "    cost{{{class}}}: GET={reads} PUT={writes}");
                    }
                }
                if let Some(fit) = profile.fit_invocation_steps(algo.id) {
                    let _ = writeln!(out, "  fitted: {fit}");
                }
            }
        }
        out.push('\n');
    }
    out
}

fn render_node(
    profile: &AlgorithmicProfile,
    node: NodeId,
    prefix: &str,
    is_last: bool,
    out: &mut String,
) {
    let n = profile.tree().node(node);
    let connector = if prefix.is_empty() {
        ""
    } else if is_last {
        "`- "
    } else {
        "|- "
    };
    let algo = algorithm_of(profile, node);
    let _ = writeln!(
        out,
        "{prefix}{connector}{} [{}] invocations={} steps={}",
        profile.node_name(node),
        algo.map(|a| a.to_string()).unwrap_or_default(),
        n.invocations.len(),
        n.total_steps()
    );
    let child_prefix = if prefix.is_empty() {
        "  ".to_owned()
    } else {
        format!("{prefix}{}", if is_last { "   " } else { "|  " })
    };
    let k = n.children.len();
    for (i, &c) in n.children.iter().enumerate() {
        render_node(profile, c, &child_prefix, i + 1 == k, out);
    }
}

fn algorithm_of(profile: &AlgorithmicProfile, node: NodeId) -> Option<AlgorithmId> {
    profile
        .algorithms()
        .iter()
        .find(|a| a.members.contains(&node))
        .map(|a| a.id)
}
