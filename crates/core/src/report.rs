//! Textual rendering of algorithmic profiles (Figure 3 / Figure 4 style).

use std::fmt::Write as _;

use crate::algorithms::AlgorithmId;
use crate::profile::{AlgorithmicProfile, CostMetric, ProfileSet};
use crate::reptree::NodeId;

/// Renders the repetition tree with per-node invocation/step statistics,
/// followed by one summary block per algorithm (classification, input
/// size range, and the automatically fitted cost function).
pub fn render(profile: &AlgorithmicProfile) -> String {
    let mut out = String::new();
    out.push_str("Repetition tree\n");
    render_node(profile, profile.tree().root(), "", true, &mut out);
    out.push('\n');

    for algo in profile.algorithms() {
        let _ = writeln!(
            out,
            "[{}] root={} members={}",
            algo.id,
            profile.node_name(algo.root),
            algo.members.len()
        );
        let _ = writeln!(out, "  kind: {}", profile.describe_algorithm(algo.id));
        let _ = writeln!(out, "  invocations: {}", algo.invocation_count());
        let _ = writeln!(out, "  total steps: {}", algo.total_costs.steps());
        if let Some(input) = profile.primary_input(algo.id) {
            let series = profile.invocation_series(algo.id, CostMetric::Steps);
            if !series.is_empty() {
                let min = series.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
                let max = series.iter().map(|p| p.0).fold(0.0f64, f64::max);
                let _ = writeln!(
                    out,
                    "  input: {} (sizes {}..{}, {} points)",
                    profile.input_description(input),
                    min,
                    max,
                    series.len()
                );
                // Per-element-type access breakdown (only interesting for
                // structures with several classes, e.g. Vertex/Edge).
                let by_type = profile.accesses_by_type(algo.id, input);
                if by_type.len() > 1 {
                    for (class, reads, writes) in by_type {
                        let _ = writeln!(out, "    cost{{{class}}}: GET={reads} PUT={writes}");
                    }
                }
                if let Some(fit) = profile.fit_invocation_steps(algo.id) {
                    let _ = writeln!(out, "  fitted: {fit}");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a per-thread profile set. Single-threaded sets render exactly
/// like [`render`] on the main profile (byte-identical, so existing
/// goldens and consumers are unaffected). Threaded sets get one `=== t0
/// (main) ===`-headed section per thread plus a merged cross-thread view
/// listing, for each algorithm name, the total contributed invocations
/// and lock-contention cost.
pub fn render_set(set: &ProfileSet) -> String {
    if !set.is_threaded() {
        return render(set.main());
    }
    let mut out = String::new();
    for (t, p) in set.threads().iter().enumerate() {
        let label = if t == 0 { " (main)" } else { "" };
        let _ = writeln!(out, "=== t{t}{label} ===");
        out.push_str(&render(p));
    }
    out.push_str("=== merged (all threads) ===\n");
    out.push_str(&render_merged(set));
    out
}

/// The merged cross-thread summary block of [`render_set`]: one line per
/// algorithm name with the thread count, total invocations, steps, and
/// (when present) lock-contention cost summed over every thread that ran
/// it. Also embedded in the HTML set rendering.
pub fn render_merged(set: &ProfileSet) -> String {
    let mut out = String::new();
    for name in set.algorithm_names() {
        let mut invocations = 0usize;
        let mut steps = 0u64;
        let mut contention = 0u64;
        let mut threads_running = 0usize;
        for p in set.threads() {
            let mut ran = false;
            for a in p.algorithms() {
                if p.node_name(a.root) == name {
                    ran = true;
                    invocations += a.invocation_count();
                    steps += a.total_costs.steps();
                    contention += a.total_costs.contention();
                }
            }
            if ran {
                threads_running += 1;
            }
        }
        let _ = write!(
            out,
            "{name}: threads={threads_running} invocations={invocations} steps={steps}"
        );
        if contention > 0 {
            let _ = write!(out, " lock-waits={contention}");
        }
        out.push('\n');
    }
    out
}

fn render_node(
    profile: &AlgorithmicProfile,
    node: NodeId,
    prefix: &str,
    is_last: bool,
    out: &mut String,
) {
    let n = profile.tree().node(node);
    let connector = if prefix.is_empty() {
        ""
    } else if is_last {
        "`- "
    } else {
        "|- "
    };
    let algo = algorithm_of(profile, node);
    let _ = writeln!(
        out,
        "{prefix}{connector}{} [{}] invocations={} steps={}",
        profile.node_name(node),
        algo.map(|a| a.to_string()).unwrap_or_default(),
        n.invocations.len(),
        n.total_steps()
    );
    let child_prefix = if prefix.is_empty() {
        "  ".to_owned()
    } else {
        format!("{prefix}{}", if is_last { "   " } else { "|  " })
    };
    let k = n.children.len();
    for (i, &c) in n.children.iter().enumerate() {
        render_node(profile, c, &child_prefix, i + 1 == k, out);
    }
}

fn algorithm_of(profile: &AlgorithmicProfile, node: NodeId) -> Option<AlgorithmId> {
    profile
        .algorithms()
        .iter()
        .find(|a| a.members.contains(&node))
        .map(|a| a.id)
}
