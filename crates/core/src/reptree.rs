//! The repetition tree (paper §2.1 and §3.2).
//!
//! A repetition tree records the dynamic nesting of repetitions — loops
//! and (folded) recursions — across a run. Each node keeps the complete
//! per-invocation history of costs and input observations, which is what
//! allows cost functions to be inferred afterwards.
//!
//! Because recursion folding can re-enter a node that is already active
//! (a loop inside a recursive method runs again in the nested call, but
//! maps to the *same* tree node), every node carries a **stack** of
//! active invocations; accesses and steps attribute to the innermost
//! activation. Invocation ordinals are assigned at start, so parent
//! links remain exact even when nested activations finish first.

use std::collections::BTreeMap;
use std::fmt;

use algoprof_vm::{FuncId, LoopId, Value};

use crate::cost::CostMap;
use crate::inputs::InputId;

/// Index of a node within its [`RepTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// What repetition a tree node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepKind {
    /// The synthetic root covering the whole program.
    Root,
    /// A natural loop.
    Loop(LoopId),
    /// A recursion, represented by its header method.
    Recursion(FuncId),
}

/// Sizes observed for one input during one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InputObservation {
    /// Size measured at the repetition's first access.
    pub first_size: usize,
    /// Size measured when the repetition exited.
    pub exit_size: usize,
    /// Maximum size observed (the paper's representative input size).
    pub max_size: usize,
}

/// One invocation of a repetition (placeholder until finalized).
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The parent node and the ordinal of the parent invocation that was
    /// active when this invocation started (`None` for the root).
    pub parent: Option<(NodeId, usize)>,
    /// Primitive-operation counts attributed directly to this invocation.
    pub costs: CostMap,
    /// Inputs accessed directly, with observed sizes.
    pub inputs: BTreeMap<InputId, InputObservation>,
    /// Whether the repetition has terminated (false only for invocations
    /// still in flight or left open by an aborted run).
    pub finished: bool,
}

/// Mutable bookkeeping for an invocation in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveInvocation {
    /// The pre-assigned index in [`RepNode::invocations`].
    pub ordinal: usize,
    /// Costs so far.
    pub costs: CostMap,
    /// Observations so far.
    pub inputs: BTreeMap<InputId, ActiveObservation>,
    /// The input of the most recent resolved access; unresolved
    /// references (mid-construction) are attributed here.
    pub open_input: Option<InputId>,
}

/// In-flight observation of one input.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveObservation {
    /// Size at the first access.
    pub first_size: usize,
    /// Size at the exit re-measurement (set by `remeasureInputs`).
    pub exit_size: usize,
    /// Running maximum.
    pub max_size: usize,
    /// Last reference accessed (the exit re-measurement starts here).
    pub last_ref: Option<Value>,
}

/// One node of the repetition tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RepNode {
    /// This node's id.
    pub id: NodeId,
    /// What repetition it represents.
    pub kind: RepKind,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// Children in creation order.
    pub children: Vec<NodeId>,
    /// Invocation history, ordered by start time.
    pub invocations: Vec<Invocation>,
    /// Stack of activations in flight (innermost last).
    pub active: Vec<ActiveInvocation>,
    /// Recursion nesting depth (for [`RepKind::Recursion`] folding).
    pub recursion_depth: u32,
}

impl RepNode {
    /// Total algorithmic steps across all invocations.
    pub fn total_steps(&self) -> u64 {
        self.invocations.iter().map(|i| i.costs.steps()).sum()
    }

    /// Inputs accessed directly by any invocation.
    pub fn accessed_inputs(&self) -> Vec<InputId> {
        let mut out: Vec<InputId> = self
            .invocations
            .iter()
            .flat_map(|i| i.inputs.keys().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The innermost activation, if the repetition is running.
    pub fn current(&self) -> Option<&ActiveInvocation> {
        self.active.last()
    }

    /// Mutable innermost activation.
    pub fn current_mut(&mut self) -> Option<&mut ActiveInvocation> {
        self.active.last_mut()
    }
}

/// The repetition tree for one guest thread (jay is single-threaded, so
/// one per run).
#[derive(Debug, Clone, PartialEq)]
pub struct RepTree {
    nodes: Vec<RepNode>,
}

impl RepTree {
    /// Creates a tree containing only the root node, with an active root
    /// invocation covering the whole run.
    pub fn new() -> Self {
        let mut tree = RepTree {
            nodes: vec![RepNode {
                id: NodeId(0),
                kind: RepKind::Root,
                parent: None,
                children: Vec::new(),
                invocations: Vec::new(),
                active: Vec::new(),
                recursion_depth: 0,
            }],
        };
        tree.start_invocation(NodeId(0), None);
        tree
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[RepNode] {
        &self.nodes
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &RepNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut RepNode {
        &mut self.nodes[id.index()]
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Finds or creates the child of `parent` representing `kind`.
    pub fn get_or_create_child(&mut self, parent: NodeId, kind: RepKind) -> NodeId {
        if let Some(&c) = self.nodes[parent.index()]
            .children
            .iter()
            .find(|&&c| self.nodes[c.index()].kind == kind)
        {
            return c;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(RepNode {
            id,
            kind,
            parent: Some(parent),
            children: Vec::new(),
            invocations: Vec::new(),
            active: Vec::new(),
            recursion_depth: 0,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Walks from `from` to the root looking for a recursion node for
    /// `method` (the paper's `tree.findOnPathToRoot`).
    pub fn find_on_path_to_root(&self, from: NodeId, method: FuncId) -> Option<NodeId> {
        let mut cur = Some(from);
        while let Some(id) = cur {
            let node = &self.nodes[id.index()];
            if node.kind == RepKind::Recursion(method) {
                return Some(id);
            }
            cur = node.parent;
        }
        None
    }

    /// The chain of node ids from `from` up to and including the root.
    pub fn path_to_root(&self, from: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = Some(from);
        while let Some(id) = cur {
            out.push(id);
            cur = self.nodes[id.index()].parent;
        }
        out
    }

    /// The ordinal of `node`'s innermost active invocation (used for
    /// parent links).
    pub fn current_ordinal(&self, node: NodeId) -> Option<usize> {
        self.nodes[node.index()].active.last().map(|a| a.ordinal)
    }

    /// Starts an invocation of `node`, reserving its ordinal immediately.
    /// Returns the ordinal.
    pub fn start_invocation(&mut self, node: NodeId, parent: Option<(NodeId, usize)>) -> usize {
        let n = &mut self.nodes[node.index()];
        let ordinal = n.invocations.len();
        n.invocations.push(Invocation {
            parent,
            costs: CostMap::new(),
            inputs: BTreeMap::new(),
            finished: false,
        });
        n.active.push(ActiveInvocation {
            ordinal,
            costs: CostMap::new(),
            inputs: BTreeMap::new(),
            open_input: None,
        });
        ordinal
    }

    /// Finalizes the innermost activation of `node`, writing it into the
    /// history slot reserved at start. Returns its ordinal.
    ///
    /// # Panics
    ///
    /// Panics when the node has no activation in flight (the VM
    /// guarantees balanced entry/exit events).
    pub fn finalize_invocation(&mut self, node: NodeId) -> usize {
        let n = &mut self.nodes[node.index()];
        let active = n.active.pop().expect("an invocation is active");
        let slot = &mut n.invocations[active.ordinal];
        slot.costs = active.costs;
        slot.inputs = active
            .inputs
            .into_iter()
            .map(|(id, obs)| {
                (
                    id,
                    InputObservation {
                        first_size: obs.first_size,
                        exit_size: obs.exit_size,
                        max_size: obs.max_size,
                    },
                )
            })
            .collect();
        slot.finished = true;
        active.ordinal
    }

    /// Finalizes every activation still in flight anywhere in the tree
    /// (used at end of run and after aborted runs).
    pub fn finalize_all(&mut self) {
        for i in 0..self.nodes.len() {
            while !self.nodes[i].active.is_empty() {
                self.finalize_invocation(NodeId(i as u32));
            }
        }
    }
}

impl Default for RepTree {
    fn default() -> Self {
        RepTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostKey;

    #[test]
    fn new_tree_has_active_root() {
        let tree = RepTree::new();
        assert_eq!(tree.len(), 1);
        assert!(tree.node(tree.root()).current().is_some());
        assert!(tree.is_empty());
    }

    #[test]
    fn get_or_create_child_is_idempotent() {
        let mut tree = RepTree::new();
        let a = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(0)));
        let b = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(0)));
        let c = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(1)));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(tree.node(tree.root()).children.len(), 2);
    }

    #[test]
    fn find_on_path_to_root_sees_ancestors_only() {
        let mut tree = RepTree::new();
        let rec = tree.get_or_create_child(tree.root(), RepKind::Recursion(FuncId(7)));
        let inner = tree.get_or_create_child(rec, RepKind::Loop(LoopId(0)));
        let sibling = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(1)));
        assert_eq!(tree.find_on_path_to_root(inner, FuncId(7)), Some(rec));
        assert_eq!(tree.find_on_path_to_root(sibling, FuncId(7)), None);
    }

    #[test]
    fn invocation_lifecycle_records_history() {
        let mut tree = RepTree::new();
        let l = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(0)));
        let ord = tree.start_invocation(l, Some((tree.root(), 0)));
        assert_eq!(ord, 0);
        tree.node_mut(l)
            .current_mut()
            .expect("active")
            .costs
            .bump(CostKey::Step);
        let ordinal = tree.finalize_invocation(l);
        assert_eq!(ordinal, 0);
        assert_eq!(tree.node(l).invocations.len(), 1);
        assert_eq!(tree.node(l).total_steps(), 1);
        assert_eq!(tree.node(l).invocations[0].parent, Some((tree.root(), 0)));
        assert!(tree.node(l).invocations[0].finished);
    }

    #[test]
    fn reentrant_activations_stack_and_keep_ordinals() {
        // Simulates a loop inside a recursive method: the same node is
        // re-entered while still active.
        let mut tree = RepTree::new();
        let l = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(0)));
        let outer = tree.start_invocation(l, Some((tree.root(), 0)));
        tree.node_mut(l)
            .current_mut()
            .expect("outer active")
            .costs
            .add(CostKey::Step, 10);
        let inner = tree.start_invocation(l, Some((tree.root(), 0)));
        assert_ne!(outer, inner);
        tree.node_mut(l)
            .current_mut()
            .expect("inner active")
            .costs
            .add(CostKey::Step, 3);
        // Inner finishes first but keeps its own ordinal.
        assert_eq!(tree.finalize_invocation(l), inner);
        assert_eq!(tree.finalize_invocation(l), outer);
        assert_eq!(tree.node(l).invocations[outer].costs.steps(), 10);
        assert_eq!(tree.node(l).invocations[inner].costs.steps(), 3);
    }

    #[test]
    fn finalize_all_closes_everything() {
        let mut tree = RepTree::new();
        let l = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(0)));
        tree.start_invocation(l, None);
        tree.start_invocation(l, None);
        tree.finalize_all();
        assert!(tree.node(l).active.is_empty());
        assert!(tree.node(tree.root()).active.is_empty());
        assert!(tree.node(l).invocations.iter().all(|i| i.finished));
    }

    #[test]
    fn path_to_root_orders_innermost_first() {
        let mut tree = RepTree::new();
        let a = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(0)));
        let b = tree.get_or_create_child(a, RepKind::Loop(LoopId(1)));
        let path = tree.path_to_root(b);
        assert_eq!(path, vec![b, a, tree.root()]);
    }

    #[test]
    fn current_ordinal_tracks_innermost() {
        let mut tree = RepTree::new();
        let l = tree.get_or_create_child(tree.root(), RepKind::Loop(LoopId(0)));
        assert_eq!(tree.current_ordinal(l), None);
        tree.start_invocation(l, None);
        assert_eq!(tree.current_ordinal(l), Some(0));
        tree.start_invocation(l, None);
        assert_eq!(tree.current_ordinal(l), Some(1));
        tree.finalize_invocation(l);
        assert_eq!(tree.current_ordinal(l), Some(0));
    }
}
