//! One-call convenience: compile, instrument, execute, and profile a jay
//! source program — or record its event trace once and profile the
//! recording as many times as needed ([`record_source`],
//! [`profile_trace`]).

use std::fmt;

use algoprof_trace::{read_header, TraceError, TraceHeader, TraceRecorder, TraceReplayer};
use algoprof_vm::{compile, CompileError, InstrumentOptions, Interp, RuntimeError, Tee};

use crate::profile::{AlgorithmicProfile, ProfileSet};
use crate::profiler::{AlgoProf, AlgoProfOptions};

/// Why [`profile_source`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The guest program did not compile.
    Compile(CompileError),
    /// The guest program failed at run time.
    Runtime(RuntimeError),
    /// A recorded trace could not be decoded.
    Trace(TraceError),
    /// A program or trace file could not be read, or an output file
    /// could not be written (the message carries the path and OS error).
    Io(String),
}

impl ProfileError {
    /// Wraps a filesystem failure on `path` (CLI and sweep callers read
    /// programs/traces and write reports through this constructor, so
    /// every exit path speaks `ProfileError`).
    pub fn io(verb: &str, path: &str, e: &std::io::Error) -> ProfileError {
        ProfileError::Io(format!("cannot {verb} {path}: {e}"))
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Compile(e) => write!(f, "guest compilation failed: {e}"),
            ProfileError::Runtime(e) => write!(f, "guest execution failed: {e}"),
            ProfileError::Trace(e) => write!(f, "trace replay failed: {e}"),
            ProfileError::Io(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Compile(e) => Some(e),
            ProfileError::Runtime(e) => Some(e),
            ProfileError::Trace(e) => Some(e),
            ProfileError::Io(_) => None,
        }
    }
}

impl From<CompileError> for ProfileError {
    fn from(e: CompileError) -> Self {
        ProfileError::Compile(e)
    }
}

impl From<RuntimeError> for ProfileError {
    fn from(e: RuntimeError) -> Self {
        ProfileError::Runtime(e)
    }
}

impl From<TraceError> for ProfileError {
    fn from(e: TraceError) -> Self {
        ProfileError::Trace(e)
    }
}

/// Compiles `source`, instruments it with the default options, runs it,
/// and returns its algorithmic profile.
///
/// # Errors
///
/// Returns [`ProfileError`] when the guest program fails to compile or
/// its execution raises an uncaught error.
///
/// # Example
///
/// ```
/// let profile = algoprof::profile_source(
///     "class Main { static int main() {
///          int s = 0;
///          for (int i = 0; i < 5; i = i + 1) { s = s + i; }
///          return s;
///      } }",
/// )?;
/// assert_eq!(profile.algorithms().len(), 2);
/// # Ok::<(), algoprof::ProfileError>(())
/// ```
pub fn profile_source(source: &str) -> Result<AlgorithmicProfile, ProfileError> {
    profile_source_with(
        source,
        &InstrumentOptions::default(),
        AlgoProfOptions::default(),
        &[],
    )
}

/// Like [`profile_source`] with explicit instrumentation and profiler
/// options plus guest input values.
///
/// # Errors
///
/// Same as [`profile_source`].
pub fn profile_source_with(
    source: &str,
    instrument: &InstrumentOptions,
    options: AlgoProfOptions,
    input: &[i64],
) -> Result<AlgorithmicProfile, ProfileError> {
    let program = compile(source)?.instrument(instrument).fuse_default();
    let mut profiler = AlgoProf::with_options(options);
    Interp::new(&program)
        .with_input(input.to_vec())
        .run(&mut profiler)?;
    Ok(profiler.finish(&program))
}

/// Like [`profile_source_with`], but returns one profile per guest
/// thread ([`ProfileSet`]) instead of only the main thread's —
/// single-threaded programs yield a one-element set.
///
/// # Errors
///
/// Same as [`profile_source`].
pub fn profile_source_set_with(
    source: &str,
    instrument: &InstrumentOptions,
    options: AlgoProfOptions,
    input: &[i64],
) -> Result<ProfileSet, ProfileError> {
    let program = compile(source)?.instrument(instrument).fuse_default();
    let mut profiler = AlgoProf::with_options(options);
    Interp::new(&program)
        .with_input(input.to_vec())
        .run(&mut profiler)?;
    Ok(profiler.finish_set(&program))
}

/// Compiles `source`, instruments it with the default options, executes
/// it once, and returns the recorded event trace. Feed the bytes to
/// [`profile_trace`] (any number of times) to analyze without
/// re-executing the guest.
///
/// # Errors
///
/// Returns [`ProfileError`] when the guest fails to compile or its
/// execution raises an uncaught error.
pub fn record_source(source: &str) -> Result<Vec<u8>, ProfileError> {
    record_source_with(source, &InstrumentOptions::default(), &[])
}

/// Like [`record_source`] with explicit instrumentation options and
/// guest input values (both are embedded in the trace header, so the
/// recording stays self-contained).
///
/// # Errors
///
/// Same as [`record_source`].
pub fn record_source_with(
    source: &str,
    instrument: &InstrumentOptions,
    input: &[i64],
) -> Result<Vec<u8>, ProfileError> {
    let program = compile(source)?.instrument(instrument).fuse_default();
    let mut bytes = Vec::new();
    let mut recorder = TraceRecorder::new(&TraceHeader::new(source, instrument, input), &mut bytes);
    Interp::new(&program)
        .with_input(input.to_vec())
        .run(&mut recorder)?;
    recorder.finish().expect("writes to a Vec<u8> cannot fail");
    Ok(bytes)
}

/// Executes the guest once, producing its event trace *and* a live
/// profile from the same run: a [`Tee`] delivers every event to the
/// recorder first, then to an [`AlgoProf`] configured with `options`.
///
/// # Errors
///
/// Same as [`record_source`].
pub fn record_and_profile_source(
    source: &str,
    instrument: &InstrumentOptions,
    options: AlgoProfOptions,
    input: &[i64],
) -> Result<(Vec<u8>, AlgorithmicProfile), ProfileError> {
    let program = compile(source)?.instrument(instrument).fuse_default();
    let mut bytes = Vec::new();
    let mut sink = Tee::new(
        TraceRecorder::new(&TraceHeader::new(source, instrument, input), &mut bytes),
        AlgoProf::with_options(options),
    );
    Interp::new(&program)
        .with_input(input.to_vec())
        .run(&mut sink)?;
    let Tee {
        a: recorder,
        b: profiler,
    } = sink;
    recorder.finish().expect("writes to a Vec<u8> cannot fail");
    let profile = profiler.finish(&program);
    Ok((bytes, profile))
}

/// Profiles a recorded trace under the default [`AlgoProfOptions`]
/// without executing the guest.
///
/// # Errors
///
/// Returns [`ProfileError`] when the trace is malformed or its embedded
/// source no longer compiles.
pub fn profile_trace(trace: &[u8]) -> Result<AlgorithmicProfile, ProfileError> {
    profile_trace_with(trace, AlgoProfOptions::default())
}

/// Like [`profile_trace`] with explicit profiler options. The program is
/// recompiled from the source and instrumentation options embedded in
/// the trace header — compilation is deterministic, so every id in the
/// event stream resolves exactly as it did while recording, and the
/// resulting profile equals what a live run under `options` would have
/// produced.
///
/// # Errors
///
/// Same as [`profile_trace`].
pub fn profile_trace_with(
    trace: &[u8],
    options: AlgoProfOptions,
) -> Result<AlgorithmicProfile, ProfileError> {
    let (header, events) = read_header(trace)?;
    let program = compile(&header.source)?.instrument(&header.instrument);
    let mut profiler = AlgoProf::with_options(options);
    TraceReplayer::new().replay(&program, events, &mut profiler)?;
    Ok(profiler.finish(&program))
}

/// Like [`profile_trace_with`], but returns one profile per guest thread
/// recorded in the trace ([`ProfileSet`]).
///
/// # Errors
///
/// Same as [`profile_trace`].
pub fn profile_trace_set_with(
    trace: &[u8],
    options: AlgoProfOptions,
) -> Result<ProfileSet, ProfileError> {
    let (header, events) = read_header(trace)?;
    let program = compile(&header.source)?.instrument(&header.instrument);
    let mut profiler = AlgoProf::with_options(options);
    TraceReplayer::new().replay(&program, events, &mut profiler)?;
    Ok(profiler.finish_set(&program))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_source_smoke() {
        let p = profile_source(
            "class Main { static int main() { int s = 0; for (int i = 0; i < 3; i = i + 1) { s = s + 1; } return s; } }",
        )
        .expect("profiles");
        assert_eq!(p.algorithms().len(), 2);
    }

    #[test]
    fn compile_error_is_reported() {
        let e = profile_source("class Main {").unwrap_err();
        assert!(matches!(e, ProfileError::Compile(_)));
        assert!(e.to_string().contains("compilation"));
    }

    #[test]
    fn runtime_error_is_reported() {
        let e = profile_source("class Main { static int main() { throw 3; } }").unwrap_err();
        assert!(matches!(e, ProfileError::Runtime(_)));
    }

    const LOOP_SRC: &str = "class Main { static int main() {
        int s = 0;
        for (int i = 0; i < 6; i = i + 1) { s = s + i; }
        return s;
    } }";

    #[test]
    fn trace_profile_equals_live_profile() {
        let live = profile_source(LOOP_SRC).expect("profiles");
        let trace = record_source(LOOP_SRC).expect("records");
        let replayed = profile_trace(&trace).expect("replays");
        assert_eq!(live, replayed);
    }

    #[test]
    fn record_and_profile_matches_pure_recording() {
        let (trace, live) = record_and_profile_source(
            LOOP_SRC,
            &InstrumentOptions::default(),
            AlgoProfOptions::default(),
            &[],
        )
        .expect("records");
        assert_eq!(trace, record_source(LOOP_SRC).expect("records"));
        assert_eq!(live, profile_trace(&trace).expect("replays"));
    }

    #[test]
    fn trace_error_is_reported() {
        let e = profile_trace(b"not a trace").unwrap_err();
        assert!(matches!(e, ProfileError::Trace(_)));
        assert!(e.to_string().contains("trace"));
    }

    /// Two workers each build and traverse their own list while sharing a
    /// lock-guarded counter — exercises threads, locks, and tracked data
    /// structures at once.
    const THREADED_SRC: &str = "class Main { static int main() {
        Counter c = new Counter();
        int t1 = spawn work(c, 12);
        int t2 = spawn work(c, 18);
        int a = join t1;
        int b = join t2;
        return c.total;
    }
    static int work(Counter c, int n) {
        Node head = null;
        for (int i = 0; i < n; i = i + 1) {
            Node x = new Node();
            x.next = head;
            head = x;
        }
        Node cur = head;
        while (cur != null) {
            lock c;
            c.total = c.total + 1;
            unlock c;
            cur = cur.next;
        }
        return n;
    } }
    class Counter { int total; }
    class Node { Node next; }";

    #[test]
    fn threaded_trace_profile_equals_live_profile_under_every_criterion() {
        use crate::snapshot::EquivalenceCriterion;

        let trace = record_source(THREADED_SRC).expect("records");
        for criterion in [
            EquivalenceCriterion::AllElements,
            EquivalenceCriterion::SomeElements,
            EquivalenceCriterion::SameArray,
            EquivalenceCriterion::SameType,
        ] {
            let options = AlgoProfOptions {
                criterion,
                ..AlgoProfOptions::default()
            };
            let live =
                profile_source_set_with(THREADED_SRC, &InstrumentOptions::default(), options, &[])
                    .expect("profiles live");
            let replayed = profile_trace_set_with(&trace, options).expect("replays");
            assert_eq!(live.len(), 3, "main + two workers under {criterion:?}");
            assert_eq!(
                live, replayed,
                "per-thread profiles must match live under {criterion:?}"
            );
        }
    }
}
