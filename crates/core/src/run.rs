//! One-call convenience: compile, instrument, execute, and profile a jay
//! source program.

use std::fmt;

use algoprof_vm::{compile, CompileError, InstrumentOptions, Interp, RuntimeError};

use crate::profile::AlgorithmicProfile;
use crate::profiler::{AlgoProf, AlgoProfOptions};

/// Why [`profile_source`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The guest program did not compile.
    Compile(CompileError),
    /// The guest program failed at run time.
    Runtime(RuntimeError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Compile(e) => write!(f, "guest compilation failed: {e}"),
            ProfileError::Runtime(e) => write!(f, "guest execution failed: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Compile(e) => Some(e),
            ProfileError::Runtime(e) => Some(e),
        }
    }
}

impl From<CompileError> for ProfileError {
    fn from(e: CompileError) -> Self {
        ProfileError::Compile(e)
    }
}

impl From<RuntimeError> for ProfileError {
    fn from(e: RuntimeError) -> Self {
        ProfileError::Runtime(e)
    }
}

/// Compiles `source`, instruments it with the default options, runs it,
/// and returns its algorithmic profile.
///
/// # Errors
///
/// Returns [`ProfileError`] when the guest program fails to compile or
/// its execution raises an uncaught error.
///
/// # Example
///
/// ```
/// let profile = algoprof::profile_source(
///     "class Main { static int main() {
///          int s = 0;
///          for (int i = 0; i < 5; i = i + 1) { s = s + i; }
///          return s;
///      } }",
/// )?;
/// assert_eq!(profile.algorithms().len(), 2);
/// # Ok::<(), algoprof::ProfileError>(())
/// ```
pub fn profile_source(source: &str) -> Result<AlgorithmicProfile, ProfileError> {
    profile_source_with(
        source,
        &InstrumentOptions::default(),
        AlgoProfOptions::default(),
        &[],
    )
}

/// Like [`profile_source`] with explicit instrumentation and profiler
/// options plus guest input values.
///
/// # Errors
///
/// Same as [`profile_source`].
pub fn profile_source_with(
    source: &str,
    instrument: &InstrumentOptions,
    options: AlgoProfOptions,
    input: &[i64],
) -> Result<AlgorithmicProfile, ProfileError> {
    let program = compile(source)?.instrument(instrument);
    let mut profiler = AlgoProf::with_options(options);
    Interp::new(&program)
        .with_input(input.to_vec())
        .run(&mut profiler)?;
    Ok(profiler.finish(&program))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_source_smoke() {
        let p = profile_source(
            "class Main { static int main() { int s = 0; for (int i = 0; i < 3; i = i + 1) { s = s + 1; } return s; } }",
        )
        .expect("profiles");
        assert_eq!(p.algorithms().len(), 2);
    }

    #[test]
    fn compile_error_is_reported() {
        let e = profile_source("class Main {").unwrap_err();
        assert!(matches!(e, ProfileError::Compile(_)));
        assert!(e.to_string().contains("compilation"));
    }

    #[test]
    fn runtime_error_is_reported() {
        let e = profile_source("class Main { static int main() { throw 3; } }").unwrap_err();
        assert!(matches!(e, ProfileError::Runtime(_)));
    }
}
