//! Structure snapshots and size measurement (paper §2.4 and §3.4).
//!
//! Each time an algorithm accesses a data structure, AlgoProf takes a
//! *snapshot*: the set of elements reachable from the accessed reference.
//! Snapshots serve two purposes — *identity* (deciding via an equivalence
//! criterion whether two snapshots are views of the same evolving input)
//! and *size* (object counts for recursive structures, capacity or
//! unique-element counts for arrays).

use std::collections::{BTreeMap, BTreeSet};

use algoprof_vm::bytecode::ElemKind;
use algoprof_vm::{ArrRef, ClassId, CompiledProgram, Heap, ObjRef, Value};

/// An element key used for snapshot-equivalence tests.
///
/// Heap references are globally unique identities (the guest heap never
/// reuses slots). Primitive array elements are identified by value —
/// exactly the paper's scheme, including its acknowledged weakness for
/// arrays of small primitive types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemKey {
    /// An object.
    Obj(ObjRef),
    /// An array (including the snapshot's own root array).
    Arr(ArrRef),
    /// A primitive element value.
    Int(i64),
}

/// How the size of an array input is quantified (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArraySizeStrategy {
    /// The number of elements the array can store (all levels for
    /// multi-dimensional arrays).
    #[default]
    Capacity,
    /// The number of unique elements (non-null references, or distinct
    /// primitive values) — approximates the used fraction of
    /// over-allocated arrays but cannot see duplicates.
    UniqueElements,
}

/// How two snapshots are judged to be views of the same input
/// (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EquivalenceCriterion {
    /// Equivalent when the element sets are identical.
    AllElements,
    /// Equivalent when the element sets overlap (AlgoProf's default; it
    /// tolerates structure evolution, partial traversals, and resized
    /// arrays).
    #[default]
    SomeElements,
    /// Arrays only: equivalent when the container array object is
    /// identical.
    SameArray,
    /// Equivalent when the snapshots have the same type.
    SameType,
}

/// What kind of structure a snapshot captured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A recursive data structure (set of linked objects).
    Structure {
        /// Classes of the objects seen, with per-class counts.
        classes: BTreeMap<ClassId, usize>,
    },
    /// A (possibly multi-dimensional) array.
    Array {
        /// Element kind of the root array.
        elem: ElemKind,
    },
}

/// A snapshot of one structure or array at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Identity keys (see [`ElemKey`]).
    pub keys: BTreeSet<ElemKey>,
    /// Structure vs array, with type detail.
    pub kind: SnapshotKind,
    /// Object count for structures; capacity for arrays.
    pub size: usize,
    /// Unique-element size for arrays (equals `size` for structures).
    pub unique_size: usize,
    /// Non-null references traversed inside arrays belonging to the
    /// structure (the paper's separate reference count).
    pub refs_traversed: usize,
}

impl Snapshot {
    /// Size under the given array strategy (structures ignore it).
    pub fn size_under(&self, strategy: ArraySizeStrategy) -> usize {
        match (&self.kind, strategy) {
            (SnapshotKind::Array { .. }, ArraySizeStrategy::UniqueElements) => self.unique_size,
            _ => self.size,
        }
    }

    /// The reference keys (objects and arrays) of this snapshot —
    /// globally unique identities usable in reverse maps.
    pub fn ref_keys(&self) -> impl Iterator<Item = ElemKey> + '_ {
        self.keys
            .iter()
            .copied()
            .filter(|k| !matches!(k, ElemKey::Int(_)))
    }

    /// The primitive value keys of this snapshot.
    pub fn int_keys(&self) -> impl Iterator<Item = i64> + '_ {
        self.keys.iter().filter_map(|k| match k {
            ElemKey::Int(v) => Some(*v),
            _ => None,
        })
    }

    /// Whether two snapshots are equivalent under `criterion`.
    pub fn equivalent(&self, other: &Snapshot, criterion: EquivalenceCriterion) -> bool {
        match criterion {
            EquivalenceCriterion::AllElements => self.keys == other.keys,
            EquivalenceCriterion::SomeElements => {
                self.keys.intersection(&other.keys).next().is_some()
            }
            EquivalenceCriterion::SameArray => {
                let root = |s: &Snapshot| {
                    s.keys.iter().find_map(|k| match k {
                        ElemKey::Arr(a) => Some(*a),
                        _ => None,
                    })
                };
                matches!(
                    (&self.kind, &other.kind),
                    (SnapshotKind::Array { .. }, SnapshotKind::Array { .. })
                ) && root(self).is_some()
                    && root(self) == root(other)
            }
            EquivalenceCriterion::SameType => match (&self.kind, &other.kind) {
                (
                    SnapshotKind::Structure { classes: a },
                    SnapshotKind::Structure { classes: b },
                ) => a.keys().next() == b.keys().next() || a.keys().any(|k| b.contains_key(k)),
                (SnapshotKind::Array { elem: a }, SnapshotKind::Array { elem: b }) => a == b,
                _ => false,
            },
        }
    }
}

/// How incremental (write-versioned) snapshot caching behaves.
///
/// The guest heap stamps every object and array with the mutation epoch
/// of its last write (see `algoprof_vm::Heap::epoch`). A cached
/// [`Measurement`] whose traversed containers are all unmodified since
/// it was taken is still exact, so the traversal can be skipped (or
/// partially redone when only a few containers changed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IncrementalMode {
    /// Always re-traverse (the paper's original behaviour).
    Disabled,
    /// Reuse cached measurements validated by heap write-versioning.
    #[default]
    Enabled,
    /// Run the incremental path *and* a from-scratch traversal, and
    /// assert the snapshots are equal. Used by tests and benchmarks to
    /// prove the optimization exact.
    Differential,
}

/// Counters describing how much snapshot work a profiling run did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// From-scratch traversals performed.
    pub full_walks: u64,
    /// Measurements answered entirely from cache.
    pub cache_hits: u64,
    /// Measurements answered by re-scanning only modified containers.
    pub partial_redos: u64,
    /// Objects visited by traversals (full walks and partial redos).
    pub objects_traversed: u64,
    /// Arrays visited by traversals.
    pub arrays_traversed: u64,
    /// Array elements examined by traversals.
    pub elements_scanned: u64,
}

impl SnapshotStats {
    /// Total traversal effort: containers visited plus elements scanned.
    pub fn traversal_work(&self) -> u64 {
        self.objects_traversed + self.arrays_traversed + self.elements_scanned
    }
}

/// One container (object or array) visited by a traversal, with the
/// outgoing references the traversal followed out of it. Stored sorted
/// so a later re-scan can diff the edge multiset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerRecord {
    /// The container itself.
    pub key: ElemKey,
    /// Non-null references the traversal followed out of this container
    /// (recursive fields for objects, elements for ref arrays), sorted.
    pub children: Vec<ElemKey>,
    /// Non-null references counted inside this container when it is an
    /// array (contributes to [`Snapshot::refs_traversed`]).
    pub array_refs: usize,
}

/// A [`Snapshot`] plus everything needed to decide later whether a
/// traversal from the same root can reuse it: the root, the heap epoch
/// it reflects, and the containers whose mutation would invalidate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// The snapshot taken.
    pub snapshot: Snapshot,
    /// The reference the traversal started from.
    pub root: ElemKey,
    /// Heap epoch this measurement reflects: it is exact as long as no
    /// container was stamped after this epoch.
    pub epoch: u64,
    /// Containers whose mutation invalidates the snapshot, sorted by
    /// key. For structures these are the visited objects and ref-kind
    /// arrays (primitive arrays contribute only their identity, which
    /// element stores cannot change); for arrays, every visited array.
    pub containers: Vec<ContainerRecord>,
    /// Position in the heap's array write log when this measurement was
    /// taken (see `Heap::log_pos`). [`try_partial_array`] replays the
    /// entries journalled since then instead of re-scanning elements.
    /// `u64::MAX` marks a measurement with no usable log window.
    pub log_pos: u64,
    /// Multiset of element-derived keys (`Int` values and `Obj`
    /// references) of an array measurement, so the write-log replay can
    /// drop a key exactly when its last occurrence is overwritten.
    /// Empty for structure measurements.
    pub elem_counts: BTreeMap<ElemKey, usize>,
}

impl Measurement {
    /// Wraps a bare snapshot as a never-reusable measurement (epoch 0
    /// predates every allocation, and the container set is left empty
    /// only when the snapshot has no reference keys). Intended for tests
    /// and for synthetic registry population.
    pub fn detached(snapshot: Snapshot) -> Measurement {
        let root = snapshot.ref_keys().next().unwrap_or(ElemKey::Int(0));
        let containers = snapshot
            .ref_keys()
            .map(|key| ContainerRecord {
                key,
                children: Vec::new(),
                array_refs: 0,
            })
            .collect();
        Measurement {
            snapshot,
            root,
            epoch: 0,
            containers,
            log_pos: u64::MAX,
            elem_counts: BTreeMap::new(),
        }
    }

    /// Finds the container record for `key`, if the traversal visited it.
    pub fn container(&self, key: ElemKey) -> Option<&ContainerRecord> {
        self.containers
            .binary_search_by(|c| c.key.cmp(&key))
            .ok()
            .map(|i| &self.containers[i])
    }

    /// Whether every container is unmodified since `self.epoch` — i.e.
    /// a traversal from `self.root` would reproduce `self.snapshot`
    /// exactly.
    pub fn still_exact(&self, heap: &Heap) -> bool {
        self.containers.iter().all(|c| match c.key {
            ElemKey::Obj(o) => heap.object_stamp(o) <= self.epoch,
            ElemKey::Arr(a) => heap.array_stamp(a) <= self.epoch,
            ElemKey::Int(_) => true,
        })
    }
}

/// The sorted outgoing-edge multiset of one container, as the structure
/// traversal sees it: recursive-field references for objects, elements
/// for ref arrays (with the non-null count), nothing for primitive
/// arrays.
fn scan_container(program: &CompiledProgram, heap: &Heap, key: ElemKey) -> (Vec<ElemKey>, usize) {
    let mut children = Vec::new();
    let mut array_refs = 0usize;
    match key {
        ElemKey::Obj(o) => {
            let obj = heap.object(o);
            let fields = heap.fields(o);
            for (slot, &fid) in program.class(obj.class).field_layout.iter().enumerate() {
                if program.field(fid).is_recursive {
                    match fields[slot] {
                        Value::Obj(c) => children.push(ElemKey::Obj(c)),
                        Value::Arr(c) => children.push(ElemKey::Arr(c)),
                        _ => {}
                    }
                }
            }
        }
        ElemKey::Arr(a) => {
            let arr = heap.array(a);
            if arr.elem == ElemKind::Ref {
                for &e in &arr.elems {
                    match e {
                        Value::Obj(c) => {
                            children.push(ElemKey::Obj(c));
                            array_refs += 1;
                        }
                        Value::Arr(c) => {
                            children.push(ElemKey::Arr(c));
                            array_refs += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        ElemKey::Int(_) => {}
    }
    children.sort_unstable();
    (children, array_refs)
}

/// Takes a snapshot of the recursive structure reachable from `start`
/// (an object of a recursive class), following recursive fields and the
/// arrays they hold.
pub fn snapshot_structure(program: &CompiledProgram, heap: &Heap, start: ObjRef) -> Snapshot {
    measure_structure(program, heap, start, &mut SnapshotStats::default()).snapshot
}

/// Like [`snapshot_structure`], but also records the traversal's
/// containers and epoch for later incremental reuse, and counts the
/// work into `stats`.
pub fn measure_structure(
    program: &CompiledProgram,
    heap: &Heap,
    start: ObjRef,
    stats: &mut SnapshotStats,
) -> Measurement {
    let t = heap.traverse_structure(program, Value::Obj(start));
    let mut keys = BTreeSet::new();
    let mut classes: BTreeMap<ClassId, usize> = BTreeMap::new();
    let mut containers = Vec::with_capacity(t.objects.len() + t.arrays.len());
    for &o in &t.objects {
        keys.insert(ElemKey::Obj(o));
        *classes.entry(heap.object(o).class).or_insert(0) += 1;
        let (children, _) = scan_container(program, heap, ElemKey::Obj(o));
        containers.push(ContainerRecord {
            key: ElemKey::Obj(o),
            children,
            array_refs: 0,
        });
    }
    for &a in &t.arrays {
        keys.insert(ElemKey::Arr(a));
        stats.elements_scanned += heap.array(a).elems.len() as u64;
        // Primitive arrays contribute only their identity key: element
        // stores cannot change a structure snapshot, so they are not
        // invalidating containers.
        if heap.array(a).elem == ElemKind::Ref {
            let (children, array_refs) = scan_container(program, heap, ElemKey::Arr(a));
            containers.push(ContainerRecord {
                key: ElemKey::Arr(a),
                children,
                array_refs,
            });
        }
    }
    containers.sort_unstable_by_key(|c| c.key);
    stats.full_walks += 1;
    stats.objects_traversed += t.objects.len() as u64;
    stats.arrays_traversed += t.arrays.len() as u64;
    let size = t.objects.len();
    Measurement {
        snapshot: Snapshot {
            keys,
            kind: SnapshotKind::Structure { classes },
            size,
            unique_size: size,
            refs_traversed: t.refs_traversed,
        },
        root: ElemKey::Obj(start),
        epoch: heap.epoch(),
        containers,
        log_pos: heap.log_pos(),
        elem_counts: BTreeMap::new(),
    }
}

/// Takes a snapshot of `arr`, recursing into nested arrays (a
/// 2-dimensional triangular array `{[0],[1],[2]}` has capacity
/// `3 + (0+1+2)`, mirroring the algorithmic-step count of the analogous
/// loop nest — paper §3.4).
pub fn snapshot_array(heap: &Heap, arr: ArrRef) -> Snapshot {
    measure_array(heap, arr, &mut SnapshotStats::default()).snapshot
}

/// Like [`snapshot_array`], but also records the traversal's containers
/// and epoch for later incremental reuse, and counts the work into
/// `stats`.
pub fn measure_array(heap: &Heap, arr: ArrRef, stats: &mut SnapshotStats) -> Measurement {
    let mut keys = BTreeSet::new();
    let mut capacity = 0usize;
    let mut unique = BTreeSet::new();
    let mut refs_traversed = 0usize;
    let root_elem = heap.array(arr).elem;
    let mut containers = Vec::new();
    let mut elem_counts: BTreeMap<ElemKey, usize> = BTreeMap::new();

    let mut queue = vec![arr];
    let mut seen = BTreeSet::new();
    while let Some(a) = queue.pop() {
        if !seen.insert(a) {
            continue;
        }
        keys.insert(ElemKey::Arr(a));
        let array = heap.array(a);
        capacity += array.elems.len();
        stats.elements_scanned += array.elems.len() as u64;
        let mut children = Vec::new();
        let mut array_refs = 0usize;
        match array.elem {
            ElemKind::Int | ElemKind::Bool => {
                for &e in &array.elems {
                    let v = match e {
                        Value::Int(v) => v,
                        Value::Bool(b) => b as i64,
                        _ => continue,
                    };
                    keys.insert(ElemKey::Int(v));
                    unique.insert(ElemKey::Int(v));
                    *elem_counts.entry(ElemKey::Int(v)).or_insert(0) += 1;
                }
            }
            ElemKind::Ref => {
                for &e in &array.elems {
                    match e {
                        Value::Obj(o) => {
                            keys.insert(ElemKey::Obj(o));
                            unique.insert(ElemKey::Obj(o));
                            *elem_counts.entry(ElemKey::Obj(o)).or_insert(0) += 1;
                            refs_traversed += 1;
                            stats.objects_traversed += 1;
                            children.push(ElemKey::Obj(o));
                            array_refs += 1;
                        }
                        Value::Arr(child) => {
                            unique.insert(ElemKey::Arr(child));
                            refs_traversed += 1;
                            children.push(ElemKey::Arr(child));
                            array_refs += 1;
                            queue.push(child);
                        }
                        _ => {}
                    }
                }
            }
        }
        children.sort_unstable();
        containers.push(ContainerRecord {
            key: ElemKey::Arr(a),
            children,
            array_refs,
        });
    }
    containers.sort_unstable_by_key(|c| c.key);
    stats.full_walks += 1;
    stats.arrays_traversed += containers.len() as u64;

    Measurement {
        snapshot: Snapshot {
            keys,
            kind: SnapshotKind::Array { elem: root_elem },
            size: capacity,
            unique_size: unique.len(),
            refs_traversed,
        },
        root: ElemKey::Arr(arr),
        epoch: heap.epoch(),
        containers,
        log_pos: heap.log_pos(),
        elem_counts,
    }
}

/// Multiset difference of two sorted child lists: `Some(additions)`
/// when `new` is a superset of `old`, `None` when any old child was
/// removed (the cached reachable set may have shrunk).
fn added_children(old: &[ElemKey], new: &[ElemKey]) -> Option<Vec<ElemKey>> {
    let mut additions = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Greater => {
                additions.push(new[j]);
                j += 1;
            }
            std::cmp::Ordering::Less => return None,
        }
    }
    if i < old.len() {
        return None;
    }
    additions.extend_from_slice(&new[j..]);
    Some(additions)
}

/// Attempts to bring a stale *structure* measurement up to date by
/// re-scanning only the containers stamped after `m.epoch` and
/// traversing just the newly linked region.
///
/// Sound only when modified containers gained edges without losing any:
/// unmodified containers keep their edge sets, so nothing can have
/// fallen out of the reachable set, and everything newly reachable is
/// behind an added edge. Returns the ref keys that joined the snapshot
/// (for reverse-map maintenance), or `None` when an edge was removed or
/// the measurement is not a structure — callers must then fall back to
/// a full walk.
pub fn try_partial_structure(
    program: &CompiledProgram,
    heap: &Heap,
    m: &mut Measurement,
    stats: &mut SnapshotStats,
) -> Option<Vec<ElemKey>> {
    if !matches!(m.snapshot.kind, SnapshotKind::Structure { .. }) {
        return None;
    }

    // Re-scan every modified container, diffing its edge multiset.
    let mut frontier: Vec<ElemKey> = Vec::new();
    let mut refs_delta = 0isize;
    for c in &mut m.containers {
        let modified = match c.key {
            ElemKey::Obj(o) => heap.object_stamp(o) > m.epoch,
            ElemKey::Arr(a) => heap.array_stamp(a) > m.epoch,
            ElemKey::Int(_) => false,
        };
        if !modified {
            continue;
        }
        let (new_children, new_refs) = scan_container(program, heap, c.key);
        frontier.extend(added_children(&c.children, &new_children)?);
        match c.key {
            ElemKey::Obj(_) => stats.objects_traversed += 1,
            ElemKey::Arr(a) => {
                stats.arrays_traversed += 1;
                stats.elements_scanned += heap.array(a).elems.len() as u64;
            }
            ElemKey::Int(_) => {}
        }
        refs_delta += new_refs as isize - c.array_refs as isize;
        c.children = new_children;
        c.array_refs = new_refs;
    }

    // Traverse the newly linked region, mirroring the membership rules
    // of `Heap::traverse_structure` exactly.
    let mut added_keys = Vec::new();
    let mut new_containers = Vec::new();
    while let Some(key) = frontier.pop() {
        if m.snapshot.keys.contains(&key) {
            continue;
        }
        match key {
            ElemKey::Obj(o) => {
                if !program.class(heap.object(o).class).is_recursive {
                    continue;
                }
                m.snapshot.keys.insert(key);
                m.snapshot.size += 1;
                if let SnapshotKind::Structure { classes } = &mut m.snapshot.kind {
                    *classes.entry(heap.object(o).class).or_insert(0) += 1;
                }
                stats.objects_traversed += 1;
                let (children, _) = scan_container(program, heap, key);
                frontier.extend_from_slice(&children);
                new_containers.push(ContainerRecord {
                    key,
                    children,
                    array_refs: 0,
                });
                added_keys.push(key);
            }
            ElemKey::Arr(a) => {
                m.snapshot.keys.insert(key);
                stats.arrays_traversed += 1;
                stats.elements_scanned += heap.array(a).elems.len() as u64;
                if heap.array(a).elem == ElemKind::Ref {
                    let (children, array_refs) = scan_container(program, heap, key);
                    refs_delta += array_refs as isize;
                    frontier.extend_from_slice(&children);
                    new_containers.push(ContainerRecord {
                        key,
                        children,
                        array_refs,
                    });
                }
                added_keys.push(key);
            }
            ElemKey::Int(_) => {}
        }
    }

    m.containers.extend(new_containers);
    m.containers.sort_unstable_by_key(|c| c.key);
    m.snapshot.refs_traversed = (m.snapshot.refs_traversed as isize + refs_delta) as usize;
    m.snapshot.unique_size = m.snapshot.size;
    m.epoch = heap.epoch();
    stats.partial_redos += 1;
    Some(added_keys)
}

/// The snapshot key an array element contributes, if any. `Arr` values
/// are deliberately absent: a nested-array store changes the container
/// set and must force a full walk, so the replay bails before asking.
fn elem_key_of(v: Value) -> Option<ElemKey> {
    match v {
        Value::Int(n) => Some(ElemKey::Int(n)),
        Value::Bool(b) => Some(ElemKey::Int(b as i64)),
        Value::Obj(o) => Some(ElemKey::Obj(o)),
        _ => None,
    }
}

/// Attempts to bring a stale *array* measurement up to date by
/// replaying the heap's array write log instead of re-scanning every
/// element.
///
/// Sound because `Heap::set_elem` journals every element store since
/// `m.log_pos` (and raw `array_mut` access truncates the journal,
/// making [`Heap::array_writes_since`] return `None` here), so each
/// logged `(old, new)` pair updates the element-key multiset exactly
/// as a re-scan would observe. Bails with `None` — caller falls back
/// to a full walk — when the log window is gone or when any journalled
/// write on a traversed container stores or removes a nested array
/// (that changes which containers the traversal must visit).
///
/// Container `children`/`array_refs` records are *not* maintained
/// here: the array path never consults them (replay revalidates via
/// the log and the stamps alone).
pub fn try_partial_array(
    heap: &Heap,
    m: &mut Measurement,
    stats: &mut SnapshotStats,
) -> Option<()> {
    if !matches!(m.snapshot.kind, SnapshotKind::Array { .. }) {
        return None;
    }
    let entries = heap.array_writes_since(m.log_pos)?;
    if entries.iter().any(|w| {
        m.container(ElemKey::Arr(w.arr)).is_some()
            && (matches!(w.old, Value::Arr(_)) || matches!(w.new, Value::Arr(_)))
    }) {
        return None;
    }
    for &w in entries {
        if m.container(ElemKey::Arr(w.arr)).is_none() {
            continue;
        }
        stats.elements_scanned += 1;
        if let Some(k) = elem_key_of(w.old) {
            let count = m
                .elem_counts
                .get_mut(&k)
                .expect("journalled overwrite of an untracked element key");
            *count -= 1;
            if *count == 0 {
                m.elem_counts.remove(&k);
                m.snapshot.keys.remove(&k);
                m.snapshot.unique_size -= 1;
            }
            if matches!(k, ElemKey::Obj(_)) {
                m.snapshot.refs_traversed -= 1;
            }
        }
        if let Some(k) = elem_key_of(w.new) {
            let count = m.elem_counts.entry(k).or_insert(0);
            *count += 1;
            if *count == 1 {
                m.snapshot.keys.insert(k);
                m.snapshot.unique_size += 1;
            }
            if matches!(k, ElemKey::Obj(_)) {
                m.snapshot.refs_traversed += 1;
                stats.objects_traversed += 1;
            }
        }
    }
    m.epoch = heap.epoch();
    m.log_pos = heap.log_pos();
    stats.partial_redos += 1;
    Some(())
}

/// Measures the structure or array behind reference `r` from scratch.
pub fn measure_value(
    program: &CompiledProgram,
    heap: &Heap,
    r: Value,
    stats: &mut SnapshotStats,
) -> Option<Measurement> {
    match r {
        Value::Obj(o) => Some(measure_structure(program, heap, o, stats)),
        Value::Arr(a) => Some(measure_array(heap, a, stats)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_vm::{compile, InstrumentOptions, Interp, NoopProfiler};

    /// Builds a program, runs it, and returns (program, heap).
    fn run(src: &str) -> (CompiledProgram, Heap) {
        let p = compile(src)
            .expect("compiles")
            .instrument(&InstrumentOptions::default());
        let mut interp = Interp::new(&p);
        interp.run(&mut NoopProfiler).expect("runs");
        let heap = interp.heap().clone();
        (p, heap)
    }

    #[test]
    fn structure_snapshot_counts_linked_list() {
        let (p, heap) = run(r#"class Main { static int main() {
                Node head = null;
                for (int i = 0; i < 6; i = i + 1) {
                    Node n = new Node();
                    n.next = head;
                    head = n;
                }
                return 0;
            } }
            class Node { Node next; }"#);
        // Object 0 is the first Node allocated (the tail).
        let snap = snapshot_structure(&p, &heap, ObjRef(5));
        assert_eq!(snap.size, 6, "head reaches all 6 nodes");
        let tail_snap = snapshot_structure(&p, &heap, ObjRef(0));
        assert_eq!(tail_snap.size, 1, "singly-linked tail reaches only itself");
        assert!(snap.equivalent(&tail_snap, EquivalenceCriterion::SomeElements));
        assert!(!snap.equivalent(&tail_snap, EquivalenceCriterion::AllElements));
    }

    #[test]
    fn bidirectional_list_reaches_all_from_anywhere() {
        let (p, heap) = run(r#"class Main { static int main() {
                Node head = new Node();
                Node cur = head;
                for (int i = 0; i < 4; i = i + 1) {
                    Node n = new Node();
                    cur.next = n;
                    n.prev = cur;
                    cur = n;
                }
                return 0;
            } }
            class Node { Node next; Node prev; }"#);
        for i in 0..5 {
            let snap = snapshot_structure(&p, &heap, ObjRef(i));
            assert_eq!(snap.size, 5, "node {i} reaches the whole chain");
        }
    }

    #[test]
    fn triangular_array_capacity_matches_paper() {
        let (_, heap) = run(r#"class Main { static int main() {
                int[][] tri = new int[][] { new int[0], new int[1], new int[2] };
                return tri.length;
            } }"#);
        // The outer array is allocated first (ArrRef 0), then its rows.
        let snap = snapshot_array(&heap, ArrRef(0));
        #[allow(clippy::identity_op)] // spelled out to mirror the paper's arithmetic
        let expected = 3 + 0 + 1 + 2;
        assert_eq!(snap.size, expected);
    }

    #[test]
    fn unique_elements_sees_used_fraction() {
        let (_, heap) = run(r#"class Main { static int main() {
                int[] values = new int[1000];
                for (int i = 0; i < 10; i = i + 1) { values[i] = i * 2; }
                return 0;
            } }"#);
        let snap = snapshot_array(&heap, ArrRef(0));
        assert_eq!(snap.size_under(ArraySizeStrategy::Capacity), 1000);
        // Distinct values are {0, 2, ..., 18}: ten of them (unused slots
        // hold 0, which collapses into the same key — the paper's noted
        // duplicate weakness works in our favour here).
        assert_eq!(snap.size_under(ArraySizeStrategy::UniqueElements), 10);
    }

    #[test]
    fn resized_ref_arrays_overlap_via_elements() {
        let (_, heap) = run(r#"class Main { static int main() {
                Object[] small = new Object[2];
                small[0] = new Item();
                small[1] = new Item();
                Object[] big = new Object[4];
                for (int i = 0; i < 2; i = i + 1) { big[i] = small[i]; }
                return 0;
            } }
            class Item { }"#);
        let small = snapshot_array(&heap, ArrRef(0));
        let big = snapshot_array(&heap, ArrRef(1));
        assert!(small.equivalent(&big, EquivalenceCriterion::SomeElements));
        assert!(!small.equivalent(&big, EquivalenceCriterion::SameArray));
        assert!(small.equivalent(&small, EquivalenceCriterion::SameArray));
    }

    #[test]
    fn same_type_criterion() {
        let (p, heap) = run(r#"class Main { static int main() {
                Node a = new Node();
                Node b = new Node();
                return 0;
            } }
            class Node { Node next; }"#);
        let a = snapshot_structure(&p, &heap, ObjRef(0));
        let b = snapshot_structure(&p, &heap, ObjRef(1));
        assert!(!a.equivalent(&b, EquivalenceCriterion::SomeElements));
        assert!(a.equivalent(&b, EquivalenceCriterion::SameType));
    }

    #[test]
    fn partial_array_replay_tracks_element_multiset() {
        let mut heap = Heap::new();
        let a = heap.alloc_array(ElemKind::Int, 4);
        heap.set_elem(a, 0, Value::Int(5));
        heap.set_elem(a, 1, Value::Int(5));
        heap.set_elem(a, 2, Value::Int(7));
        let mut stats = SnapshotStats::default();
        let mut m = measure_array(&heap, a, &mut stats);

        // Overwriting one of the two 5s keeps the key alive...
        heap.set_elem(a, 0, Value::Int(9));
        assert!(try_partial_array(&heap, &mut m, &mut stats).is_some());
        assert_eq!(m.snapshot, snapshot_array(&heap, a));
        assert!(m.snapshot.keys.contains(&ElemKey::Int(5)));

        // ...overwriting the last occurrence drops it.
        heap.set_elem(a, 1, Value::Int(9));
        assert!(try_partial_array(&heap, &mut m, &mut stats).is_some());
        assert_eq!(m.snapshot, snapshot_array(&heap, a));
        assert!(!m.snapshot.keys.contains(&ElemKey::Int(5)));
        assert_eq!(stats.partial_redos, 2);
    }

    #[test]
    fn partial_array_replay_handles_ref_elements() {
        let mut heap = Heap::new();
        let o1 = heap.alloc_object(ClassId(0), 0);
        let o2 = heap.alloc_object(ClassId(0), 0);
        let a = heap.alloc_array(ElemKind::Ref, 3);
        heap.set_elem(a, 0, Value::Obj(o1));
        heap.set_elem(a, 1, Value::Obj(o2));
        let mut stats = SnapshotStats::default();
        let mut m = measure_array(&heap, a, &mut stats);
        assert_eq!(m.snapshot.refs_traversed, 2);

        // Clear one slot and duplicate the other object: the replayed
        // snapshot must match a fresh traversal key-for-key.
        heap.set_elem(a, 0, Value::Null);
        heap.set_elem(a, 2, Value::Obj(o2));
        assert!(try_partial_array(&heap, &mut m, &mut stats).is_some());
        assert_eq!(m.snapshot, snapshot_array(&heap, a));
        assert_eq!(m.snapshot.refs_traversed, 2);
        assert!(!m.snapshot.keys.contains(&ElemKey::Obj(o1)));
    }

    #[test]
    fn partial_array_bails_on_nested_array_store() {
        let mut heap = Heap::new();
        let inner = heap.alloc_array(ElemKind::Int, 2);
        let other = heap.alloc_array(ElemKind::Int, 2);
        let outer = heap.alloc_array(ElemKind::Ref, 2);
        heap.set_elem(outer, 0, Value::Arr(inner));
        let mut stats = SnapshotStats::default();
        let mut m = measure_array(&heap, outer, &mut stats);
        assert_eq!(m.snapshot.size, 4, "outer capacity plus nested");

        // Linking another array changes the container set: the replay
        // must refuse so the caller re-walks.
        heap.set_elem(outer, 1, Value::Arr(other));
        assert!(try_partial_array(&heap, &mut m, &mut stats).is_none());
    }

    #[test]
    fn partial_array_bails_after_raw_access() {
        let mut heap = Heap::new();
        let a = heap.alloc_array(ElemKind::Int, 3);
        heap.set_elem(a, 0, Value::Int(1));
        let mut stats = SnapshotStats::default();
        let mut m = measure_array(&heap, a, &mut stats);

        // An unjournalled raw write truncates the log; the stale replay
        // window must not claim the snapshot is current.
        heap.array_mut(a).elems[1] = Value::Int(8);
        assert!(try_partial_array(&heap, &mut m, &mut stats).is_none());
        let fresh = measure_array(&heap, a, &mut stats);
        assert!(fresh.snapshot.keys.contains(&ElemKey::Int(8)));
    }

    #[test]
    fn nary_tree_size_includes_array_children() {
        let (p, heap) = run(r#"class Main { static int main() {
                Node root = new Node(3);
                for (int i = 0; i < 3; i = i + 1) {
                    root.children[i] = new Node(0);
                }
                return 0;
            } }
            class Node {
                Node[] children;
                Node(int n) { children = new Node[n]; }
            }"#);
        let snap = snapshot_structure(&p, &heap, ObjRef(0));
        assert_eq!(snap.size, 4, "root + 3 children");
        assert_eq!(snap.refs_traversed, 3, "three non-null child references");
    }
}
