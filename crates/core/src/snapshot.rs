//! Structure snapshots and size measurement (paper §2.4 and §3.4).
//!
//! Each time an algorithm accesses a data structure, AlgoProf takes a
//! *snapshot*: the set of elements reachable from the accessed reference.
//! Snapshots serve two purposes — *identity* (deciding via an equivalence
//! criterion whether two snapshots are views of the same evolving input)
//! and *size* (object counts for recursive structures, capacity or
//! unique-element counts for arrays).

use std::collections::{BTreeMap, BTreeSet};

use algoprof_vm::bytecode::ElemKind;
use algoprof_vm::{ArrRef, ClassId, CompiledProgram, Heap, ObjRef, Value};

/// An element key used for snapshot-equivalence tests.
///
/// Heap references are globally unique identities (the guest heap never
/// reuses slots). Primitive array elements are identified by value —
/// exactly the paper's scheme, including its acknowledged weakness for
/// arrays of small primitive types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemKey {
    /// An object.
    Obj(ObjRef),
    /// An array (including the snapshot's own root array).
    Arr(ArrRef),
    /// A primitive element value.
    Int(i64),
}

/// How the size of an array input is quantified (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArraySizeStrategy {
    /// The number of elements the array can store (all levels for
    /// multi-dimensional arrays).
    #[default]
    Capacity,
    /// The number of unique elements (non-null references, or distinct
    /// primitive values) — approximates the used fraction of
    /// over-allocated arrays but cannot see duplicates.
    UniqueElements,
}

/// How two snapshots are judged to be views of the same input
/// (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EquivalenceCriterion {
    /// Equivalent when the element sets are identical.
    AllElements,
    /// Equivalent when the element sets overlap (AlgoProf's default; it
    /// tolerates structure evolution, partial traversals, and resized
    /// arrays).
    #[default]
    SomeElements,
    /// Arrays only: equivalent when the container array object is
    /// identical.
    SameArray,
    /// Equivalent when the snapshots have the same type.
    SameType,
}

/// What kind of structure a snapshot captured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A recursive data structure (set of linked objects).
    Structure {
        /// Classes of the objects seen, with per-class counts.
        classes: BTreeMap<ClassId, usize>,
    },
    /// A (possibly multi-dimensional) array.
    Array {
        /// Element kind of the root array.
        elem: ElemKind,
    },
}

/// A snapshot of one structure or array at one instant.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Identity keys (see [`ElemKey`]).
    pub keys: BTreeSet<ElemKey>,
    /// Structure vs array, with type detail.
    pub kind: SnapshotKind,
    /// Object count for structures; capacity for arrays.
    pub size: usize,
    /// Unique-element size for arrays (equals `size` for structures).
    pub unique_size: usize,
    /// Non-null references traversed inside arrays belonging to the
    /// structure (the paper's separate reference count).
    pub refs_traversed: usize,
}

impl Snapshot {
    /// Size under the given array strategy (structures ignore it).
    pub fn size_under(&self, strategy: ArraySizeStrategy) -> usize {
        match (&self.kind, strategy) {
            (SnapshotKind::Array { .. }, ArraySizeStrategy::UniqueElements) => self.unique_size,
            _ => self.size,
        }
    }

    /// The reference keys (objects and arrays) of this snapshot —
    /// globally unique identities usable in reverse maps.
    pub fn ref_keys(&self) -> impl Iterator<Item = ElemKey> + '_ {
        self.keys
            .iter()
            .copied()
            .filter(|k| !matches!(k, ElemKey::Int(_)))
    }

    /// The primitive value keys of this snapshot.
    pub fn int_keys(&self) -> impl Iterator<Item = i64> + '_ {
        self.keys.iter().filter_map(|k| match k {
            ElemKey::Int(v) => Some(*v),
            _ => None,
        })
    }

    /// Whether two snapshots are equivalent under `criterion`.
    pub fn equivalent(&self, other: &Snapshot, criterion: EquivalenceCriterion) -> bool {
        match criterion {
            EquivalenceCriterion::AllElements => self.keys == other.keys,
            EquivalenceCriterion::SomeElements => self.keys.intersection(&other.keys).next().is_some(),
            EquivalenceCriterion::SameArray => {
                let root = |s: &Snapshot| {
                    s.keys.iter().find_map(|k| match k {
                        ElemKey::Arr(a) => Some(*a),
                        _ => None,
                    })
                };
                matches!(
                    (&self.kind, &other.kind),
                    (SnapshotKind::Array { .. }, SnapshotKind::Array { .. })
                ) && root(self).is_some()
                    && root(self) == root(other)
            }
            EquivalenceCriterion::SameType => match (&self.kind, &other.kind) {
                (
                    SnapshotKind::Structure { classes: a },
                    SnapshotKind::Structure { classes: b },
                ) => {
                    a.keys().next() == b.keys().next()
                        || a.keys().any(|k| b.contains_key(k))
                }
                (SnapshotKind::Array { elem: a }, SnapshotKind::Array { elem: b }) => a == b,
                _ => false,
            },
        }
    }
}

/// Takes a snapshot of the recursive structure reachable from `start`
/// (an object of a recursive class), following recursive fields and the
/// arrays they hold.
pub fn snapshot_structure(program: &CompiledProgram, heap: &Heap, start: ObjRef) -> Snapshot {
    let t = heap.traverse_structure(program, Value::Obj(start));
    let mut keys = BTreeSet::new();
    let mut classes: BTreeMap<ClassId, usize> = BTreeMap::new();
    for &o in &t.objects {
        keys.insert(ElemKey::Obj(o));
        *classes.entry(heap.object(o).class).or_insert(0) += 1;
    }
    for &a in &t.arrays {
        keys.insert(ElemKey::Arr(a));
    }
    let size = t.objects.len();
    Snapshot {
        keys,
        kind: SnapshotKind::Structure { classes },
        size,
        unique_size: size,
        refs_traversed: t.refs_traversed,
    }
}

/// Takes a snapshot of `arr`, recursing into nested arrays (a
/// 2-dimensional triangular array `{[0],[1],[2]}` has capacity
/// `3 + (0+1+2)`, mirroring the algorithmic-step count of the analogous
/// loop nest — paper §3.4).
pub fn snapshot_array(heap: &Heap, arr: ArrRef) -> Snapshot {
    let mut keys = BTreeSet::new();
    let mut capacity = 0usize;
    let mut unique = BTreeSet::new();
    let mut refs_traversed = 0usize;
    let root_elem = heap.array(arr).elem;

    let mut queue = vec![arr];
    let mut seen = BTreeSet::new();
    while let Some(a) = queue.pop() {
        if !seen.insert(a) {
            continue;
        }
        keys.insert(ElemKey::Arr(a));
        let array = heap.array(a);
        capacity += array.elems.len();
        match array.elem {
            ElemKind::Int | ElemKind::Bool => {
                for &e in &array.elems {
                    if let Value::Int(v) = e {
                        keys.insert(ElemKey::Int(v));
                        unique.insert(ElemKey::Int(v));
                    } else if let Value::Bool(b) = e {
                        keys.insert(ElemKey::Int(b as i64));
                        unique.insert(ElemKey::Int(b as i64));
                    }
                }
            }
            ElemKind::Ref => {
                for &e in &array.elems {
                    match e {
                        Value::Obj(o) => {
                            keys.insert(ElemKey::Obj(o));
                            unique.insert(ElemKey::Obj(o));
                            refs_traversed += 1;
                        }
                        Value::Arr(child) => {
                            unique.insert(ElemKey::Arr(child));
                            refs_traversed += 1;
                            queue.push(child);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    Snapshot {
        keys,
        kind: SnapshotKind::Array { elem: root_elem },
        size: capacity,
        unique_size: unique.len(),
        refs_traversed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_vm::{compile, InstrumentOptions, Interp, NoopProfiler};

    /// Builds a program, runs it, and returns (program, heap).
    fn run(src: &str) -> (CompiledProgram, Heap) {
        let p = compile(src)
            .expect("compiles")
            .instrument(&InstrumentOptions::default());
        let mut interp = Interp::new(&p);
        interp.run(&mut NoopProfiler).expect("runs");
        let heap = interp.heap().clone();
        (p, heap)
    }

    #[test]
    fn structure_snapshot_counts_linked_list() {
        let (p, heap) = run(
            r#"class Main { static int main() {
                Node head = null;
                for (int i = 0; i < 6; i = i + 1) {
                    Node n = new Node();
                    n.next = head;
                    head = n;
                }
                return 0;
            } }
            class Node { Node next; }"#,
        );
        // Object 0 is the first Node allocated (the tail).
        let snap = snapshot_structure(&p, &heap, ObjRef(5));
        assert_eq!(snap.size, 6, "head reaches all 6 nodes");
        let tail_snap = snapshot_structure(&p, &heap, ObjRef(0));
        assert_eq!(tail_snap.size, 1, "singly-linked tail reaches only itself");
        assert!(snap.equivalent(&tail_snap, EquivalenceCriterion::SomeElements));
        assert!(!snap.equivalent(&tail_snap, EquivalenceCriterion::AllElements));
    }

    #[test]
    fn bidirectional_list_reaches_all_from_anywhere() {
        let (p, heap) = run(
            r#"class Main { static int main() {
                Node head = new Node();
                Node cur = head;
                for (int i = 0; i < 4; i = i + 1) {
                    Node n = new Node();
                    cur.next = n;
                    n.prev = cur;
                    cur = n;
                }
                return 0;
            } }
            class Node { Node next; Node prev; }"#,
        );
        for i in 0..5 {
            let snap = snapshot_structure(&p, &heap, ObjRef(i));
            assert_eq!(snap.size, 5, "node {i} reaches the whole chain");
        }
    }

    #[test]
    fn triangular_array_capacity_matches_paper() {
        let (_, heap) = run(
            r#"class Main { static int main() {
                int[][] tri = new int[][] { new int[0], new int[1], new int[2] };
                return tri.length;
            } }"#,
        );
        // The outer array is allocated first (ArrRef 0), then its rows.
        let snap = snapshot_array(&heap, ArrRef(0));
        #[allow(clippy::identity_op)] // spelled out to mirror the paper's arithmetic
        let expected = 3 + 0 + 1 + 2;
        assert_eq!(snap.size, expected);
    }

    #[test]
    fn unique_elements_sees_used_fraction() {
        let (_, heap) = run(
            r#"class Main { static int main() {
                int[] values = new int[1000];
                for (int i = 0; i < 10; i = i + 1) { values[i] = i * 2; }
                return 0;
            } }"#,
        );
        let snap = snapshot_array(&heap, ArrRef(0));
        assert_eq!(snap.size_under(ArraySizeStrategy::Capacity), 1000);
        // Distinct values are {0, 2, ..., 18}: ten of them (unused slots
        // hold 0, which collapses into the same key — the paper's noted
        // duplicate weakness works in our favour here).
        assert_eq!(snap.size_under(ArraySizeStrategy::UniqueElements), 10);
    }

    #[test]
    fn resized_ref_arrays_overlap_via_elements() {
        let (_, heap) = run(
            r#"class Main { static int main() {
                Object[] small = new Object[2];
                small[0] = new Item();
                small[1] = new Item();
                Object[] big = new Object[4];
                for (int i = 0; i < 2; i = i + 1) { big[i] = small[i]; }
                return 0;
            } }
            class Item { }"#,
        );
        let small = snapshot_array(&heap, ArrRef(0));
        let big = snapshot_array(&heap, ArrRef(1));
        assert!(small.equivalent(&big, EquivalenceCriterion::SomeElements));
        assert!(!small.equivalent(&big, EquivalenceCriterion::SameArray));
        assert!(small.equivalent(&small, EquivalenceCriterion::SameArray));
    }

    #[test]
    fn same_type_criterion() {
        let (p, heap) = run(
            r#"class Main { static int main() {
                Node a = new Node();
                Node b = new Node();
                return 0;
            } }
            class Node { Node next; }"#,
        );
        let a = snapshot_structure(&p, &heap, ObjRef(0));
        let b = snapshot_structure(&p, &heap, ObjRef(1));
        assert!(!a.equivalent(&b, EquivalenceCriterion::SomeElements));
        assert!(a.equivalent(&b, EquivalenceCriterion::SameType));
    }

    #[test]
    fn nary_tree_size_includes_array_children() {
        let (p, heap) = run(
            r#"class Main { static int main() {
                Node root = new Node(3);
                for (int i = 0; i < 3; i = i + 1) {
                    root.children[i] = new Node(0);
                }
                return 0;
            } }
            class Node {
                Node[] children;
                Node(int n) { children = new Node[n]; }
            }"#,
        );
        let snap = snapshot_structure(&p, &heap, ObjRef(0));
        assert_eq!(snap.size, 4, "root + 3 children");
        assert_eq!(snap.refs_traversed, 3, "three non-null child references");
    }
}
