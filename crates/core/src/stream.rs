//! Streaming analysis: profile an APTR trace while it is still arriving.
//!
//! The batch path ([`crate::profile_trace_with`]) needs the whole trace
//! before analysis starts. [`StreamingAnalysis`] inverts that: each
//! [`feed`] decodes every fully buffered event through
//! [`IncrementalReplayer`] straight into a live [`AlgoProf`], and pushes
//! every repetition-tree invocation that *finished* during the chunk
//! into a per-node [`StreamingFit`] — the paper's §3.3 "infer the cost
//! function online, discard the individual data points" optimization,
//! wired to a real incremental producer. Analysis therefore overlaps
//! ingestion: by the time the last chunk of a network upload (or an
//! `algoprof analyze -` pipe) lands, the profiler has already consumed
//! everything before it.
//!
//! [`finish`] closes the stream and returns the full
//! [`AlgorithmicProfile`] — identical to what the batch path produces
//! for the same bytes — plus the per-node online fits.
//!
//! [`feed`]: StreamingAnalysis::feed
//! [`finish`]: StreamingAnalysis::finish

use std::collections::BTreeMap;

use algoprof_fit::{Fit, PowerFit, StreamingFit};
use algoprof_trace::IncrementalReplayer;
use algoprof_vm::{compile, CompiledProgram};

use crate::inputs::{InputKind, InputRegistry};
use crate::profile::ProfileSet;
use crate::profiler::{AlgoProf, AlgoProfOptions};
use crate::reptree::{Invocation, NodeId};
use crate::run::ProfileError;

/// Online ⟨size, steps⟩ fit state for one repetition-tree node.
#[derive(Debug, Default)]
struct NodeFitState {
    fit: StreamingFit,
    /// Invocations of this node already pushed (a contiguous prefix —
    /// an unfinished invocation stalls the cursor until it finalizes).
    pushed: usize,
}

/// One node's online fit in the final [`StreamingReport`].
#[derive(Debug, Clone)]
pub struct StreamNodeFit {
    /// Display name of the repetition-tree node.
    pub node: String,
    /// ⟨size, steps⟩ observations consumed.
    pub points: usize,
    /// Best model by BIC over the streamed points.
    pub best: Option<Fit>,
    /// Log–log power-law fit over the streamed points.
    pub power: Option<PowerFit>,
}

/// Everything a completed streaming analysis produced.
#[derive(Debug)]
pub struct StreamingReport {
    /// One profile per guest thread, identical to the batch
    /// [`crate::profile_trace_set_with`] result for the same trace bytes
    /// and options (single-threaded guests yield a one-entry set).
    pub profiles: ProfileSet,
    /// Per-node online fits, sized nodes only, in node-id order.
    pub node_fits: Vec<StreamNodeFit>,
    /// The guest source embedded in the trace header (the stream itself
    /// is gone by now, so callers that want it — e.g. `analyze -`
    /// cross-validation — take it from here).
    pub source: String,
    /// Events replayed.
    pub events: u64,
    /// Trace bytes consumed.
    pub bytes: u64,
}

/// Push-style trace analysis; see the module docs.
#[derive(Debug)]
pub struct StreamingAnalysis {
    options: AlgoProfOptions,
    inc: IncrementalReplayer,
    program: Option<CompiledProgram>,
    profiler: Option<AlgoProf>,
    fits: BTreeMap<usize, NodeFitState>,
}

impl StreamingAnalysis {
    /// An analysis awaiting its first chunk.
    pub fn new(options: AlgoProfOptions) -> Self {
        StreamingAnalysis {
            options,
            inc: IncrementalReplayer::new(),
            program: None,
            profiler: None,
            fits: BTreeMap::new(),
        }
    }

    /// Feeds one chunk of APTR bytes, replaying every event that is now
    /// fully buffered into the profiler and updating the online fits
    /// with invocations that finished during this chunk.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] when the trace prefix is malformed or
    /// the embedded source does not compile. A short chunk is never an
    /// error — decoding simply waits for more bytes.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), ProfileError> {
        self.inc.feed(chunk);
        if self.program.is_none() {
            if let Some(header) = self.inc.header()? {
                let program = compile(&header.source)?.instrument(&header.instrument);
                self.profiler = Some(AlgoProf::with_options(self.options));
                self.program = Some(program);
            }
        }
        if let (Some(program), Some(profiler)) = (&self.program, &mut self.profiler) {
            self.inc.advance(program, profiler)?;
            let tree = profiler.tree();
            let registry = profiler.registry();
            for node in tree.nodes() {
                let state = self.fits.entry(node.id.index()).or_default();
                push_finished(state, &node.invocations, registry);
            }
        }
        Ok(())
    }

    /// Trace bytes consumed so far.
    pub fn bytes_fed(&self) -> u64 {
        self.inc.bytes_fed()
    }

    /// Events replayed so far.
    pub fn events(&self) -> u64 {
        self.inc.stats().events
    }

    /// Whether the trace's `End` tag has been decoded.
    pub fn is_complete(&self) -> bool {
        self.inc.is_ended()
    }

    /// Closes the stream: verifies the `End` tag arrived, finalizes the
    /// profiler, folds still-open invocations (finalized only now) into
    /// the online fits, and returns the [`StreamingReport`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Trace`] when the stream stopped before
    /// its `End` tag (`Truncated`) or carried trailing bytes.
    pub fn finish(mut self) -> Result<StreamingReport, ProfileError> {
        let stats = self.inc.finish()?;
        let source = self
            .inc
            .header()
            .expect("header decoded long before End")
            .map(|h| h.source.clone())
            .unwrap_or_default();
        let profiler = self
            .profiler
            .take()
            .expect("End tag decoded implies the header was decoded");
        let program = self
            .program
            .take()
            .expect("End tag decoded implies the header was decoded");
        let profiles = profiler.finish_set(&program);
        // Invocations still open at the last chunk (e.g. the root) are
        // finalized inside `finish`; fold them in from the final tree.
        // Online fits follow the main thread (the stream's implicit
        // starting thread — the one `feed` was watching all along).
        let main = profiles.main();
        for node in main.tree().nodes() {
            let state = self.fits.entry(node.id.index()).or_default();
            push_finished(state, &node.invocations, main.registry());
        }
        let node_fits = self
            .fits
            .iter()
            .filter(|(_, s)| !s.fit.is_empty())
            .map(|(&idx, s)| StreamNodeFit {
                node: main.node_name(NodeId(idx as u32)).to_string(),
                points: s.fit.len(),
                best: s.fit.best_fit(),
                power: s.fit.power_law(),
            })
            .collect();
        Ok(StreamingReport {
            profiles,
            node_fits,
            source,
            events: stats.events,
            bytes: self.inc.bytes_fed(),
        })
    }
}

/// Pushes the contiguous run of newly finished invocations (those past
/// `state.pushed`) into the node's online fit. An invocation contributes
/// a point only if it touched a sized input (structure or array), with
/// size = the largest such input's high-water size and cost = steps —
/// the same point definition as
/// [`AlgorithmicProfile::invocation_series`].
fn push_finished(state: &mut NodeFitState, invocations: &[Invocation], registry: &InputRegistry) {
    while let Some(inv) = invocations.get(state.pushed) {
        if !inv.finished {
            break;
        }
        let size = inv
            .inputs
            .iter()
            .filter(|(&i, _)| {
                matches!(
                    registry.input(i).kind,
                    InputKind::Structure | InputKind::Array(_)
                )
            })
            .map(|(_, obs)| obs.max_size)
            .max();
        if let Some(size) = size {
            state.fit.push(size as f64, inv.costs.steps() as f64);
        }
        state.pushed += 1;
    }
}

/// Renders the online-fit section of a streaming report as stable text
/// (used by the serve streaming endpoint's response body).
pub fn render_stream_fits(report: &StreamingReport) -> String {
    let mut out = String::new();
    out.push_str("streaming fits (online, per repetition-tree node)\n");
    if report.node_fits.is_empty() {
        out.push_str("  (no sized invocations)\n");
        return out;
    }
    for f in &report.node_fits {
        out.push_str(&format!("  {} [{} points]", f.node, f.points));
        if let Some(best) = &f.best {
            out.push_str(&format!(
                "  best {:?} coeff {:.4} r2 {:.4}",
                best.model, best.coeff, best.r2
            ));
        }
        if let Some(p) = &f.power {
            out.push_str(&format!("  power n^{:.3}", p.exponent));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{profile_trace_with, record_source};

    const SRC: &str = "class Main { static int main() {
        Node head = null;
        for (int i = 0; i < 12; i = i + 1) {
            Node x = new Node();
            x.next = head;
            head = x;
        }
        int c = 0;
        Node cur = head;
        while (cur != null) { c = c + 1; cur = cur.next; }
        return c;
    } }
    class Node { Node next; }";

    fn streamed(trace: &[u8], chunk: usize) -> StreamingReport {
        let mut s = StreamingAnalysis::new(AlgoProfOptions::default());
        for c in trace.chunks(chunk) {
            s.feed(c).expect("feeds");
        }
        s.finish().expect("finishes")
    }

    #[test]
    fn streaming_profile_equals_batch_profile() {
        let trace = record_source(SRC).expect("records");
        let batch = profile_trace_with(&trace, AlgoProfOptions::default()).expect("replays");
        for chunk in [1, 7, 64, trace.len()] {
            let report = streamed(&trace, chunk);
            assert_eq!(
                *report.profiles.main(),
                batch,
                "chunk size {chunk} diverged from batch"
            );
            assert_eq!(report.bytes, trace.len() as u64);
            assert!(report.events > 0);
        }
    }

    #[test]
    fn online_fits_cover_sized_nodes() {
        let trace = record_source(SRC).expect("records");
        let report = streamed(&trace, 11);
        // Both loops touch the Node structure input, so both stream
        // points into their node fits.
        assert!(
            report.node_fits.len() >= 2,
            "expected fits for construction and traversal loops, got {:?}",
            report.node_fits
        );
        let total: usize = report.node_fits.iter().map(|f| f.points).sum();
        assert!(total > 0);
        assert_eq!(report.source, SRC);
        let text = render_stream_fits(&report);
        assert!(text.contains("streaming fits"));
        assert!(text.contains("points]"));
    }

    #[test]
    fn threaded_streaming_equals_batch_set() {
        use crate::run::profile_trace_set_with;
        const TSRC: &str = "class Main { static int main() {
            int t1 = spawn work(6);
            int t2 = spawn work(9);
            return join t1 + join t2;
        }
        static int work(int n) {
            Node head = null;
            for (int i = 0; i < n; i = i + 1) {
                Node x = new Node(); x.next = head; head = x;
            }
            return n;
        } }
        class Node { Node next; }";
        let trace = record_source(TSRC).expect("records");
        let batch = profile_trace_set_with(&trace, AlgoProfOptions::default()).expect("replays");
        assert_eq!(batch.len(), 3, "main + two workers");
        for chunk in [1, 13, trace.len()] {
            let report = streamed(&trace, chunk);
            assert_eq!(
                report.profiles, batch,
                "chunk size {chunk} diverged from the batch set"
            );
        }
    }

    #[test]
    fn truncated_stream_is_an_error_at_finish() {
        let trace = record_source(SRC).expect("records");
        let mut s = StreamingAnalysis::new(AlgoProfOptions::default());
        s.feed(&trace[..trace.len() - 1]).expect("feeds");
        let err = s.finish().unwrap_err();
        assert!(matches!(err, ProfileError::Trace(_)));
    }

    #[test]
    fn bad_bytes_are_an_error_at_feed() {
        let mut s = StreamingAnalysis::new(AlgoProfOptions::default());
        let err = s.feed(b"definitely not a trace").unwrap_err();
        assert!(matches!(err, ProfileError::Trace(_)));
    }
}
