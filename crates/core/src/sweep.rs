//! `algoprof sweep` — deterministic parallel batch profiling.
//!
//! The paper's headline artifact is the ⟨input size, cost⟩ scatter plot
//! (Figures 1 and 5), which needs the *same* program profiled at many
//! input sizes. A sweep turns that into an explicit job list — one
//! [`SweepJob`] per input size, crossed with any number of
//! analysis-option ablations — and runs it on a pool of worker threads
//! in a **single parallel pass**: each job compiles and executes its
//! guest exactly once, with the interpreter driving a
//! [`Tee`](algoprof_vm::Tee) of the trace recorder (for reproducibility
//! stats) and a [`Fanout`](algoprof_vm::Fanout) of one [`AlgoProf`] per
//! ablation. All ablations observe the identical live event stream, so
//! their profiles equal what a record-then-replay pipeline would have
//! produced — without re-decoding the recording N times.
//!
//! The merged report is **deterministic**: results land in
//! pre-assigned slots indexed by job (see [`crate::pool`]), the merge
//! walks them in job order, and no timing or scheduling information
//! enters the report — so the text, JSON, and HTML renderings are
//! byte-identical for every worker count.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use algoprof_analysis::CostFn;
use algoprof_fit::{
    best_fit, check_coefficient, fit_power_law, CoeffCheck, CoeffVerdict, ComplexityClass, Fit,
    PowerFit,
};
use algoprof_trace::{TraceHeader, TraceRecorder};
use algoprof_vm::{compile, Fanout, InstrumentOptions, Interp, Tee};

use crate::pool::{default_workers, run_indexed};
use crate::profile::{AlgorithmicProfile, CostMetric, ProfileSet};
use crate::profiler::{AlgoProf, AlgoProfOptions};
use crate::run::ProfileError;

// The whole pipeline fans profiles out across threads; keep that
// guaranteed at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AlgorithmicProfile>();
    assert_send_sync::<SweepReport>();
};

/// One unit of work: execute `source` once with `input` and profile it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJob {
    /// Display label, e.g. `n=64`.
    pub label: String,
    /// Program tag for multi-program sweeps. Series are merged only
    /// across jobs sharing a tag — two *different* programs can use
    /// identical loop names (`Main.main:loop0@L4`), and merging those
    /// points would fit a meaningless curve. Empty for the common
    /// single-program sweep.
    pub program: String,
    /// The nominal input size this job probes.
    pub size: u64,
    /// Guest source text.
    pub source: String,
    /// Values served to the guest's `readInput()` calls.
    pub input: Vec<i64>,
}

impl SweepJob {
    /// The standard per-size job: the swept size is served as the
    /// guest's first `readInput()` value.
    pub fn for_size(source: &str, size: u64) -> SweepJob {
        SweepJob {
            label: format!("n={size}"),
            program: String::new(),
            size,
            source: source.to_string(),
            input: vec![size as i64],
        }
    }

    /// Like [`SweepJob::for_size`] with a program tag, for sweeps that
    /// batch several distinct programs.
    pub fn for_program_size(program: &str, source: &str, size: u64) -> SweepJob {
        SweepJob {
            label: format!("{program}:n={size}"),
            program: program.to_string(),
            ..SweepJob::for_size(source, size)
        }
    }
}

/// One named analysis configuration to replay every recording under.
#[derive(Debug, Clone, Default)]
pub struct SweepAblation {
    /// Name used in reports, e.g. `some` or `default`.
    pub name: String,
    /// Profiler options for this ablation.
    pub options: AlgoProfOptions,
}

/// Sweep execution parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Ablations to analyze each recording under (at least one; the
    /// default is a single `default`-named [`AlgoProfOptions`]).
    pub ablations: Vec<SweepAblation>,
    /// Worker threads; `0` means [`default_workers`].
    pub workers: usize,
    /// Emit progress lines to stderr as jobs complete (progress goes to
    /// stderr only — the report itself stays deterministic).
    pub progress: bool,
    /// Display name of the swept program, echoed in the report.
    pub program: String,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            ablations: vec![SweepAblation {
                name: "default".to_string(),
                options: AlgoProfOptions::default(),
            }],
            workers: 0,
            progress: false,
            program: String::new(),
        }
    }
}

/// A sweep failure, attributed to the job that caused it. When several
/// jobs fail, the one with the lowest index is reported — deterministic
/// for every worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Label of the failing job.
    pub job: String,
    /// Ablation name, when the failure is specific to one analysis
    /// configuration. In the single-pass pipeline all ablations observe
    /// one execution, so compile/runtime failures carry `None`.
    pub ablation: Option<String>,
    /// The underlying failure.
    pub error: ProfileError,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ablation {
            Some(a) => write!(f, "job {} [{a}]: {}", self.job, self.error),
            None => write!(f, "job {}: {}", self.job, self.error),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Per-ablation outcome of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRunReport {
    /// Ablation name.
    pub ablation: String,
    /// Algorithms found by this analysis, summed over all guest threads.
    pub algorithms: u64,
    /// Total algorithmic steps across all algorithms and threads.
    pub total_steps: u64,
    /// Guest threads the run produced a profile for (1 for a program
    /// that never spawns).
    pub threads: u64,
}

/// Outcome of one job (shared trace, one run row per ablation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJobReport {
    /// Job label.
    pub label: String,
    /// Nominal input size.
    pub size: u64,
    /// Recording size in bytes.
    pub trace_bytes: u64,
    /// Events replayed from the recording.
    pub events: u64,
    /// One row per ablation, in configuration order.
    pub runs: Vec<SweepRunReport>,
}

/// One merged ⟨size, cost⟩ series: an algorithm observed across the
/// whole sweep under one ablation, with its fitted cost functions.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeries {
    /// Ablation name.
    pub ablation: String,
    /// Program tag of the jobs this series merges (empty for a
    /// single-program sweep).
    pub program: String,
    /// The algorithm's root repetition name (e.g.
    /// `Main.testForSize:loop0@L9`) — identical sources give identical
    /// names, which is what lets runs merge.
    pub algorithm: String,
    /// `None` for the merged-across-threads series (the only kind a
    /// single-threaded sweep produces, and byte-identical to the
    /// pre-thread report). `Some(t)` rows are emitted in addition when
    /// any job in the group spawned: the same algorithm restricted to
    /// guest thread `t`, with its own fit — so per-thread scaling
    /// verdicts fall out of the ordinary fit machinery.
    pub thread: Option<usize>,
    /// Human classification, e.g. `Construction of a ... structure`.
    pub kind: String,
    /// Merged ⟨size, steps⟩ points, sorted by size then cost.
    pub points: Vec<(f64, f64)>,
    /// Best complexity-model fit over the merged series.
    pub fit: Option<Fit>,
    /// Log–log power-law fit over the merged series.
    pub power_law: Option<PowerFit>,
    /// Statically predicted asymptotic class for this repetition, from
    /// the `algoprof-analysis` abstract interpretation of the same
    /// source. `None` when the analysis has no prediction under this
    /// name (e.g. synthetic grouped roots).
    pub predicted: Option<ComplexityClass>,
    /// The symbolic cost function behind the prediction, with
    /// coefficients where the recurrence solver proved them.
    pub predicted_cost: Option<CostFn>,
    /// Whether the static prediction agrees with the empirical best fit
    /// at polynomial-degree granularity. `None` when either side makes
    /// no claim (no fit, no prediction, or an `Unknown` class).
    pub agrees: Option<bool>,
    /// The coefficient-level comparison of `predicted_cost`'s leading
    /// term against the best fit.
    pub coeff: CoeffCheck,
}

/// The merged result of a whole sweep. All renderings of a report are
/// byte-identical for every worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Display name of the swept program.
    pub program: String,
    /// The nominal sizes, in job order.
    pub sizes: Vec<u64>,
    /// Ablation names, in configuration order.
    pub ablations: Vec<String>,
    /// Per-job outcomes, in job order.
    pub jobs: Vec<SweepJobReport>,
    /// Merged per-algorithm series with fits, ordered by ablation then
    /// algorithm name.
    pub series: Vec<SweepSeries>,
}

/// Records and analyzes every job of a sweep on a worker pool, merging
/// the results into a deterministic [`SweepReport`].
///
/// # Errors
///
/// Returns the lowest-indexed failing job's [`SweepError`] — the same
/// error for every worker count. Already-completed work is discarded.
///
/// # Example
///
/// ```
/// use algoprof::sweep::{run_sweep, SweepConfig, SweepJob};
///
/// let src = "class Main { static int main() {
///     int n = readInput();
///     Node head = null;
///     for (int i = 0; i < n; i = i + 1) {
///         Node x = new Node(); x.next = head; head = x;
///     }
///     return 0;
/// } }
/// class Node { Node next; }";
/// let jobs: Vec<SweepJob> = [4u64, 8, 16]
///     .iter()
///     .map(|&n| SweepJob::for_size(src, n))
///     .collect();
/// let report = run_sweep(&jobs, &SweepConfig::default())?;
/// assert_eq!(report.jobs.len(), 3);
/// let series = &report.series[0];
/// assert_eq!(series.points.len(), 3);
/// # Ok::<(), algoprof::sweep::SweepError>(())
/// ```
pub fn run_sweep(jobs: &[SweepJob], config: &SweepConfig) -> Result<SweepReport, SweepError> {
    let ablations: Vec<SweepAblation> = if config.ablations.is_empty() {
        SweepConfig::default().ablations
    } else {
        config.ablations.clone()
    };
    let workers = if config.workers == 0 {
        default_workers()
    } else {
        config.workers
    };

    // Single pass: execute every job once, in parallel, with all
    // ablations fanned out over the live event stream.
    let done = AtomicUsize::new(0);
    let instrument = InstrumentOptions::default();
    let outcomes: Vec<Result<JobOutcome, ProfileError>> = run_indexed(jobs.len(), workers, |i| {
        let job = &jobs[i];
        let out = profile_job(&job.source, &job.input, &instrument, &ablations);
        if config.progress {
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            match &out {
                Ok(o) => eprintln!(
                    "sweep: [{k}/{}] profiled {} ({} bytes, {} ablations)",
                    jobs.len(),
                    job.label,
                    o.trace_bytes,
                    o.profiles.len()
                ),
                Err(e) => eprintln!("sweep: [{k}/{}] {} FAILED: {e}", jobs.len(), job.label),
            }
        }
        out
    });
    let mut results: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
    for (job, outcome) in jobs.iter().zip(outcomes) {
        match outcome {
            Ok(o) => results.push(o),
            Err(error) => {
                return Err(SweepError {
                    job: job.label.clone(),
                    ablation: None,
                    error,
                })
            }
        }
    }

    // Serial merge, in job order: scheduling can no longer influence
    // anything below this line.
    let mut report = SweepReport {
        program: config.program.clone(),
        sizes: jobs.iter().map(|j| j.size).collect(),
        ablations: ablations.iter().map(|a| a.name.clone()).collect(),
        jobs: Vec::with_capacity(jobs.len()),
        series: Vec::new(),
    };
    for (j, job) in jobs.iter().enumerate() {
        report.jobs.push(SweepJobReport {
            label: job.label.clone(),
            size: job.size,
            trace_bytes: results[j].trace_bytes,
            events: results[j].events,
            runs: ablations
                .iter()
                .zip(&results[j].profiles)
                .map(|(ab, set)| SweepRunReport {
                    ablation: ab.name.clone(),
                    algorithms: set
                        .threads()
                        .iter()
                        .map(|p| p.algorithms().len() as u64)
                        .sum(),
                    total_steps: set
                        .threads()
                        .iter()
                        .flat_map(|p| p.algorithms())
                        .map(|al| al.total_costs.steps())
                        .sum(),
                    threads: set.len() as u64,
                })
                .collect(),
        });
    }
    // Program groups in first-appearance job order: series merge only
    // across jobs sharing a tag, so same-named algorithms of different
    // programs never pollute one curve.
    let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
    for (j, job) in jobs.iter().enumerate() {
        match groups.iter_mut().find(|(tag, _)| *tag == job.program) {
            Some((_, members)) => members.push(j),
            None => groups.push((&job.program, vec![j])),
        }
    }
    // Static cross-validation: one prediction map per program group
    // (the predictions depend only on the source, not the ablation).
    // Group members share a source by construction; analysis failure is
    // impossible for sources that already recorded, but degrade to "no
    // prediction" rather than failing the sweep.
    let group_predictions: Vec<std::collections::HashMap<String, (ComplexityClass, CostFn)>> =
        groups
            .iter()
            .map(|(_, members)| {
                algoprof_analysis::analyze_source(&jobs[members[0]].source)
                    .map(|a| algoprof_analysis::cost_map(&a.predictions))
                    .unwrap_or_default()
            })
            .collect();
    for (a, ablation) in ablations.iter().enumerate() {
        for ((tag, members), predictions) in groups.iter().zip(&group_predictions) {
            // Pair each profile with its job's *requested* size: the
            // sweep's independent variable. Measured structure sizes can
            // overshoot the request (a doubling array list at n=48 has
            // capacity 64), which used to duplicate x-values across jobs.
            // The merged slice spans every guest thread of every member
            // job — for a single-threaded sweep that is exactly the old
            // one-profile-per-job slice.
            let slice: Vec<(&AlgorithmicProfile, u64)> = members
                .iter()
                .flat_map(|&j| {
                    results[j].profiles[a]
                        .threads()
                        .iter()
                        .map(move |p| (p, jobs[j].size))
                })
                .collect();
            let group_threads = members
                .iter()
                .map(|&j| results[j].profiles[a].len())
                .max()
                .unwrap_or(1);
            // Every algorithm root name seen anywhere in this group, in
            // sorted order so the report layout is stable.
            let mut names: Vec<String> = Vec::new();
            for (p, _) in &slice {
                for algo in p.algorithms() {
                    let name = p.node_name(algo.root).to_string();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
            names.sort();
            for name in names {
                if let Some(s) = build_series(&ablation.name, tag, &name, None, &slice, predictions)
                {
                    report.series.push(s);
                }
                // Threaded groups additionally get one series per guest
                // thread, right under the merged one, so each thread's
                // scaling is judged on its own points.
                if group_threads > 1 {
                    for t in 0..group_threads {
                        let tslice: Vec<(&AlgorithmicProfile, u64)> = members
                            .iter()
                            .filter_map(|&j| {
                                results[j].profiles[a].thread(t).map(|p| (p, jobs[j].size))
                            })
                            .collect();
                        if let Some(s) =
                            build_series(&ablation.name, tag, &name, Some(t), &tslice, predictions)
                        {
                            report.series.push(s);
                        }
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Builds one merged series row (merged across `slice`'s profiles) with
/// its fits and static cross-validation verdicts, or `None` when the
/// algorithm contributed no sized points in this slice.
fn build_series(
    ablation: &str,
    program: &str,
    name: &str,
    thread: Option<usize>,
    slice: &[(&AlgorithmicProfile, u64)],
    predictions: &std::collections::HashMap<String, (ComplexityClass, CostFn)>,
) -> Option<SweepSeries> {
    let points = crate::profile::merge_invocation_series_nominal(slice, name, CostMetric::Steps);
    if points.is_empty() {
        return None;
    }
    let kind = slice
        .iter()
        .find_map(|(p, _)| {
            p.algorithms()
                .iter()
                .find(|al| p.node_name(al.root) == name)
                .map(|al| p.describe_algorithm(al.id))
        })
        .unwrap_or_default();
    let fit = best_fit(&points);
    let (predicted, predicted_cost) = match predictions.get(name) {
        Some((class, cost)) => (Some(*class), Some(cost.clone())),
        None => (None, None),
    };
    let agrees = match (predicted, &fit) {
        (Some(p), Some(f)) => p.agrees_with(f.model.complexity_class()),
        _ => None,
    };
    let coeff = check_coefficient(
        predicted,
        predicted_cost.as_ref().and_then(|c| c.leading()),
        fit.as_ref(),
    );
    Some(SweepSeries {
        ablation: ablation.to_string(),
        program: program.to_string(),
        algorithm: name.to_string(),
        thread,
        kind,
        fit,
        power_law: fit_power_law(&points),
        points,
        predicted,
        predicted_cost,
        agrees,
        coeff,
    })
}

/// What one single-pass job execution yields.
struct JobOutcome {
    /// Recording size in bytes (header + events + terminator).
    trace_bytes: u64,
    /// Events encoded into the recording.
    events: u64,
    /// One finished per-thread profile set per ablation, in
    /// configuration order.
    profiles: Vec<ProfileSet>,
}

/// Executes one job's guest exactly once, producing its recording stats
/// and one profile per ablation from the same live event stream: the
/// interpreter drives `Tee(recorder, Fanout(profilers))`, so the
/// recorder observes each event first and the profilers observe it in
/// ablation order.
fn profile_job(
    source: &str,
    input: &[i64],
    instrument: &InstrumentOptions,
    ablations: &[SweepAblation],
) -> Result<JobOutcome, ProfileError> {
    let program = compile(source)?.instrument(instrument).fuse_default();
    let mut bytes = Vec::new();
    let mut sink = Tee::new(
        TraceRecorder::new(&TraceHeader::new(source, instrument, input), &mut bytes),
        Fanout::new(
            ablations
                .iter()
                .map(|a| AlgoProf::with_options(a.options))
                .collect(),
        ),
    );
    Interp::new(&program)
        .with_input(input.to_vec())
        .run(&mut sink)?;
    let Tee {
        a: recorder,
        b: fanout,
    } = sink;
    let stats = recorder.finish().expect("writes to a Vec<u8> cannot fail");
    Ok(JobOutcome {
        trace_bytes: stats.total_bytes,
        events: stats.events,
        profiles: fanout
            .into_sinks()
            .into_iter()
            .map(|p| p.finish_set(&program))
            .collect(),
    })
}

// ------------------------------------------------------------ rendering

impl SweepReport {
    /// Renders the report as aligned text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "sweep report: {}", self.program);
        let _ = writeln!(
            out,
            "sizes: {}",
            self.sizes
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        );
        let _ = writeln!(out, "ablations: {}", self.ablations.join(" "));
        let _ = writeln!(
            out,
            "jobs: {} ({} analyses)\n",
            self.jobs.len(),
            self.jobs.len() * self.ablations.len()
        );
        for job in &self.jobs {
            let _ = writeln!(
                out,
                "job {} [trace {} bytes, {} events]",
                job.label, job.trace_bytes, job.events
            );
            for run in &job.runs {
                let _ = write!(
                    out,
                    "  {}: algorithms={} steps={}",
                    run.ablation, run.algorithms, run.total_steps
                );
                if run.threads > 1 {
                    let _ = write!(out, " threads={}", run.threads);
                }
                out.push('\n');
            }
        }
        out.push('\n');
        for s in &self.series {
            let prefix = if s.program.is_empty() {
                String::new()
            } else {
                format!("{} ", s.program)
            };
            let tsuffix = match s.thread {
                Some(t) => format!(" [t{t}]"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "algorithm {prefix}{}{tsuffix} [{}]",
                s.algorithm, s.ablation
            );
            if !s.kind.is_empty() {
                let _ = writeln!(out, "  kind: {}", s.kind);
            }
            let pts = s
                .points
                .iter()
                .map(|&(n, c)| format!("({n}, {c})"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "  points ({}): {pts}", s.points.len());
            match &s.fit {
                Some(f) => {
                    let _ = writeln!(out, "  best fit: {f}  [{}]", f.model.big_o());
                }
                None => out.push_str("  best fit: (degenerate series)\n"),
            }
            if let Some(p) = &s.power_law {
                let _ = writeln!(out, "  power law: {p}");
            }
            if let Some(pred) = s.predicted {
                let verdict = match s.coeff.verdict {
                    CoeffVerdict::Agrees => match (s.coeff.predicted, s.coeff.fitted) {
                        (Some(p), Some(f)) => {
                            format!("[agrees]  (coeff {p} vs fitted {f:.4})")
                        }
                        _ => "[agrees]".to_string(),
                    },
                    CoeffVerdict::ClassOnly => format!("[class-only: {}]", s.coeff.reason),
                    CoeffVerdict::Disagrees => match &s.fit {
                        Some(f) => format!("[DISAGREES with best fit {}]", f.model.big_o()),
                        None => "[DISAGREES]".to_string(),
                    },
                    CoeffVerdict::Unverified => "[unverified]".to_string(),
                };
                let cost = match &s.predicted_cost {
                    Some(c) => format!("  =  {c}"),
                    None => String::new(),
                };
                let _ = writeln!(out, "  predicted: {}{cost}  {verdict}", pred.big_o());
            }
            out.push('\n');
        }
        out
    }

    /// Renders the report as machine-readable JSON (the `BENCH_sweep`
    /// schema). No timing data is included, so the bytes are identical
    /// for every worker count.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"program\": {},", json_str(&self.program));
        let _ = writeln!(out, "  \"sizes\": {},", json_u64s(&self.sizes));
        let _ = writeln!(
            out,
            "  \"ablations\": [{}],",
            self.ablations
                .iter()
                .map(|a| json_str(a))
                .collect::<Vec<_>>()
                .join(", ")
        );
        out.push_str("  \"jobs\": [\n");
        for (i, job) in self.jobs.iter().enumerate() {
            let runs = job
                .runs
                .iter()
                .map(|r| {
                    format!(
                        "{{\"ablation\": {}, \"algorithms\": {}, \"total_steps\": {}, \"threads\": {}}}",
                        json_str(&r.ablation),
                        r.algorithms,
                        r.total_steps,
                        r.threads
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "    {{\"label\": {}, \"size\": {}, \"trace_bytes\": {}, \"events\": {}, \"runs\": [{}]}}",
                json_str(&job.label),
                job.size,
                job.trace_bytes,
                job.events,
                runs
            );
            out.push_str(if i + 1 < self.jobs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            let points = s
                .points
                .iter()
                .map(|&(n, c)| format!("[{}, {}]", json_f64(n), json_f64(c)))
                .collect::<Vec<_>>()
                .join(", ");
            let fit = match &s.fit {
                Some(f) => format!(
                    "{{\"model\": {}, \"coeff\": {}, \"intercept\": {}, \"r2\": {}, \"rmse\": {}, \"n_points\": {}}}",
                    json_str(f.model.big_o()),
                    json_f64(f.coeff),
                    json_f64(f.intercept),
                    json_f64(f.r2),
                    json_f64(f.rmse),
                    f.n_points
                ),
                None => "null".to_string(),
            };
            let power = match &s.power_law {
                Some(p) => format!(
                    "{{\"coeff\": {}, \"exponent\": {}, \"r2\": {}, \"n_points\": {}}}",
                    json_f64(p.coeff),
                    json_f64(p.exponent),
                    json_f64(p.r2),
                    p.n_points
                ),
                None => "null".to_string(),
            };
            let predicted = match s.predicted {
                Some(p) => json_str(p.big_o()),
                None => "null".to_string(),
            };
            let agrees = match s.agrees {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            };
            let predicted_cost = match &s.predicted_cost {
                Some(c) => json_str(&c.to_string()),
                None => "null".to_string(),
            };
            let opt_f64 = |v: Option<f64>| match v {
                Some(x) => json_f64(x),
                None => "null".to_string(),
            };
            let coeff = format!(
                "{{\"verdict\": {}, \"predicted\": {}, \"fitted\": {}, \"rel_err\": {}, \"reason\": {}}}",
                json_str(s.coeff.verdict.label()),
                opt_f64(s.coeff.predicted),
                opt_f64(s.coeff.fitted),
                opt_f64(s.coeff.rel_err),
                json_str(s.coeff.reason)
            );
            let thread = match s.thread {
                Some(t) => t.to_string(),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "    {{\"ablation\": {}, \"program\": {}, \"algorithm\": {}, \"thread\": {}, \"kind\": {}, \"points\": [{}], \"best_fit\": {}, \"power_law\": {}, \"predicted\": {}, \"predicted_cost\": {}, \"agrees\": {}, \"coeff\": {}}}",
                json_str(&s.ablation),
                json_str(&s.program),
                json_str(&s.algorithm),
                thread,
                json_str(&s.kind),
                points,
                fit,
                power,
                predicted,
                predicted_cost,
                agrees,
                coeff
            );
            out.push_str(if i + 1 < self.series.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the report as a self-contained HTML page with SVG plots.
    pub fn render_html(&self) -> String {
        crate::html::render_sweep_html(self)
    }
}

/// JSON string literal with the escapes our identifiers can need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite `f64` as a JSON number (Rust's shortest-roundtrip `Display`
/// is deterministic and always valid JSON for finite values).
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite value in sweep report");
    format!("{v}")
}

fn json_u64s(vs: &[u64]) -> String {
    format!(
        "[{}]",
        vs.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZED_LIST: &str = "class Main { static int main() {
        int n = readInput();
        Node head = null;
        for (int i = 0; i < n; i = i + 1) {
            Node x = new Node(); x.next = head; head = x;
        }
        return 0;
    } }
    class Node { Node next; }";

    fn jobs() -> Vec<SweepJob> {
        [3u64, 6, 12, 24]
            .iter()
            .map(|&n| SweepJob::for_size(SIZED_LIST, n))
            .collect()
    }

    #[test]
    fn sweep_finds_linear_construction() {
        let report = run_sweep(&jobs(), &SweepConfig::default()).expect("sweeps");
        assert_eq!(report.jobs.len(), 4);
        let s = report
            .series
            .iter()
            .find(|s| s.algorithm.contains("loop"))
            .expect("construction series");
        assert_eq!(s.points.len(), 4);
        let fit = s.fit.expect("fits");
        assert_eq!(fit.model, algoprof_fit::Model::Linear);
    }

    #[test]
    fn sweep_points_land_on_the_requested_sizes() {
        // Regression: a doubling array list asked for 48 elements grows
        // its backing array to capacity 64, and the series merge used to
        // take that *measured* size as x — so the n=48 job collided with
        // the n=64 job (two points at x=64) and no point sat at x=48.
        // The sweep's x-axis is the requested size.
        const DOUBLING_LIST: &str = "class Main { static int main() {
            int n = readInput();
            ArrayList list = new ArrayList();
            for (int i = 0; i < n; i = i + 1) { list.append(i); }
            return list.size;
        } }
        class ArrayList {
            int[] array;
            int size;
            ArrayList() { array = new int[1]; size = 0; }
            void append(int v) {
                if (size == array.length) {
                    int[] bigger = new int[array.length * 2];
                    for (int i = 0; i < array.length; i = i + 1) { bigger[i] = array[i]; }
                    array = bigger;
                }
                array[size] = v;
                size = size + 1;
            }
        }";
        let sizes = [16u64, 32, 48, 64];
        let jobs: Vec<SweepJob> = sizes
            .iter()
            .map(|&n| SweepJob::for_size(DOUBLING_LIST, n))
            .collect();
        let report = run_sweep(&jobs, &SweepConfig::default()).expect("sweeps");
        let main_loop = report
            .series
            .iter()
            .find(|s| s.algorithm.starts_with("Main.main:loop"))
            .expect("main append loop series");
        let xs: Vec<f64> = main_loop.points.iter().map(|&(x, _)| x).collect();
        assert_eq!(
            xs,
            sizes.iter().map(|&n| n as f64).collect::<Vec<_>>(),
            "exactly one point per requested size, in order"
        );
        // Costs must still differ between n=48 and n=64 even though both
        // runs end at capacity 64.
        let cost_of = |n: f64| {
            main_loop
                .points
                .iter()
                .find(|&&(x, _)| x == n)
                .expect("point")
                .1
        };
        assert!(cost_of(48.0) < cost_of(64.0));
        // And no series anywhere may invent an x outside the swept sizes.
        for s in &report.series {
            for &(x, _) in &s.points {
                assert!(
                    sizes.iter().any(|&n| n as f64 == x),
                    "series {} has x={x} not among the requested sizes",
                    s.algorithm
                );
            }
        }
    }

    #[test]
    fn report_is_identical_for_every_worker_count() {
        let jobs = jobs();
        let mut renders = Vec::new();
        for workers in [1usize, 2, 3, 8] {
            let config = SweepConfig {
                workers,
                ..SweepConfig::default()
            };
            let report = run_sweep(&jobs, &config).expect("sweeps");
            renders.push((report.render_text(), report.render_json()));
        }
        for r in &renders[1..] {
            assert_eq!(r.0, renders[0].0, "text differs across worker counts");
            assert_eq!(r.1, renders[0].1, "json differs across worker counts");
        }
    }

    #[test]
    fn failing_job_is_attributed_deterministically() {
        let mut jobs = jobs();
        jobs[2].source = "class Main {".to_string(); // compile error
        for workers in [1usize, 4] {
            let config = SweepConfig {
                workers,
                ..SweepConfig::default()
            };
            let err = run_sweep(&jobs, &config).expect_err("fails");
            assert_eq!(err.job, "n=12");
            assert!(matches!(err.error, ProfileError::Compile(_)));
        }
    }

    #[test]
    fn json_is_structurally_sane() {
        let report = run_sweep(&jobs()[..3], &SweepConfig::default()).expect("sweeps");
        let json = report.render_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"best_fit\""));
    }

    #[test]
    fn empty_job_list_gives_empty_report() {
        let report = run_sweep(&[], &SweepConfig::default()).expect("sweeps");
        assert!(report.jobs.is_empty());
        assert!(report.series.is_empty());
        assert!(!report.render_text().is_empty());
        assert!(report.render_json().contains("\"jobs\": [\n  ],"));
    }

    #[test]
    fn multiple_ablations_share_recordings() {
        use crate::snapshot::EquivalenceCriterion;
        let config = SweepConfig {
            ablations: vec![
                SweepAblation {
                    name: "some".into(),
                    options: AlgoProfOptions {
                        criterion: EquivalenceCriterion::SomeElements,
                        ..Default::default()
                    },
                },
                SweepAblation {
                    name: "type".into(),
                    options: AlgoProfOptions {
                        criterion: EquivalenceCriterion::SameType,
                        ..Default::default()
                    },
                },
            ],
            ..SweepConfig::default()
        };
        let report = run_sweep(&jobs(), &config).expect("sweeps");
        assert_eq!(report.ablations, vec!["some", "type"]);
        for job in &report.jobs {
            assert_eq!(job.runs.len(), 2);
        }
        // Both ablations produced a merged series.
        assert!(report.series.iter().any(|s| s.ablation == "some"));
        assert!(report.series.iter().any(|s| s.ablation == "type"));
    }

    #[test]
    fn single_pass_profiles_equal_replayed() {
        // The Fanout'd live profiles must be indistinguishable from the
        // old record-then-replay pipeline, and the teed recording must
        // be byte-identical to a pure recording run.
        use crate::run::{profile_trace_set_with, record_source_with};
        use crate::snapshot::EquivalenceCriterion;
        let ablations = vec![
            SweepAblation {
                name: "some".into(),
                options: AlgoProfOptions {
                    criterion: EquivalenceCriterion::SomeElements,
                    ..Default::default()
                },
            },
            SweepAblation {
                name: "type".into(),
                options: AlgoProfOptions {
                    criterion: EquivalenceCriterion::SameType,
                    ..Default::default()
                },
            },
        ];
        let instrument = InstrumentOptions::default();
        for &n in &[4u64, 9] {
            let job = SweepJob::for_size(SIZED_LIST, n);
            let outcome =
                profile_job(&job.source, &job.input, &instrument, &ablations).expect("profiles");
            let recording =
                record_source_with(&job.source, &instrument, &job.input).expect("records");
            assert_eq!(outcome.trace_bytes, recording.len() as u64);
            assert!(outcome.events > 0);
            for (ablation, live) in ablations.iter().zip(&outcome.profiles) {
                let replayed =
                    profile_trace_set_with(&recording, ablation.options).expect("replays");
                assert_eq!(
                    *live, replayed,
                    "single-pass [{}] diverged from replay",
                    ablation.name
                );
            }
        }
    }

    #[test]
    fn threaded_sweep_adds_per_thread_series_and_stays_deterministic() {
        // Two workers build lists of n and 2n nodes: the merged series
        // mixes both, while the per-thread rows separate a slope-1 from
        // a slope-2 linear fit.
        const THREADED: &str = "class Main { static int main() {
            int n = readInput();
            int t1 = spawn work(n);
            int t2 = spawn work(n * 2);
            int a = join t1;
            int b = join t2;
            return a + b;
        }
        static int work(int n) {
            Node head = null;
            for (int i = 0; i < n; i = i + 1) {
                Node x = new Node(); x.next = head; head = x;
            }
            return n;
        } }
        class Node { Node next; }";
        let jobs: Vec<SweepJob> = [4u64, 8, 16, 32]
            .iter()
            .map(|&n| SweepJob::for_size(THREADED, n))
            .collect();
        let mut renders = Vec::new();
        for workers in [1usize, 2] {
            let config = SweepConfig {
                workers,
                ..SweepConfig::default()
            };
            let report = run_sweep(&jobs, &config).expect("sweeps");
            for job in &report.jobs {
                assert_eq!(job.runs[0].threads, 3, "main + two workers");
            }
            let loop_rows: Vec<&SweepSeries> = report
                .series
                .iter()
                .filter(|s| s.algorithm.contains("Main.work:loop"))
                .collect();
            let merged = loop_rows
                .iter()
                .find(|s| s.thread.is_none())
                .expect("merged series");
            assert_eq!(merged.points.len(), 8, "two worker points per size");
            let fit_of = |t: usize| {
                loop_rows
                    .iter()
                    .find(|s| s.thread == Some(t))
                    .unwrap_or_else(|| panic!("per-thread series for t{t}"))
                    .fit
                    .expect("per-thread fit")
            };
            // Thread 0 (main) never runs the loop; t1 and t2 each get
            // their own verdict: both linear, t2 twice as steep.
            assert!(!loop_rows.iter().any(|s| s.thread == Some(0)));
            let (f1, f2) = (fit_of(1), fit_of(2));
            assert_eq!(f1.model, algoprof_fit::Model::Linear);
            assert_eq!(f2.model, algoprof_fit::Model::Linear);
            assert!(
                (f2.coeff / f1.coeff - 2.0).abs() < 0.2,
                "t2 builds twice the list: coeffs {} vs {}",
                f1.coeff,
                f2.coeff
            );
            let text = report.render_text();
            assert!(text.contains(" threads=3"));
            assert!(text.contains(" [t1] [default]"));
            let json = report.render_json();
            assert!(json.contains("\"threads\": 3"));
            assert!(json.contains("\"thread\": 1"));
            assert!(json.contains("\"thread\": null"));
            let html = report.render_html();
            assert!(html.contains(" [t2] "));
            renders.push((text, json, html));
        }
        assert_eq!(renders[0], renders[1], "renders differ across -j");
    }

    #[test]
    fn program_tags_keep_same_named_algorithms_apart() {
        // Two different programs whose main loop has the *same* root
        // name (same method, same line): linear construction vs. a
        // quadratic variant that re-walks the list each iteration.
        // Without program tags their points would merge into one bogus
        // curve; with tags each keeps its own complexity.
        const QUADRATIC_LIST: &str = "class Main { static int main() {
        int n = readInput();
        Node head = null;
        for (int i = 0; i < n; i = i + 1) {
            Node x = new Node(); x.next = head; head = x;
            Node c = head; while (c != null) { c = c.next; }
        }
        return 0;
    } }
    class Node { Node next; }";
        let mut jobs = Vec::new();
        for &n in &[4u64, 8, 16, 32] {
            jobs.push(SweepJob::for_program_size("lin", SIZED_LIST, n));
            jobs.push(SweepJob::for_program_size("quad", QUADRATIC_LIST, n));
        }
        let report = run_sweep(&jobs, &SweepConfig::default()).expect("sweeps");
        let fit_of = |tag: &str| {
            report
                .series
                .iter()
                .find(|s| s.program == tag && s.algorithm.contains("loop0"))
                .and_then(|s| s.fit)
                .expect("tagged series fits")
        };
        assert_eq!(fit_of("lin").model, algoprof_fit::Model::Linear);
        assert_eq!(fit_of("quad").model, algoprof_fit::Model::Quadratic);
        // The two programs share root names, so merging them would have
        // been possible only by ignoring the tag.
        let lin_names: Vec<_> = report
            .series
            .iter()
            .filter(|s| s.program == "lin")
            .map(|s| s.algorithm.clone())
            .collect();
        assert!(report
            .series
            .iter()
            .filter(|s| s.program == "quad")
            .any(|s| lin_names.contains(&s.algorithm)));
        // The text report carries the tag so the series stay readable.
        assert!(report.render_text().contains("algorithm lin "));
        assert!(report.render_json().contains("\"program\": \"quad\""));
    }
}
