//! Coefficient-level comparison of a symbolic cost prediction against an
//! empirical fit.
//!
//! Class-level cross-validation (`ComplexityClass::agrees_with`) checks
//! only the polynomial degree: a fitter whose leading coefficient is off
//! by 10× still "agrees". This module adds the quantitative check: given
//! the statically predicted **leading term** (degree, log factor, and —
//! when the static analysis could solve the loop recurrences exactly —
//! its coefficient) and the empirically fitted [`Fit`], decide whether
//! the two cost functions agree *as functions*, not just as classes.
//!
//! The verdict lattice is deliberately three-valued on the agreeing
//! side:
//!
//! * [`CoeffVerdict::Agrees`] — classes match **and** both leading
//!   coefficients are available, comparable (same basis term), backed by
//!   a fit with `R² ≥` [`COEFF_MIN_R2`], and within
//!   [`COEFF_TOLERANCE`] relative error.
//! * [`CoeffVerdict::ClassOnly`] — classes match but the coefficient
//!   claim could not be confirmed: the static side widened its
//!   coefficient away, the bases differ (an `n log n` fit against a
//!   plain `n` prediction), the fit is too noisy, or the coefficients
//!   simply differ by more than the tolerance (a worst-case bound over
//!   an average-case workload lands here, e.g. insertion sort on random
//!   input: predicted `0.5·n²`, measured `≈0.25·n²`).
//! * [`CoeffVerdict::Disagrees`] — the classes themselves disagree;
//!   coefficients are moot.
//! * [`CoeffVerdict::Unverified`] — one side makes no claim at all.

use crate::models::{ComplexityClass, Fit, Model};

/// Relative tolerance for coefficient agreement: the predicted leading
/// coefficient must be within ±20% of the fitted one.
pub const COEFF_TOLERANCE: f64 = 0.20;

/// Minimum `R²` of the empirical fit before its leading coefficient is
/// trusted for a coefficient-level verdict. Below this the verdict
/// degrades to class-only rather than judging against noise.
pub const COEFF_MIN_R2: f64 = 0.95;

/// The leading term of a symbolic cost function:
/// `coeff · n^degree · (log n)^log`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeadingTerm {
    /// Polynomial degree (0–3).
    pub degree: u32,
    /// Whether a (single) log factor is present.
    pub log: bool,
    /// The coefficient, exact by construction on the static side.
    pub coeff: f64,
}

impl Model {
    /// The (degree, log) basis shape of this model family.
    pub fn degree_log(self) -> (u32, bool) {
        match self {
            Model::Constant => (0, false),
            Model::Logarithmic => (0, true),
            Model::Linear => (1, false),
            Model::Linearithmic => (1, true),
            Model::Quadratic => (2, false),
            Model::Cubic => (3, false),
        }
    }
}

/// Outcome of a class + coefficient comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoeffVerdict {
    /// Class and leading coefficient both agree.
    Agrees,
    /// Class agrees; the coefficient claim is unproven, incomparable,
    /// unconfirmed by the fit quality, or outside tolerance.
    ClassOnly,
    /// The classes themselves disagree.
    Disagrees,
    /// One side makes no claim (no fit, no prediction, or `Unknown`).
    Unverified,
}

impl CoeffVerdict {
    /// Machine-readable label (used in JSON reports).
    pub fn label(self) -> &'static str {
        match self {
            CoeffVerdict::Agrees => "agrees",
            CoeffVerdict::ClassOnly => "class-only",
            CoeffVerdict::Disagrees => "disagrees",
            CoeffVerdict::Unverified => "unverified",
        }
    }
}

/// A full coefficient comparison: the verdict plus the numbers it was
/// made from, for rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoeffCheck {
    /// The verdict.
    pub verdict: CoeffVerdict,
    /// Predicted leading coefficient, when the static side proved one.
    pub predicted: Option<f64>,
    /// Fitted leading coefficient, when a fit exists.
    pub fitted: Option<f64>,
    /// `|predicted − fitted| / fitted` when both are comparable.
    pub rel_err: Option<f64>,
    /// Why an agreeing class did not reach a coefficient verdict
    /// (deterministic, human-readable; empty for `Agrees`).
    pub reason: &'static str,
}

impl CoeffCheck {
    /// The all-`None` unverified check.
    pub fn unverified() -> CoeffCheck {
        CoeffCheck {
            verdict: CoeffVerdict::Unverified,
            predicted: None,
            fitted: None,
            rel_err: None,
            reason: "",
        }
    }
}

/// Compares a static prediction (class + optional exact leading term)
/// against an empirical fit, producing class- and coefficient-level
/// verdicts in one [`CoeffCheck`].
///
/// `predicted_class` is the authoritative class claim (it may be coarser
/// than `leading` when the cost function was widened); `leading` is the
/// exact leading term when the recurrence solver produced one.
pub fn check_coefficient(
    predicted_class: Option<ComplexityClass>,
    leading: Option<LeadingTerm>,
    fit: Option<&Fit>,
) -> CoeffCheck {
    let (Some(pred), Some(fit)) = (predicted_class, fit) else {
        return CoeffCheck::unverified();
    };
    let fitted_class = fit.model.complexity_class();
    let class_agrees = match pred.agrees_with(fitted_class) {
        None => return CoeffCheck::unverified(),
        Some(b) => b,
    };
    if !class_agrees {
        return CoeffCheck {
            verdict: CoeffVerdict::Disagrees,
            predicted: leading.map(|l| l.coeff),
            fitted: Some(fit.coeff),
            rel_err: None,
            reason: "",
        };
    }
    let Some(lead) = leading else {
        return CoeffCheck {
            verdict: CoeffVerdict::ClassOnly,
            predicted: None,
            fitted: Some(fit.coeff),
            rel_err: None,
            reason: "coefficient widened away statically",
        };
    };
    if (lead.degree, lead.log) != fit.model.degree_log() {
        return CoeffCheck {
            verdict: CoeffVerdict::ClassOnly,
            predicted: Some(lead.coeff),
            fitted: Some(fit.coeff),
            rel_err: None,
            reason: "fitted basis term differs from predicted leading term",
        };
    }
    // NaN R^2 (degenerate fit) must also fail the confidence gate.
    if fit.r2.is_nan() || fit.r2 < COEFF_MIN_R2 {
        return CoeffCheck {
            verdict: CoeffVerdict::ClassOnly,
            predicted: Some(lead.coeff),
            fitted: Some(fit.coeff),
            rel_err: None,
            reason: "fit R^2 below coefficient-confidence threshold",
        };
    }
    if fit.coeff.is_nan() || fit.coeff <= 0.0 || !lead.coeff.is_finite() {
        return CoeffCheck {
            verdict: CoeffVerdict::ClassOnly,
            predicted: Some(lead.coeff),
            fitted: Some(fit.coeff),
            rel_err: None,
            reason: "non-positive fitted coefficient",
        };
    }
    let rel_err = (lead.coeff - fit.coeff).abs() / fit.coeff;
    if rel_err <= COEFF_TOLERANCE {
        CoeffCheck {
            verdict: CoeffVerdict::Agrees,
            predicted: Some(lead.coeff),
            fitted: Some(fit.coeff),
            rel_err: Some(rel_err),
            reason: "",
        }
    } else {
        CoeffCheck {
            verdict: CoeffVerdict::ClassOnly,
            predicted: Some(lead.coeff),
            fitted: Some(fit.coeff),
            rel_err: Some(rel_err),
            reason: "leading coefficient outside tolerance",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(model: Model, coeff: f64, r2: f64) -> Fit {
        Fit {
            model,
            coeff,
            intercept: 0.0,
            r2,
            rmse: 0.0,
            bic: 0.0,
            n_points: 5,
        }
    }

    fn lead(degree: u32, log: bool, coeff: f64) -> LeadingTerm {
        LeadingTerm { degree, log, coeff }
    }

    #[test]
    fn exact_match_agrees() {
        let c = check_coefficient(
            Some(ComplexityClass::Quadratic),
            Some(lead(2, false, 0.5)),
            Some(&fit(Model::Quadratic, 0.5034, 1.0)),
        );
        assert_eq!(c.verdict, CoeffVerdict::Agrees);
        assert!(c.rel_err.unwrap() < 0.01);
    }

    #[test]
    fn worst_case_over_average_workload_is_class_only() {
        // Predicted 0.5·n² worst case, measured 0.25·n² on random input.
        let c = check_coefficient(
            Some(ComplexityClass::Quadratic),
            Some(lead(2, false, 0.5)),
            Some(&fit(Model::Quadratic, 0.25, 1.0)),
        );
        assert_eq!(c.verdict, CoeffVerdict::ClassOnly);
        assert!(c.rel_err.unwrap() > COEFF_TOLERANCE);
    }

    #[test]
    fn widened_coefficient_is_class_only() {
        let c = check_coefficient(
            Some(ComplexityClass::Quadratic),
            None,
            Some(&fit(Model::Quadratic, 0.5, 1.0)),
        );
        assert_eq!(c.verdict, CoeffVerdict::ClassOnly);
        assert_eq!(c.predicted, None);
    }

    #[test]
    fn class_mismatch_disagrees() {
        let c = check_coefficient(
            Some(ComplexityClass::Quadratic),
            Some(lead(2, false, 1.0)),
            Some(&fit(Model::Linear, 2.0, 1.0)),
        );
        assert_eq!(c.verdict, CoeffVerdict::Disagrees);
    }

    #[test]
    fn noisy_fit_degrades_to_class_only() {
        let c = check_coefficient(
            Some(ComplexityClass::Linear),
            Some(lead(1, false, 1.0)),
            Some(&fit(Model::Linear, 1.0, 0.6)),
        );
        assert_eq!(c.verdict, CoeffVerdict::ClassOnly);
        assert!(c.reason.contains("R^2"));
    }

    #[test]
    fn basis_mismatch_is_class_only() {
        // O(n log n) fit vs a plain-linear prediction: same degree, but
        // the leading coefficients multiply different basis functions.
        let c = check_coefficient(
            Some(ComplexityClass::Linear),
            Some(lead(1, false, 1.0)),
            Some(&fit(Model::Linearithmic, 1.0, 1.0)),
        );
        assert_eq!(c.verdict, CoeffVerdict::ClassOnly);
    }

    #[test]
    fn missing_sides_are_unverified() {
        assert_eq!(
            check_coefficient(None, None, Some(&fit(Model::Linear, 1.0, 1.0))).verdict,
            CoeffVerdict::Unverified
        );
        assert_eq!(
            check_coefficient(Some(ComplexityClass::Linear), None, None).verdict,
            CoeffVerdict::Unverified
        );
        assert_eq!(
            check_coefficient(
                Some(ComplexityClass::Unknown),
                None,
                Some(&fit(Model::Linear, 1.0, 1.0))
            )
            .verdict,
            CoeffVerdict::Unverified
        );
    }
}
