//! Empirical cost-function inference for algorithmic profiles.
//!
//! The PLDI'12 paper plots ⟨input size, cost⟩ points and fits cost
//! functions *by hand* with a statistics package (§2.7, §3.5), deferring
//! automation to the empirical-algorithmics literature. This crate
//! implements that missing step with the standard approach from that
//! literature: least-squares regression over a basis of complexity model
//! candidates plus a log–log power-law fit, with BIC-style model
//! selection.
//!
//! # Example
//!
//! ```
//! use algoprof_fit::{best_fit, Model};
//!
//! // steps ≈ 0.25·n²  (insertion sort on random input)
//! let points: Vec<(f64, f64)> = (1..100)
//!     .map(|n| (n as f64, 0.25 * (n as f64) * (n as f64)))
//!     .collect();
//! let fit = best_fit(&points).expect("enough points");
//! assert_eq!(fit.model, Model::Quadratic);
//! assert!((fit.coeff - 0.25).abs() < 1e-6);
//! ```

pub mod coeff;
pub mod models;
pub mod regression;
pub mod streaming;

pub use coeff::{
    check_coefficient, CoeffCheck, CoeffVerdict, LeadingTerm, COEFF_MIN_R2, COEFF_TOLERANCE,
};
pub use models::{ComplexityClass, Fit, Model, PowerFit};
pub use regression::{best_fit, fit_all, fit_model, fit_power_law};
pub use streaming::StreamingFit;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_holds() {
        let points: Vec<(f64, f64)> = (1..50).map(|n| (n as f64, 3.0 * n as f64)).collect();
        let fit = best_fit(&points).expect("fits");
        assert_eq!(fit.model, Model::Linear);
    }
}
