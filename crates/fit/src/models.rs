//! Complexity model candidates for empirical cost-function fitting.

use std::fmt;

/// A candidate asymptotic model `cost ≈ coeff · g(n) + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// `g(n) = 1` — constant cost.
    Constant,
    /// `g(n) = log₂ n`.
    Logarithmic,
    /// `g(n) = n`.
    Linear,
    /// `g(n) = n·log₂ n`.
    Linearithmic,
    /// `g(n) = n²`.
    Quadratic,
    /// `g(n) = n³`.
    Cubic,
}

impl Model {
    /// All candidates, in increasing asymptotic order.
    pub const ALL: [Model; 6] = [
        Model::Constant,
        Model::Logarithmic,
        Model::Linear,
        Model::Linearithmic,
        Model::Quadratic,
        Model::Cubic,
    ];

    /// Evaluates the basis function `g(n)`. `log(n)` is clamped at `n = 1`
    /// so sizes 0 and 1 do not produce `-inf`.
    pub fn basis(self, n: f64) -> f64 {
        let ln = if n > 1.0 { n.log2() } else { 0.0 };
        match self {
            Model::Constant => 1.0,
            Model::Logarithmic => ln,
            Model::Linear => n,
            Model::Linearithmic => n * ln,
            Model::Quadratic => n * n,
            Model::Cubic => n * n * n,
        }
    }

    /// The number of free parameters this model uses when fitted with an
    /// intercept (for the BIC complexity penalty).
    pub fn parameter_count(self) -> usize {
        match self {
            Model::Constant => 1,
            _ => 2,
        }
    }

    /// The conventional big-O name.
    pub fn big_o(self) -> &'static str {
        match self {
            Model::Constant => "O(1)",
            Model::Logarithmic => "O(log n)",
            Model::Linear => "O(n)",
            Model::Linearithmic => "O(n log n)",
            Model::Quadratic => "O(n^2)",
            Model::Cubic => "O(n^3)",
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = match self {
            Model::Constant => "1",
            Model::Logarithmic => "log n",
            Model::Linear => "n",
            Model::Linearithmic => "n log n",
            Model::Quadratic => "n^2",
            Model::Cubic => "n^3",
        };
        f.write_str(g)
    }
}

/// An asymptotic complexity class, shared between the empirical fits in
/// this crate and the static predictions in `algoprof-analysis`. Richer
/// than [`Model`]: it carries `Exponential` (statically derivable from
/// branching recursion but never fitted from the polynomial/log basis)
/// and `Unknown` (the static analysis makes no claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComplexityClass {
    /// O(1).
    Constant,
    /// O(log n).
    Logarithmic,
    /// O(n).
    Linear,
    /// O(n log n).
    Linearithmic,
    /// O(n²).
    Quadratic,
    /// O(n³).
    Cubic,
    /// O(2ⁿ) (or worse).
    Exponential,
    /// No claim; compares as the top of the lattice.
    Unknown,
}

impl ComplexityClass {
    /// The conventional big-O name.
    pub fn big_o(self) -> &'static str {
        match self {
            ComplexityClass::Constant => "O(1)",
            ComplexityClass::Logarithmic => "O(log n)",
            ComplexityClass::Linear => "O(n)",
            ComplexityClass::Linearithmic => "O(n log n)",
            ComplexityClass::Quadratic => "O(n^2)",
            ComplexityClass::Cubic => "O(n^3)",
            ComplexityClass::Exponential => "O(2^n)",
            ComplexityClass::Unknown => "O(?)",
        }
    }

    /// Maps a fitted power-law exponent to the nearest polynomial class.
    /// Logarithmic and linearithmic factors are not power laws, so this
    /// rounds to the nearest integer degree; exponents past cubic are
    /// outside the fitted basis and map to `Unknown`.
    pub fn from_exponent(exponent: f64) -> ComplexityClass {
        if !exponent.is_finite() || exponent >= 3.5 {
            ComplexityClass::Unknown
        } else if exponent < 0.5 {
            ComplexityClass::Constant
        } else if exponent < 1.5 {
            ComplexityClass::Linear
        } else if exponent < 2.5 {
            ComplexityClass::Quadratic
        } else {
            ComplexityClass::Cubic
        }
    }

    /// The polynomial degree used for agreement checks: log factors do
    /// not change the degree (O(n log n) has degree 1), exponential and
    /// unknown have none.
    fn degree(self) -> Option<u32> {
        match self {
            ComplexityClass::Constant | ComplexityClass::Logarithmic => Some(0),
            ComplexityClass::Linear | ComplexityClass::Linearithmic => Some(1),
            ComplexityClass::Quadratic => Some(2),
            ComplexityClass::Cubic => Some(3),
            ComplexityClass::Exponential | ComplexityClass::Unknown => None,
        }
    }

    /// Whether a static prediction and an empirical fit agree, comparing
    /// at polynomial-degree granularity (an O(n log n) fit agrees with a
    /// predicted O(n): the log factor is below the resolution of the
    /// degree comparison). Returns `None` when either side is `Unknown`
    /// — the static analysis made no claim, so there is nothing to
    /// validate.
    pub fn agrees_with(self, fitted: ComplexityClass) -> Option<bool> {
        if self == ComplexityClass::Unknown || fitted == ComplexityClass::Unknown {
            return None;
        }
        if self == ComplexityClass::Exponential || fitted == ComplexityClass::Exponential {
            return Some(self == fitted);
        }
        Some(self.degree() == fitted.degree())
    }

    /// Sequential composition: the class of `A; B` is the larger class.
    pub fn seq(self, other: ComplexityClass) -> ComplexityClass {
        self.max(other)
    }

    /// Nested composition: the class of running an `other`-cost body
    /// `self`-many times. Polynomial degrees add (log factors saturate
    /// at one); anything past cubic leaves the representable basis and
    /// becomes `Unknown`; exponential absorbs everything but unknown.
    pub fn nest(self, other: ComplexityClass) -> ComplexityClass {
        use ComplexityClass::*;
        if self == Unknown || other == Unknown {
            return Unknown;
        }
        if self == Exponential || other == Exponential {
            return Exponential;
        }
        let degree = self.degree().unwrap() + other.degree().unwrap();
        let has_log = matches!(self, Logarithmic | Linearithmic)
            || matches!(other, Logarithmic | Linearithmic);
        match (degree, has_log) {
            (0, false) => Constant,
            (0, true) => Logarithmic,
            (1, false) => Linear,
            (1, true) => Linearithmic,
            (2, false) => Quadratic,
            (3, false) => Cubic,
            // n²·log n, n³·log n, n⁴, … are outside the fitted basis.
            _ => Unknown,
        }
    }
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.big_o())
    }
}

impl Model {
    /// The complexity class this model family belongs to.
    pub fn complexity_class(self) -> ComplexityClass {
        match self {
            Model::Constant => ComplexityClass::Constant,
            Model::Logarithmic => ComplexityClass::Logarithmic,
            Model::Linear => ComplexityClass::Linear,
            Model::Linearithmic => ComplexityClass::Linearithmic,
            Model::Quadratic => ComplexityClass::Quadratic,
            Model::Cubic => ComplexityClass::Cubic,
        }
    }
}

/// A fitted cost function `cost ≈ coeff · g(n) + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// The model family.
    pub model: Model,
    /// Scale coefficient.
    pub coeff: f64,
    /// Additive intercept.
    pub intercept: f64,
    /// Coefficient of determination on the fitted data (1 = perfect).
    pub r2: f64,
    /// Root mean squared error on the fitted data.
    pub rmse: f64,
    /// Bayesian information criterion (lower is better); used for model
    /// selection across candidates.
    pub bic: f64,
    /// Number of points fitted.
    pub n_points: usize,
}

impl Fit {
    /// Predicted cost at size `n`.
    pub fn predict(&self, n: f64) -> f64 {
        self.coeff * self.model.basis(n) + self.intercept
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.model == Model::Constant {
            return write!(f, "cost = {:.4}", self.coeff + self.intercept);
        }
        write!(f, "cost = {:.4}*{}", self.coeff, self.model)?;
        if self.intercept.abs() > 1e-9 {
            write!(
                f,
                " {} {:.4}",
                if self.intercept >= 0.0 { "+" } else { "-" },
                self.intercept.abs()
            )?;
        }
        write!(f, "  (R^2 = {:.4})", self.r2)
    }
}

/// A power-law fit `cost ≈ coeff · n^exponent` from log–log regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// Scale coefficient.
    pub coeff: f64,
    /// Fitted exponent (the empirical order of growth).
    pub exponent: f64,
    /// Coefficient of determination in log–log space.
    pub r2: f64,
    /// Number of points used (only `n > 0`, `cost > 0`).
    pub n_points: usize,
}

impl PowerFit {
    /// Predicted cost at size `n`.
    pub fn predict(&self, n: f64) -> f64 {
        self.coeff * n.powf(self.exponent)
    }
}

impl fmt::Display for PowerFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost = {:.4}*n^{:.3}  (R^2 = {:.4})",
            self.coeff, self.exponent, self.r2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_values() {
        assert_eq!(Model::Constant.basis(17.0), 1.0);
        assert_eq!(Model::Linear.basis(17.0), 17.0);
        assert_eq!(Model::Quadratic.basis(4.0), 16.0);
        assert_eq!(Model::Cubic.basis(3.0), 27.0);
        assert_eq!(Model::Logarithmic.basis(8.0), 3.0);
        assert_eq!(Model::Linearithmic.basis(8.0), 24.0);
    }

    #[test]
    fn basis_is_finite_at_small_sizes() {
        for m in Model::ALL {
            assert!(m.basis(0.0).is_finite());
            assert!(m.basis(1.0).is_finite());
        }
    }

    #[test]
    fn fit_predict_and_display() {
        let fit = Fit {
            model: Model::Quadratic,
            coeff: 0.25,
            intercept: 0.0,
            r2: 1.0,
            rmse: 0.0,
            bic: -1.0,
            n_points: 10,
        };
        assert_eq!(fit.predict(10.0), 25.0);
        let s = fit.to_string();
        assert!(s.contains("0.25"));
        assert!(s.contains("n^2"));
    }

    #[test]
    fn power_fit_predicts() {
        let p = PowerFit {
            coeff: 2.0,
            exponent: 1.5,
            r2: 1.0,
            n_points: 5,
        };
        assert!((p.predict(4.0) - 16.0).abs() < 1e-9);
        assert!(!p.to_string().is_empty());
    }

    #[test]
    fn big_o_names() {
        assert_eq!(Model::Quadratic.big_o(), "O(n^2)");
        assert_eq!(Model::Linearithmic.big_o(), "O(n log n)");
    }
}
