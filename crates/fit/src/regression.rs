//! Least-squares fitting and model selection.

use crate::models::{Fit, Model, PowerFit};

/// Fits `cost ≈ coeff · g(n) + intercept` for one `model` by ordinary
/// least squares over the transformed predictor `x = g(n)`.
///
/// Returns `None` when fewer than two points are given, any coordinate
/// is non-finite (a `NaN` or `±∞` would otherwise poison every sum), or
/// the predictor is degenerate (all `g(n)` equal, for non-constant
/// models).
pub fn fit_model(points: &[(f64, f64)], model: Model) -> Option<Fit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let xs: Vec<f64> = points.iter().map(|&(sz, _)| model.basis(sz)).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, c)| c).collect();
    if xs.iter().chain(&ys).any(|v| !v.is_finite()) {
        return None;
    }

    let (coeff, intercept) = if model == Model::Constant {
        (mean(&ys), 0.0)
    } else {
        let mx = mean(&xs);
        let my = mean(&ys);
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        if sxx < 1e-12 {
            return None;
        }
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let slope = sxy / sxx;
        (slope, my - slope * mx)
    };

    let residuals: Vec<f64> = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| y - (coeff * x + intercept))
        .collect();
    let rss: f64 = residuals.iter().map(|r| r * r).sum();
    let my = mean(&ys);
    let tss: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if tss < 1e-12 {
        if rss < 1e-9 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - rss / tss
    };
    let rmse = (rss / n as f64).sqrt();
    let p = model.parameter_count() as f64;
    // BIC with an epsilon so perfect fits do not take ln(0).
    let bic = n as f64 * ((rss / n as f64).max(1e-12)).ln() + p * (n as f64).ln();

    if !coeff.is_finite() || !intercept.is_finite() {
        return None;
    }
    Some(Fit {
        model,
        coeff,
        intercept,
        r2,
        rmse,
        bic,
        n_points: n,
    })
}

/// Fits every candidate in [`Model::ALL`], dropping degenerate fits.
pub fn fit_all(points: &[(f64, f64)]) -> Vec<Fit> {
    Model::ALL
        .iter()
        .filter_map(|&m| fit_model(points, m))
        .collect()
}

/// Collapses points sharing an x value (exact equality — sweep sizes are
/// integers) into one point at their mean y, in linear space. Repeated
/// measurements at one size would otherwise weight that size by its
/// multiplicity in the least-squares sums, skewing the fit toward
/// oversampled sizes. Points with a `NaN` x pass through untouched (they
/// are rejected downstream). The result is sorted by x.
fn average_duplicate_x(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(sorted.len());
    let mut i = 0;
    while i < sorted.len() {
        let x = sorted[i].0;
        let mut sum = 0.0;
        let mut k = 0usize;
        while i < sorted.len() && sorted[i].0 == x {
            sum += sorted[i].1;
            k += 1;
            i += 1;
        }
        if k == 0 {
            // NaN x never equals itself; keep the point for the finite
            // checks downstream to reject.
            out.push(sorted[i]);
            i += 1;
        } else {
            out.push((x, sum / k as f64));
        }
    }
    out
}

/// Fits all candidates and selects the one with the lowest BIC.
///
/// Negative fitted coefficients on non-constant models are rejected (a
/// cost cannot decrease in its input size asymptotically), falling back
/// to the next-best candidate.
///
/// Degenerate series yield `None` rather than a misleading fit: fewer
/// than three points cannot distinguish the model candidates, and a
/// series whose sizes are all equal carries no scaling information at
/// all (its only consistent fit would be the constant model, which says
/// nothing about growth).
///
/// Points sharing an x value are averaged first, so repeated
/// measurements at one size count once (`n_points` on the returned fit
/// is the number of *distinct* sizes).
pub fn best_fit(points: &[(f64, f64)]) -> Option<Fit> {
    let points = average_duplicate_x(points);
    if points.len() < 3 {
        return None;
    }
    let first = points[0].0;
    if points.iter().all(|&(n, _)| (n - first).abs() < 1e-12) {
        return None;
    }
    let mut fits = fit_all(&points);
    fits.sort_by(|a, b| {
        a.bic
            .partial_cmp(&b.bic)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    fits.into_iter()
        .find(|f| f.model == Model::Constant || f.coeff >= 0.0)
}

/// Fits `cost ≈ coeff · n^exponent` by linear regression in log–log
/// space, using only points with finite `n > 0` and `cost > 0` (so zero
/// sizes can never feed `ln(0) = -∞` into the regression).
///
/// Returns `None` with fewer than three usable points or a degenerate
/// predictor (all usable sizes equal).
///
/// Points sharing an x value are averaged (in linear space, before the
/// log transform), so repeated measurements at one size count once.
/// Unusable points are dropped *before* averaging, matching the
/// streaming fitter's push-time filter.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<PowerFit> {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(n, c)| n > 0.0 && c > 0.0 && n.is_finite() && c.is_finite())
        .collect();
    let logs: Vec<(f64, f64)> = average_duplicate_x(&usable)
        .into_iter()
        .map(|(n, c)| (n.ln(), c.ln()))
        .collect();
    let m = logs.len();
    if m < 3 {
        return None;
    }
    let mx = mean_by(&logs, |p| p.0);
    let my = mean_by(&logs, |p| p.1);
    let sxx: f64 = logs.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
    if sxx < 1e-12 {
        return None;
    }
    let sxy: f64 = logs.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let exponent = sxy / sxx;
    let intercept = my - exponent * mx;
    let rss: f64 = logs
        .iter()
        .map(|(x, y)| {
            let e = y - (exponent * x + intercept);
            e * e
        })
        .sum();
    let tss: f64 = logs.iter().map(|(_, y)| (y - my) * (y - my)).sum();
    let r2 = if tss < 1e-12 { 1.0 } else { 1.0 - rss / tss };
    Some(PowerFit {
        coeff: intercept.exp(),
        exponent,
        r2,
        n_points: m,
    })
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn mean_by<T>(xs: &[T], f: impl Fn(&T) -> f64) -> f64 {
    xs.iter().map(f).sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64, lo: usize, hi: usize) -> Vec<(f64, f64)> {
        (lo..hi).map(|n| (n as f64, f(n as f64))).collect()
    }

    #[test]
    fn recovers_quadratic_coefficient() {
        let pts = series(|n| 0.25 * n * n, 1, 200);
        let fit = best_fit(&pts).expect("fits");
        assert_eq!(fit.model, Model::Quadratic);
        assert!((fit.coeff - 0.25).abs() < 1e-9, "coeff = {}", fit.coeff);
        assert!(fit.r2 > 0.9999);
    }

    #[test]
    fn recovers_linear() {
        let pts = series(|n| 3.0 * n + 7.0, 1, 100);
        let fit = best_fit(&pts).expect("fits");
        assert_eq!(fit.model, Model::Linear);
        assert!((fit.coeff - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 7.0).abs() < 1e-6);
    }

    #[test]
    fn recovers_constant() {
        let pts = series(|_| 42.0, 1, 50);
        let fit = best_fit(&pts).expect("fits");
        assert_eq!(fit.model, Model::Constant);
        assert!((fit.predict(1000.0) - 42.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_linearithmic_not_linear() {
        let pts = series(|n| 2.0 * n * n.log2(), 2, 4000);
        let fit = best_fit(&pts).expect("fits");
        assert_eq!(fit.model, Model::Linearithmic);
    }

    #[test]
    fn recovers_cubic() {
        let pts = series(|n| 0.1 * n * n * n, 1, 100);
        let fit = best_fit(&pts).expect("fits");
        assert_eq!(fit.model, Model::Cubic);
    }

    #[test]
    fn tolerates_noise() {
        // Deterministic pseudo-noise around 0.5*n^2.
        let pts: Vec<(f64, f64)> = (1..300)
            .map(|n| {
                let nf = n as f64;
                let noise = ((n * 2654435761u64 as usize) % 100) as f64 / 100.0 - 0.5;
                (nf, 0.5 * nf * nf * (1.0 + 0.02 * noise))
            })
            .collect();
        let fit = best_fit(&pts).expect("fits");
        assert_eq!(fit.model, Model::Quadratic);
        assert!((fit.coeff - 0.5).abs() < 0.01);
    }

    #[test]
    fn power_law_recovers_exponent() {
        let pts = series(|n| 1.5 * n.powf(2.0), 1, 100);
        let p = fit_power_law(&pts).expect("fits");
        assert!((p.exponent - 2.0).abs() < 1e-6);
        assert!((p.coeff - 1.5).abs() < 1e-6);
    }

    #[test]
    fn power_law_ignores_zero_points() {
        let mut pts = series(|n| n, 1, 50);
        pts.push((0.0, 0.0));
        let p = fit_power_law(&pts).expect("fits");
        assert!((p.exponent - 1.0).abs() < 1e-6);
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(fit_model(&[(1.0, 1.0)], Model::Linear).is_none());
        assert!(fit_power_law(&[(1.0, 1.0), (2.0, 2.0)]).is_none());
        assert!(best_fit(&[]).is_none());
    }

    #[test]
    fn best_fit_under_three_points_is_none() {
        assert!(best_fit(&[(1.0, 1.0)]).is_none());
        assert!(best_fit(&[(1.0, 1.0), (2.0, 4.0)]).is_none());
        // Three points is the minimum that can be fitted.
        assert!(best_fit(&[(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]).is_some());
    }

    #[test]
    fn best_fit_all_equal_sizes_is_none() {
        // Many points at one size carry no scaling information.
        let pts = vec![(7.0, 1.0), (7.0, 2.0), (7.0, 3.0), (7.0, 4.0)];
        assert!(best_fit(&pts).is_none());
    }

    #[test]
    fn power_law_all_equal_sizes_is_none() {
        let pts = vec![(7.0, 1.0), (7.0, 2.0), (7.0, 3.0), (7.0, 4.0)];
        assert!(fit_power_law(&pts).is_none());
    }

    #[test]
    fn power_law_all_zero_sizes_is_none() {
        // Every point is filtered out by the n > 0 guard; no ln(0).
        let pts = vec![(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)];
        assert!(fit_power_law(&pts).is_none());
    }

    #[test]
    fn zero_sizes_never_leak_nan_or_infinity() {
        // A sweep that starts at size 0 still fits, and every reported
        // statistic stays finite (the log bases clamp at n = 1).
        let mut pts = series(|n| 2.0 * n + 1.0, 0, 20);
        pts.insert(0, (0.0, 1.0));
        for fit in fit_all(&pts) {
            assert!(fit.coeff.is_finite(), "{:?} coeff", fit.model);
            assert!(fit.intercept.is_finite(), "{:?} intercept", fit.model);
            assert!(fit.r2.is_finite(), "{:?} r2", fit.model);
            assert!(fit.rmse.is_finite(), "{:?} rmse", fit.model);
            assert!(fit.bic.is_finite(), "{:?} bic", fit.model);
        }
        let best = best_fit(&pts).expect("fits");
        assert!(best.coeff.is_finite() && best.intercept.is_finite());
        if let Some(p) = fit_power_law(&pts) {
            assert!(p.coeff.is_finite() && p.exponent.is_finite());
        }
    }

    #[test]
    fn non_finite_points_are_rejected() {
        let pts = vec![(1.0, 1.0), (2.0, f64::NAN), (3.0, 3.0)];
        assert!(fit_model(&pts, Model::Linear).is_none());
        assert!(best_fit(&pts).is_none());
        let pts = vec![(1.0, 1.0), (f64::INFINITY, 2.0), (3.0, 3.0), (4.0, 4.0)];
        assert!(fit_model(&pts, Model::Linear).is_none());
        // Power law drops the infinite point and fits the rest.
        assert!(fit_power_law(&pts).is_some());
    }

    #[test]
    fn degenerate_predictor_is_none() {
        let pts = vec![(5.0, 1.0), (5.0, 2.0), (5.0, 3.0)];
        assert!(fit_model(&pts, Model::Linear).is_none());
        // Constant still fits.
        assert!(fit_model(&pts, Model::Constant).is_some());
    }

    #[test]
    fn duplicate_x_points_are_averaged() {
        // Perfect linear data, except x=10 is measured three times with
        // symmetric noise. Averaging restores the exact line; weighting
        // by multiplicity would not.
        let mut pts = series(|n| 2.0 * n, 1, 20);
        pts.push((10.0, 15.0));
        pts.push((10.0, 25.0));
        let fit = best_fit(&pts).expect("fits");
        assert_eq!(fit.model, Model::Linear);
        assert!((fit.coeff - 2.0).abs() < 1e-9, "coeff = {}", fit.coeff);
        assert!(fit.intercept.abs() < 1e-6);
        assert_eq!(fit.n_points, 19, "n_points counts distinct sizes");
    }

    #[test]
    fn duplicate_x_oversampling_cannot_skew_the_model() {
        // Quadratic data with one size sampled many times: the repeats
        // must not drag the model choice or the coefficient.
        let mut pts = series(|n| n * n, 1, 40);
        for _ in 0..50 {
            pts.push((5.0, 25.0));
        }
        let fit = best_fit(&pts).expect("fits");
        assert_eq!(fit.model, Model::Quadratic);
        assert!((fit.coeff - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_averages_duplicate_x_in_linear_space() {
        // Two measurements at n=4 averaging to the curve value 16: the
        // linear-space mean of (10, 22) is 16, the log-space mean is not.
        let mut pts = vec![
            (2.0, 4.0),
            (4.0, 10.0),
            (4.0, 22.0),
            (8.0, 64.0),
            (16.0, 256.0),
        ];
        let p = fit_power_law(&pts).expect("fits");
        assert!((p.exponent - 2.0).abs() < 1e-9, "exponent = {}", p.exponent);
        assert!((p.coeff - 1.0).abs() < 1e-9);
        assert_eq!(p.n_points, 4);
        // Collapsing to fewer than three distinct sizes stops fitting.
        pts.retain(|&(n, _)| n <= 4.0);
        assert!(fit_power_law(&pts).is_none());
    }

    #[test]
    fn duplicates_collapsing_below_three_sizes_is_none() {
        let pts = vec![(1.0, 1.0), (1.0, 2.0), (2.0, 4.0), (2.0, 5.0)];
        assert!(best_fit(&pts).is_none());
    }

    #[test]
    fn fit_all_returns_multiple_candidates() {
        let pts = series(|n| n * n, 1, 50);
        let fits = fit_all(&pts);
        assert!(fits.len() >= 5);
    }

    #[test]
    fn negative_slope_prefers_constant() {
        // Decreasing data: non-constant fits have negative coefficients
        // and are rejected, leaving the constant model.
        let pts = series(|n| 100.0 - n, 1, 50);
        let fit = best_fit(&pts).expect("fits");
        assert_eq!(fit.model, Model::Constant);
    }
}
