//! Online cost-function inference.
//!
//! The paper (§3.3) notes that keeping every invocation's ⟨size, cost⟩
//! point "can lead to large memory requirements", and suggests that "an
//! optimized version of a profiler could try to infer the cost function
//! online, and discard the individual data points". This module
//! implements that optimization: [`StreamingFit`] maintains O(1)
//! sufficient statistics per candidate model and produces exactly the
//! same least-squares fits as the batch API, without storing points.
//!
//! One caveat: the batch API averages points that share an x value so a
//! repeatedly-measured size counts once, which constant-memory sums
//! cannot reproduce. The two agree exactly on series with distinct
//! sizes; with duplicates the streaming fit weights each size by its
//! multiplicity.

use crate::models::{Fit, Model, PowerFit};

/// Per-model running sums for ordinary least squares over `x = g(n)`.
#[derive(Debug, Clone, Copy, Default)]
struct Sums {
    n: f64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
    syy: f64,
}

impl Sums {
    fn push(&mut self, x: f64, y: f64) {
        self.n += 1.0;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
        self.syy += y * y;
    }

    fn merge(&mut self, other: &Sums) {
        self.n += other.n;
        self.sx += other.sx;
        self.sy += other.sy;
        self.sxx += other.sxx;
        self.sxy += other.sxy;
        self.syy += other.syy;
    }
}

/// Incremental fitter over all candidate [`Model`]s.
///
/// # Example
///
/// ```
/// use algoprof_fit::{Model, StreamingFit};
///
/// let mut fit = StreamingFit::new();
/// for n in 1..200 {
///     let nf = n as f64;
///     fit.push(nf, 0.25 * nf * nf);
/// }
/// let best = fit.best_fit().expect("enough points");
/// assert_eq!(best.model, Model::Quadratic);
/// assert!((best.coeff - 0.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingFit {
    sums: [Sums; Model::ALL.len()],
    /// Running sums over ⟨ln n, ln cost⟩ for the power-law fit; points
    /// with non-positive or non-finite coordinates are skipped, matching
    /// the batch fitter's filter.
    loglog: Sums,
}

impl StreamingFit {
    /// Creates an empty fitter.
    pub fn new() -> Self {
        StreamingFit::default()
    }

    /// Number of points observed.
    pub fn len(&self) -> usize {
        self.sums[0].n as usize
    }

    /// Whether no point has been observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feeds one ⟨size, cost⟩ observation; O(1) time and memory.
    pub fn push(&mut self, size: f64, cost: f64) {
        for (i, model) in Model::ALL.iter().enumerate() {
            self.sums[i].push(model.basis(size), cost);
        }
        if size > 0.0 && cost > 0.0 && size.is_finite() && cost.is_finite() {
            self.loglog.push(size.ln(), cost.ln());
        }
    }

    /// Merges another fitter's observations (e.g. across runs).
    pub fn merge(&mut self, other: &StreamingFit) {
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            a.merge(b);
        }
        self.loglog.merge(&other.loglog);
    }

    /// The least-squares fit for one model, identical to
    /// [`crate::fit_model`] on the same points.
    pub fn fit_model(&self, model: Model) -> Option<Fit> {
        let idx = Model::ALL.iter().position(|&m| m == model)?;
        let s = &self.sums[idx];
        let n = s.n;
        if n < 2.0 {
            return None;
        }
        let my = s.sy / n;
        let tss = s.syy - n * my * my;

        let (coeff, intercept) = if model == Model::Constant {
            (my, 0.0)
        } else {
            let mx = s.sx / n;
            let sxx = s.sxx - n * mx * mx;
            if sxx < 1e-12 {
                return None;
            }
            let sxy = s.sxy - n * mx * my;
            let slope = sxy / sxx;
            (slope, my - slope * mx)
        };

        // RSS from sufficient statistics:
        //   Σ(y − a·x − b)² = Σy² − 2aΣxy − 2bΣy + a²Σx² + 2abΣx + nb².
        let (a, b) = (coeff, intercept);
        let (sx, sxx_raw, sxy_raw) = if model == Model::Constant {
            (s.n, s.n, s.sy) // g(n)=1 ⇒ x=1 for every point
        } else {
            (s.sx, s.sxx, s.sxy)
        };
        let rss = (s.syy - 2.0 * a * sxy_raw - 2.0 * b * s.sy
            + a * a * sxx_raw
            + 2.0 * a * b * sx
            + n * b * b)
            .max(0.0);

        let r2 = if tss < 1e-12 {
            if rss < 1e-9 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - rss / tss
        };
        let rmse = (rss / n).sqrt();
        let p = model.parameter_count() as f64;
        let bic = n * ((rss / n).max(1e-12)).ln() + p * n.ln();

        Some(Fit {
            model,
            coeff,
            intercept,
            r2,
            rmse,
            bic,
            n_points: n as usize,
        })
    }

    /// The log–log power-law fit, identical to [`crate::fit_power_law`]
    /// on the same points (non-positive / non-finite points skipped).
    pub fn power_law(&self) -> Option<PowerFit> {
        let s = &self.loglog;
        let m = s.n;
        if m < 3.0 {
            return None;
        }
        let mx = s.sx / m;
        let my = s.sy / m;
        let sxx = s.sxx - m * mx * mx;
        if sxx < 1e-12 {
            return None;
        }
        let sxy = s.sxy - m * mx * my;
        let exponent = sxy / sxx;
        let intercept = my - exponent * mx;
        let rss = (s.syy - 2.0 * exponent * s.sxy - 2.0 * intercept * s.sy
            + exponent * exponent * s.sxx
            + 2.0 * exponent * intercept * s.sx
            + m * intercept * intercept)
            .max(0.0);
        let tss = s.syy - m * my * my;
        let r2 = if tss < 1e-12 { 1.0 } else { 1.0 - rss / tss };
        Some(PowerFit {
            coeff: intercept.exp(),
            exponent,
            r2,
            n_points: m as usize,
        })
    }

    /// The best model by BIC (rejecting negative-slope non-constant
    /// fits), identical to [`crate::best_fit`] on the same points when
    /// every size is distinct (see the module docs for the duplicate-x
    /// caveat).
    pub fn best_fit(&self) -> Option<Fit> {
        let mut fits: Vec<Fit> = Model::ALL
            .iter()
            .filter_map(|&m| self.fit_model(m))
            .collect();
        fits.sort_by(|a, b| {
            a.bic
                .partial_cmp(&b.bic)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        fits.into_iter()
            .find(|f| f.model == Model::Constant || f.coeff >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression;

    fn series(f: impl Fn(f64) -> f64, lo: usize, hi: usize) -> Vec<(f64, f64)> {
        (lo..hi).map(|n| (n as f64, f(n as f64))).collect()
    }

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
    }

    /// Streaming and batch must agree on every model for several shapes.
    #[test]
    fn agrees_with_batch_fitting() {
        let shapes: Vec<Vec<(f64, f64)>> = vec![
            series(|n| 0.25 * n * n, 1, 150),
            series(|n| 3.0 * n + 7.0, 1, 100),
            series(|_| 42.0, 1, 50),
            series(|n| 2.0 * n * n.log2() + 5.0, 2, 300),
            series(|n| 0.1 * n * n * n, 1, 60),
        ];
        for pts in shapes {
            let mut stream = StreamingFit::new();
            for &(x, y) in &pts {
                stream.push(x, y);
            }
            for model in Model::ALL {
                let batch = regression::fit_model(&pts, model);
                let online = stream.fit_model(model);
                match (batch, online) {
                    (None, None) => {}
                    (Some(b), Some(o)) => {
                        assert_eq!(b.model, o.model);
                        assert_close(b.coeff, o.coeff, 1e-6 * (1.0 + b.coeff.abs()), "coeff");
                        assert_close(
                            b.intercept,
                            o.intercept,
                            1e-5 * (1.0 + b.intercept.abs()),
                            "intercept",
                        );
                        assert_close(b.r2, o.r2, 1e-6, "r2");
                    }
                    (b, o) => panic!("batch {b:?} vs streaming {o:?}"),
                }
            }
            let b = regression::best_fit(&pts).expect("batch best");
            let o = stream.best_fit().expect("streaming best");
            assert_eq!(b.model, o.model, "model selection agrees");
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let pts = series(|n| 1.5 * n * n, 1, 120);
        let (left, right) = pts.split_at(60);
        let mut a = StreamingFit::new();
        let mut b = StreamingFit::new();
        for &(x, y) in left {
            a.push(x, y);
        }
        for &(x, y) in right {
            b.push(x, y);
        }
        a.merge(&b);
        let merged = a.best_fit().expect("fits");
        let mut whole = StreamingFit::new();
        for &(x, y) in &pts {
            whole.push(x, y);
        }
        let single = whole.best_fit().expect("fits");
        assert_eq!(merged.model, single.model);
        assert!((merged.coeff - single.coeff).abs() < 1e-9);
        assert_eq!(a.len(), 119);
    }

    #[test]
    fn memory_is_constant() {
        // The whole point: size does not depend on the number of points
        // (one Sums block per candidate model plus one for the log–log
        // power-law fit).
        assert_eq!(
            std::mem::size_of::<StreamingFit>(),
            std::mem::size_of::<[Sums; Model::ALL.len() + 1]>()
        );
        let mut s = StreamingFit::new();
        assert!(s.is_empty());
        for n in 1..10_000 {
            s.push(n as f64, n as f64);
        }
        assert_eq!(s.len(), 9_999);
    }

    #[test]
    fn too_few_points_is_none() {
        let mut s = StreamingFit::new();
        s.push(1.0, 1.0);
        assert!(s.best_fit().is_none());
        assert!(s.power_law().is_none());
    }

    /// Streaming power-law must agree with the batch log–log fitter,
    /// including its filtering of non-positive points.
    #[test]
    fn power_law_agrees_with_batch() {
        let shapes: Vec<Vec<(f64, f64)>> = vec![
            series(|n| 1.5 * n * n, 1, 100),
            series(|n| 3.0 * n.powf(1.37), 1, 80),
            {
                let mut pts = series(|n| 2.0 * n, 1, 60);
                pts.push((0.0, 0.0));
                pts.push((5.0, 0.0));
                pts
            },
        ];
        for pts in shapes {
            let mut stream = StreamingFit::new();
            for &(x, y) in &pts {
                stream.push(x, y);
            }
            let batch = regression::fit_power_law(&pts).expect("batch power law");
            let online = stream.power_law().expect("streaming power law");
            assert_close(batch.exponent, online.exponent, 1e-9, "exponent");
            assert_close(
                batch.coeff,
                online.coeff,
                1e-9 * (1.0 + batch.coeff.abs()),
                "coeff",
            );
            assert_close(batch.r2, online.r2, 1e-9, "r2");
            assert_eq!(batch.n_points, online.n_points);
        }
    }
}
