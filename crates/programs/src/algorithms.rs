//! A small classic-algorithms corpus beyond the paper's listings,
//! exercising the cost-model classes the running example does not reach:
//! logarithmic (binary search), linearithmic (merge sort), and a second
//! quadratic shape (bubble sort, whose outer loop — unlike Listing 5 —
//! does access the array and therefore groups).

/// Binary search over a sorted array: the search loop performs
/// ⌈log₂ n⌉ steps per invocation.
///
/// Sizes double from 16 to `max_size` (inclusive); `searches` random
/// probes per size.
pub fn binary_search_program(max_size: usize, searches: usize) -> String {
    format!(
        r#"
class Main {{
    static int main() {{
        for (int size = 16; size <= {max_size}; size = size * 2) {{
            int[] a = build(size);
            Random r = new Random(size);
            for (int q = 0; q < {searches}; q = q + 1) {{
                int idx = search(a, r.nextInt(size * 2));
            }}
        }}
        return 0;
    }}

    static int[] build(int size) {{
        int[] a = new int[size];
        for (int i = 0; i < a.length; i = i + 1) {{ a[i] = i * 2; }}
        return a;
    }}

    static int search(int[] a, int needle) {{
        int lo = 0;
        int hi = a.length;
        while (lo < hi) {{
            int mid = (lo + hi) / 2;
            if (a[mid] == needle) {{ return mid; }}
            if (a[mid] < needle) {{ lo = mid + 1; }} else {{ hi = mid; }}
        }}
        return 0 - 1;
    }}
}}
{rand}
"#,
        rand = crate::listings::GUEST_RANDOM
    )
}

/// Bottom-up linked-list merge sort: Θ(n log n) algorithmic steps. The
/// split loop and the merge loop are children of the `sort` recursion and
/// access the same structure, so the whole sort fuses into one algorithm.
pub fn merge_sort_program(max_size: usize, step: usize, reps: usize) -> String {
    format!(
        r#"
class Main {{
    static int main() {{
        for (int size = 4; size < {max_size}; size = size + {step}) {{
            for (int rep = 0; rep < {reps}; rep = rep + 1) {{
                MNode list = build(size);
                MNode sorted = sort(list);
            }}
        }}
        return 0;
    }}

    static MNode build(int size) {{
        Random r = new Random(size + 13);
        MNode head = null;
        for (int i = 0; i < size; i = i + 1) {{
            MNode n = new MNode(r.nextInt(10000));
            n.next = head;
            head = n;
        }}
        return head;
    }}

    static MNode sort(MNode list) {{
        if (list == null) {{ return null; }}
        if (list.next == null) {{ return list; }}
        // Split with slow/fast pointers.
        MNode slow = list;
        MNode fast = list.next;
        while (fast != null && fast.next != null) {{
            slow = slow.next;
            fast = fast.next.next;
        }}
        MNode second = slow.next;
        slow.next = null;
        return merge(sort(list), sort(second));
    }}

    static MNode merge(MNode a, MNode b) {{
        MNode head = null;
        MNode tail = null;
        while (a != null || b != null) {{
            MNode pick = null;
            if (a == null) {{
                pick = b;
                b = b.next;
            }} else {{
                if (b == null) {{
                    pick = a;
                    a = a.next;
                }} else {{
                    if (a.value <= b.value) {{
                        pick = a;
                        a = a.next;
                    }} else {{
                        pick = b;
                        b = b.next;
                    }}
                }}
            }}
            pick.next = null;
            if (tail == null) {{
                head = pick;
                tail = pick;
            }} else {{
                tail.next = pick;
                tail = pick;
            }}
        }}
        return head;
    }}
}}

class MNode {{
    MNode next;
    int value;
    MNode(int v) {{ this.value = v; }}
}}
{rand}
"#,
        rand = crate::listings::GUEST_RANDOM
    )
}

/// Bubble sort over an int array: Θ(n²) steps, and — in contrast to
/// Listing 5 — the *outer* loop reads the array too (`a[j]` comparisons
/// happen in the inner loop, but the outer loop's swap flag check reads
/// elements), so the nest groups into one algorithm.
pub fn bubble_sort_program(max_size: usize, step: usize, reps: usize) -> String {
    format!(
        r#"
class Main {{
    static int main() {{
        for (int size = 4; size < {max_size}; size = size + {step}) {{
            for (int rep = 0; rep < {reps}; rep = rep + 1) {{
                int[] a = build(size);
                sort(a);
            }}
        }}
        return 0;
    }}

    static int[] build(int size) {{
        Random r = new Random(size + 99);
        int[] a = new int[size];
        for (int i = 0; i < a.length; i = i + 1) {{ a[i] = r.nextInt(10000); }}
        return a;
    }}

    static void sort(int[] a) {{
        for (int end = a.length; end > 1; end = end - 1) {{
            // The outer loop itself touches the array, so the nest groups
            // (contrast with Listing 5).
            int last = a[end - 1];
            for (int j = 0; j + 1 < end; j = j + 1) {{
                if (a[j] > a[j + 1]) {{
                    int tmp = a[j];
                    a[j] = a[j + 1];
                    a[j + 1] = tmp;
                }}
            }}
        }}
    }}
}}
{rand}
"#,
        rand = crate::listings::GUEST_RANDOM
    )
}

/// Square matrix multiplication: Θ(n³) steps in the matrix dimension
/// (n² + n³ combined when the nest is fused — the inner loop accumulates
/// into the result row, so all three loops access the result matrix and
/// group under the shared-input heuristic).
pub fn matmul_program(max_dim: usize, step: usize) -> String {
    format!(
        r#"
class Main {{
    static int main() {{
        for (int n = 2; n <= {max_dim}; n = n + {step}) {{
            int[][] a = build(n, 3);
            int[][] b = build(n, 5);
            int[][] c = multiply(a, b);
        }}
        return 0;
    }}

    static int[][] build(int n, int seed) {{
        int[][] m = new int[n][];
        for (int i = 0; i < m.length; i = i + 1) {{ m[i] = new int[n]; }}
        for (int i = 0; i < n; i = i + 1) {{
            for (int j = 0; j < n; j = j + 1) {{
                m[i][j] = (i * seed + j) % 7;
            }}
        }}
        return m;
    }}

    static int[][] multiply(int[][] a, int[][] b) {{
        int n = a.length;
        int[][] c = new int[n][];
        for (int i = 0; i < c.length; i = i + 1) {{ c[i] = new int[n]; }}
        for (int i = 0; i < n; i = i + 1) {{
            int[] arow = a[i];
            int[] crow = c[i];
            for (int j = 0; j < n; j = j + 1) {{
                crow[j] = 0;
                for (int k = 0; k < n; k = k + 1) {{
                    crow[j] = crow[j] + arow[k] * b[k][j];
                }}
            }}
        }}
        return c;
    }}
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_vm::{compile, Interp, NoopProfiler};

    fn runs(src: &str) {
        let p = compile(src).expect("compiles");
        Interp::new(&p)
            .with_fuel(200_000_000)
            .run(&mut NoopProfiler)
            .expect("runs");
    }

    #[test]
    fn corpus_compiles_and_runs() {
        runs(&binary_search_program(128, 4));
        runs(&merge_sort_program(64, 8, 1));
        runs(&bubble_sort_program(48, 8, 1));
        runs(&matmul_program(12, 2));
    }

    #[test]
    fn matmul_multiplies_correctly() {
        let src = r#"
class Main {
    static int main() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        int[][] a = new int[][] { new int[] {1, 2}, new int[] {3, 4} };
        int[][] b = new int[][] { new int[] {5, 6}, new int[] {7, 8} };
        int[][] c = new int[][] { new int[2], new int[2] };
        for (int i = 0; i < 2; i = i + 1) {
            for (int j = 0; j < 2; j = j + 1) {
                for (int k = 0; k < 2; k = k + 1) {
                    c[i][j] = c[i][j] + a[i][k] * b[k][j];
                }
            }
        }
        if (c[0][0] != 19) { return 0; }
        if (c[0][1] != 22) { return 0; }
        if (c[1][0] != 43) { return 0; }
        if (c[1][1] != 50) { return 0; }
        return 1;
    }
}
"#;
        let p = compile(src).expect("compiles");
        let r = Interp::new(&p).run(&mut NoopProfiler).expect("runs");
        assert_eq!(r.return_value.as_int(), Some(1));
    }

    #[test]
    fn merge_sort_sorts() {
        let src = format!(
            r#"
class Main {{
    static int main() {{
        MNode list = null;
        Random r = new Random(5);
        for (int i = 0; i < 100; i = i + 1) {{
            MNode n = new MNode(r.nextInt(500));
            n.next = list;
            list = n;
        }}
        MNode sorted = sort(list);
        int len = 0;
        MNode cur = sorted;
        while (cur != null) {{
            if (cur.next != null && cur.value > cur.next.value) {{ return 0; }}
            len = len + 1;
            cur = cur.next;
        }}
        if (len != 100) {{ return 0; }}
        return 1;
    }}
    static MNode sort(MNode list) {{
        if (list == null) {{ return null; }}
        if (list.next == null) {{ return list; }}
        MNode slow = list;
        MNode fast = list.next;
        while (fast != null && fast.next != null) {{
            slow = slow.next;
            fast = fast.next.next;
        }}
        MNode second = slow.next;
        slow.next = null;
        return merge(sort(list), sort(second));
    }}
    static MNode merge(MNode a, MNode b) {{
        MNode head = null;
        MNode tail = null;
        while (a != null || b != null) {{
            MNode pick = null;
            if (a == null) {{ pick = b; b = b.next; }}
            else {{
                if (b == null) {{ pick = a; a = a.next; }}
                else {{
                    if (a.value <= b.value) {{ pick = a; a = a.next; }}
                    else {{ pick = b; b = b.next; }}
                }}
            }}
            pick.next = null;
            if (tail == null) {{ head = pick; tail = pick; }}
            else {{ tail.next = pick; tail = pick; }}
        }}
        return head;
    }}
}}
class MNode {{ MNode next; int value; MNode(int v) {{ this.value = v; }} }}
{}
"#,
            crate::listings::GUEST_RANDOM
        );
        let p = compile(&src).expect("compiles");
        let r = Interp::new(&p).run(&mut NoopProfiler).expect("runs");
        assert_eq!(r.return_value.as_int(), Some(1));
    }

    #[test]
    fn bubble_sort_sorts() {
        let src = format!(
            r#"
class Main {{
    static int main() {{
        Random r = new Random(7);
        int[] a = new int[60];
        for (int i = 0; i < a.length; i = i + 1) {{ a[i] = r.nextInt(1000); }}
        for (int end = a.length; end > 1; end = end - 1) {{
            for (int j = 0; j + 1 < end; j = j + 1) {{
                if (a[j] > a[j + 1]) {{
                    int tmp = a[j];
                    a[j] = a[j + 1];
                    a[j + 1] = tmp;
                }}
            }}
        }}
        for (int i = 0; i + 1 < a.length; i = i + 1) {{
            if (a[i] > a[i + 1]) {{ return 0; }}
        }}
        return 1;
    }}
}}
{}
"#,
            crate::listings::GUEST_RANDOM
        );
        let p = compile(&src).expect("compiles");
        let r = Interp::new(&p).run(&mut NoopProfiler).expect("runs");
        assert_eq!(r.return_value.as_int(), Some(1));
    }
}
