//! A small but realistic multi-algorithm application: a library catalog.
//!
//! The paper's §3.5 methodology for realistic programs is to take a
//! traditional CCT hotness profile first, then focus algorithmic
//! profiling on the hot regions. This program gives that workflow
//! something to chew on — one run contains several algorithms with
//! different complexities over *two* distinct recursive structures:
//!
//! * catalog construction — linked `Book` list, Θ(n) construction;
//! * rating sort — insertion sort over the book list, Θ(n²) modification;
//! * index construction — a binary search tree keyed by book id,
//!   Θ(log n) per insertion;
//! * lookups — BST search, Θ(log n) per query;
//! * report — output writes.

/// Builds the catalog application for catalog sizes swept up to
/// `max_size` (exclusive) in steps of `step`, with `queries` index
/// lookups per run.
pub fn catalog_program(max_size: usize, step: usize, queries: usize) -> String {
    format!(
        r#"
class Main {{
    static int main() {{
        for (int size = 8; size < {max_size}; size = size + {step}) {{
            runCatalog(size);
        }}
        return 0;
    }}

    static void runCatalog(int size) {{
        Book books = buildCatalog(size);
        books = sortByRating(books);
        Index index = buildIndex(books);
        int found = runQueries(index, size, {queries});
        report(books, 3);
    }}

    // Θ(n) construction of the Book list.
    static Book buildCatalog(int size) {{
        Random r = new Random(size + 41);
        Book head = null;
        for (int i = 0; i < size; i = i + 1) {{
            Book b = new Book(i, r.nextInt(100));
            b.next = head;
            head = b;
        }}
        return head;
    }}

    // Θ(n²) insertion sort by rating (ascending), relinking in place.
    static Book sortByRating(Book head) {{
        Book sorted = null;
        Book cur = head;
        while (cur != null) {{
            Book next = cur.next;
            if (sorted == null || cur.rating <= sorted.rating) {{
                cur.next = sorted;
                sorted = cur;
            }} else {{
                Book scan = sorted;
                while (scan.next != null && scan.next.rating < cur.rating) {{
                    scan = scan.next;
                }}
                cur.next = scan.next;
                scan.next = cur;
            }}
            cur = next;
        }}
        return sorted;
    }}

    // Builds the id index; each insertion is Θ(log n) on random ids.
    static Index buildIndex(Book books) {{
        Index index = new Index();
        Book cur = books;
        while (cur != null) {{
            index.root = insert(index.root, cur.id * 2654435761 % 1000003, cur.id);
            cur = cur.next;
        }}
        return index;
    }}

    static BTNode insert(BTNode node, int key, int id) {{
        if (node == null) {{ return new BTNode(key, id); }}
        if (key < node.key) {{
            node.left = insert(node.left, key, id);
        }} else {{
            node.right = insert(node.right, key, id);
        }}
        return node;
    }}

    static int runQueries(Index index, int size, int queries) {{
        Random r = new Random(size * 3 + 1);
        int found = 0;
        for (int q = 0; q < queries; q = q + 1) {{
            int key = r.nextInt(size) * 2654435761 % 1000003;
            if (lookup(index.root, key) >= 0) {{ found = found + 1; }}
        }}
        return found;
    }}

    static int lookup(BTNode node, int key) {{
        if (node == null) {{ return 0 - 1; }}
        if (key == node.key) {{ return node.id; }}
        if (key < node.key) {{ return lookup(node.left, key); }}
        return lookup(node.right, key);
    }}

    static void report(Book books, int top) {{
        Book cur = books;
        for (int i = 0; i < top; i = i + 1) {{
            if (cur == null) {{ return; }}
            print(cur.rating);
            cur = cur.next;
        }}
    }}
}}

class Book {{
    Book next;
    int id;
    int rating;
    Book(int id, int rating) {{
        this.id = id;
        this.rating = rating;
    }}
}}

class Index {{
    BTNode root;
}}

class BTNode {{
    BTNode left;
    BTNode right;
    int key;
    int id;
    BTNode(int key, int id) {{
        this.key = key;
        this.id = id;
    }}
}}
{rand}
"#,
        rand = crate::listings::GUEST_RANDOM
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_vm::{compile, Interp, NoopProfiler};

    #[test]
    fn catalog_compiles_and_runs() {
        let p = compile(&catalog_program(40, 8, 5)).expect("compiles");
        Interp::new(&p)
            .with_fuel(100_000_000)
            .run(&mut NoopProfiler)
            .expect("runs");
    }

    #[test]
    fn catalog_sorts_correctly() {
        // Variant that checks sortedness and index consistency.
        let src = catalog_program(24, 8, 2).replace(
            "static int main() {",
            r#"static int check() {
        Book books = buildCatalog(50);
        books = sortByRating(books);
        Book cur = books;
        while (cur != null && cur.next != null) {
            if (cur.rating > cur.next.rating) { return 0; }
            cur = cur.next;
        }
        return 1;
    }

    static int main() {
        if (check() == 0) { return 0 - 1; }
"#,
        );
        let p = compile(&src).expect("compiles");
        let r = Interp::new(&p)
            .with_fuel(100_000_000)
            .run(&mut NoopProfiler)
            .expect("runs");
        assert_eq!(r.return_value.as_int(), Some(0), "sorted check passed");
    }
}
