//! Guest-program corpus for the AlgoProf reproduction: every listing from
//! the paper plus the 18 Table-1 data-structure programs, all written in
//! the jay guest language.

pub mod algorithms;
pub mod casestudy;
pub mod lint_corpus;
pub mod listings;
pub mod table1;

pub use algorithms::{
    binary_search_program, bubble_sort_program, matmul_program, merge_sort_program,
};
pub use casestudy::catalog_program;
pub use lint_corpus::{
    crossval_disagreement_program, near_misses, seeded_bugs, NearMiss, SeededBug,
};
pub use listings::{
    array_list_program, functional_sort_program, insertion_sort_program, sized_array_list_program,
    sized_insertion_sort_array_program, sized_insertion_sort_program, GrowthPolicy, SortWorkload,
    GUEST_RANDOM, LISTING1_LIST, LISTING3, LISTING4, LISTING5,
};
pub use table1::{table1_programs, Grouping, Table1Outcome, Table1Program};
