//! Seeded-bug corpus for the static analyzer (`algoprof lint`).
//!
//! Three fixture families, each a complete jay program:
//!
//! * [`seeded_bugs`] — programs seeded with exactly one defect each,
//!   covering every lint in the AP001–AP007 catalog. Each fixture knows
//!   the code and source line its diagnostic must fire on, so tests pin
//!   spans, not just presence.
//! * [`near_misses`] — the same shapes with the defect *repaired* (a
//!   `break` added, a base case restored, the write read back). These
//!   must lint clean: they are the false-positive guard.
//! * [`crossval_disagreement_program`] — a sized program whose static
//!   prediction is deliberately wrong: an inner loop is bounded by a
//!   field that is always zero at run time, so the analyzer predicts
//!   O(n²) for a traversal that dynamically costs O(n). Sweeping it must
//!   flag the disagreement in every report format.

/// One program seeded with a single known defect.
#[derive(Debug, Clone, Copy)]
pub struct SeededBug {
    /// Fixture name (stable, test-friendly).
    pub name: &'static str,
    /// Complete jay source.
    pub source: &'static str,
    /// Lint code that must fire, e.g. `"AP001"`.
    pub code: &'static str,
    /// Source line the diagnostic must point at (1-based).
    pub line: u32,
    /// Whether the expected diagnostic is error-level (drives the lint
    /// exit code: errors fail plain `lint`, warnings only `--strict`).
    pub error: bool,
}

/// One defect-free sibling of a seeded bug: same shape, repaired.
#[derive(Debug, Clone, Copy)]
pub struct NearMiss {
    /// Fixture name.
    pub name: &'static str,
    /// Complete jay source. Must produce **zero** diagnostics.
    pub source: &'static str,
    /// The lint the sibling seeded fixture fires (documentation of what
    /// this near-miss guards against).
    pub guards: &'static str,
}

/// Every seeded-bug fixture; each lint code appears at least once.
pub fn seeded_bugs() -> Vec<SeededBug> {
    vec![
        SeededBug {
            name: "ap001_frozen_counter",
            source: "class Main {
    static int main() {
        int i = 0;
        int s = 0;
        while (i < 10) { s = s + 1; }
        return s;
    }
}",
            code: "AP001",
            line: 5,
            error: true,
        },
        SeededBug {
            name: "ap001_frozen_null_chase",
            source: "class Main {
    static int main() {
        Node head = new Node();
        Node c = head;
        int s = 0;
        while (c != null) { s = s + 1; }
        return s;
    }
}
class Node { int tag; }",
            code: "AP001",
            line: 6,
            error: true,
        },
        SeededBug {
            name: "ap002_no_base_case",
            source: "class Main {
    static int main() {
        return Main.count(5);
    }
    static int count(int n) {
        return Main.count(n - 1);
    }
}",
            code: "AP002",
            line: 6,
            error: true,
        },
        SeededBug {
            name: "ap003_after_return",
            source: "class Main {
    static int main() {
        int s = 1;
        return s;
        s = 1 + 1;
    }
}",
            code: "AP003",
            line: 5,
            error: false,
        },
        SeededBug {
            name: "ap003_after_exhaustive_if",
            source: "class Main {
    static int main() {
        int n = 3;
        if (n > 0) { return 1; } else { return 0; }
        int z = 4 + 5;
        return z;
    }
}",
            code: "AP003",
            line: 5,
            error: false,
        },
        SeededBug {
            name: "ap004_write_only_local",
            source: "class Main {
    static int main() {
        int unused = 40 + 2;
        return 0;
    }
}",
            code: "AP004",
            line: 3,
            error: false,
        },
        SeededBug {
            name: "ap004_write_only_field",
            source: "class Main {
    static int main() {
        Box b = new Box();
        b.tag = 7;
        return 0;
    }
}
class Box { int tag; }",
            code: "AP004",
            line: 4,
            error: false,
        },
        SeededBug {
            name: "ap005_const_index_oob",
            source: "class Main {
    static int main() {
        int[] a = new int[3];
        return a[5];
    }
}",
            code: "AP005",
            line: 4,
            error: true,
        },
        SeededBug {
            name: "ap006_div_by_zero",
            source: "class Main {
    static int main() {
        int z = 0;
        return 10 / z;
    }
}",
            code: "AP006",
            line: 4,
            error: true,
        },
        SeededBug {
            name: "ap007_join_of_constant",
            source: "class Main {
    static int main() {
        int t = 3;
        return join t;
    }
}",
            code: "AP007",
            line: 4,
            error: false,
        },
        SeededBug {
            name: "ap007_double_join",
            source: "class Main {
    static int main() {
        int t1 = spawn work(4);
        int a = join t1;
        int b = join t1;
        return a + b;
    }
    static int work(int n) { return n * 2; }
}",
            code: "AP007",
            line: 5,
            error: false,
        },
        SeededBug {
            name: "ap007_lock_never_unlocked",
            source: "class Main {
    static int main() {
        Box b = new Box();
        lock b;
        b.v = 1;
        return b.v;
    }
}
class Box { int v; }",
            code: "AP007",
            line: 6,
            error: false,
        },
    ]
}

/// Defect-free siblings: each must produce zero diagnostics.
pub fn near_misses() -> Vec<NearMiss> {
    vec![
        NearMiss {
            name: "near_ap001_break_escapes",
            source: "class Main {
    static int main() {
        int i = 0;
        int s = 0;
        while (i < 10) { s = s + 1; if (s > 3) { break; } }
        return s + i;
    }
}",
            guards: "AP001",
        },
        NearMiss {
            name: "near_ap001_chase_advances",
            source: "class Main {
    static int main() {
        Node head = new Node();
        Node c = head;
        int s = 0;
        while (c != null) { s = s + 1; c = c.next; }
        return s;
    }
}
class Node { Node next; }",
            guards: "AP001",
        },
        NearMiss {
            name: "near_ap002_base_case",
            source: "class Main {
    static int main() {
        return Main.count(5);
    }
    static int count(int n) {
        if (n <= 0) { return 0; }
        return Main.count(n - 1);
    }
}",
            guards: "AP002",
        },
        NearMiss {
            name: "near_ap003_single_arm_returns",
            source: "class Main {
    static int main() {
        int n = 3;
        if (n > 0) { return 1; }
        int z = 4 + 5;
        return z;
    }
}",
            guards: "AP003",
        },
        NearMiss {
            name: "near_ap004_field_read_back",
            source: "class Main {
    static int main() {
        Box b = new Box();
        b.tag = 7;
        return b.tag;
    }
}
class Box { int tag; }",
            guards: "AP004",
        },
        NearMiss {
            name: "near_ap005_ap006_in_bounds",
            source: "class Main {
    static int main() {
        int[] a = new int[3];
        a[2] = 8;
        return a[2] / 2;
    }
}",
            guards: "AP005",
        },
        NearMiss {
            name: "near_ap007_spawn_then_join",
            source: "class Main {
    static int main() {
        int t1 = spawn work(4);
        return join t1;
    }
    static int work(int n) { return n * 2; }
}",
            guards: "AP007",
        },
        NearMiss {
            name: "near_ap007_balanced_lock",
            source: "class Main {
    static int main() {
        Box b = new Box();
        lock b;
        b.v = b.v + 1;
        unlock b;
        return b.v;
    }
}
class Box { int v; }",
            guards: "AP007",
        },
        NearMiss {
            name: "near_ap007_both_branches_unlock",
            source: "class Main {
    static int main() {
        Box b = new Box();
        lock b;
        if (b.v > 0) { b.v = 2; unlock b; } else { unlock b; }
        return b.v;
    }
}
class Box { int v; }",
            guards: "AP007",
        },
    ]
}

/// A sized traversal whose static prediction deliberately disagrees with
/// its dynamic fit.
///
/// The inner `while (j < zero)` loop is bounded by a field read the
/// analyzer cannot evaluate, so it classifies the bound as
/// linear-in-local and predicts O(n²) for the enclosing null-chase
/// traversal. At run time the field holds its default value `0`, the
/// inner loop never iterates, and the traversal measures — and fits —
/// O(n). Sweeping this program must mark the traversal series
/// `DISAGREES` in the text, JSON, and HTML reports, while the
/// construction loop agrees (predicted and fitted linear).
pub fn crossval_disagreement_program() -> &'static str {
    "class Main {
    static int main() {
        int n = readInput();
        Node head = null;
        int zero = 0;
        int s = 0;
        int j = 0;
        Node c = null;
        for (int i = 0; i < n; i = i + 1) {
            Node x = new Node();
            x.next = head;
            head = x;
        }
        zero = head.pad;
        c = head;
        while (c != null) {
            j = 0;
            while (j < zero) { j = j + 1; }
            s = s + 1;
            c = c.next;
        }
        return s;
    }
}
class Node { Node next; int pad; }"
}
