//! The paper's code listings, ported line-for-line to the jay guest
//! language.
//!
//! * [`insertion_sort_program`] — Listing 1 (doubly-linked-list insertion
//!   sort) driven by Listing 2's harness, parameterized by workload
//!   (random / sorted / reverse-sorted lists, for Figure 1 a–c).
//! * [`functional_sort_program`] — the §4.3 paradigm-agnosticism study: a
//!   recursive insertion sort over an immutable list.
//! * [`array_list_program`] — Listing 6: an array-backed list growing by
//!   one element (naive) or by doubling (ideal), for Figures 4 and 5.
//! * [`LISTING3`], [`LISTING4`], [`LISTING5`] — the small illustrative
//!   listings.

use std::fmt;

/// Input orderings for the insertion-sort harness (Figure 1 a–c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortWorkload {
    /// Uniformly random values (Figure 1a): expected steps ≈ 0.25·n².
    Random,
    /// Already sorted input (Figure 1b): steps ≈ n.
    Sorted,
    /// Reverse-sorted input (Figure 1c): steps ≈ 0.5·n².
    Reversed,
}

impl fmt::Display for SortWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SortWorkload::Random => "random",
            SortWorkload::Sorted => "sorted",
            SortWorkload::Reversed => "reversed",
        })
    }
}

/// The `List`/`Node` classes of Listing 1, verbatim modulo syntax.
pub const LISTING1_LIST: &str = r#"
class List {
    Node head;
    Node tail;

    // Ported from Listing 1 with one change: the paper's pre-loop
    // shortcut (`firstUnsorted = head.next` after an emptiness check)
    // reads `Node.next` *outside* the loops, which would attribute a
    // structure access to the enclosing harness loop and fuse it with
    // the sort algorithm. Starting at `head` (whose first iteration is a
    // no-op) keeps every Node access inside the repetition, matching the
    // attribution shown in the paper's Figure 3.
    void sort() {
        Node firstUnsorted = head;
        while (firstUnsorted != null) {
            Node target = firstUnsorted;
            Node nextUnsorted = firstUnsorted.next;
            while (target.prev != null && target.prev.value > target.value) {
                Node candidate = target.prev;
                Node pred = candidate.prev;
                Node succ = target.next;
                if (pred != null) {
                    pred.next = target;
                } else {
                    head = target;
                }
                target.prev = pred;
                if (succ != null) {
                    succ.prev = candidate;
                } else {
                    tail = candidate;
                }
                candidate.next = succ;
                target.next = candidate;
                candidate.prev = target;
            }
            firstUnsorted = nextUnsorted;
        }
    }

    void append(int value) {
        Node node = new Node(value);
        if (tail == null) {
            tail = node;
            head = tail;
        } else {
            tail.next = node;
            node.prev = tail;
            tail = tail.next;
        }
    }
}

class Node {
    Node prev;
    Node next;
    int value;
    Node(int value) { this.value = value; }
}
"#;

/// A deterministic linear-congruential generator, implemented *in the
/// guest language* so the profiled program is self-contained (the paper's
/// harness uses `java.util.Random`).
pub const GUEST_RANDOM: &str = r#"
class Random {
    int seed;
    Random(int seed) { this.seed = seed * 2 + 1; }
    int nextInt(int bound) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        if (seed < 0) { seed = 0 - seed; }
        if (bound <= 0) { return 0; }
        return seed % bound;
    }
}
"#;

/// The full running example: Listing 2's harness (sweeping list sizes)
/// over Listing 1's sort.
///
/// `max_size` and `step` control the size sweep `0, step, 2·step, ... <
/// max_size`; `reps` repeats each size (the paper uses 0..1000 ×10; that
/// is feasible but slow under full profiling, so benchmarks default to a
/// smaller sweep with identical shape).
pub fn insertion_sort_program(
    workload: SortWorkload,
    max_size: usize,
    step: usize,
    reps: usize,
) -> String {
    let construct = match workload {
        SortWorkload::Random => {
            "Random r = new Random(size + 7);
            for (int i = 0; i < size; i = i + 1) {
                list.append(r.nextInt(size));
            }"
        }
        SortWorkload::Sorted => {
            "for (int i = 0; i < size; i = i + 1) {
                list.append(i);
            }"
        }
        SortWorkload::Reversed => {
            "for (int i = 0; i < size; i = i + 1) {
                list.append(size - i);
            }"
        }
    };
    format!(
        r#"
class Main {{
    static int main() {{
        measure();
        return 0;
    }}

    static void measure() {{
        for (int size = 0; size < {max_size}; size = size + {step}) {{
            for (int rep = 0; rep < {reps}; rep = rep + 1) {{
                List list = new List();
                constructList(list, size);
                sort(list);
            }}
        }}
    }}

    static void constructList(List list, int size) {{
        {construct}
    }}

    static void sort(List list) {{
        list.sort();
    }}
}}
{LISTING1_LIST}
{GUEST_RANDOM}
"#
    )
}

/// §4.3: a functional, recursive insertion sort over an immutable list.
/// The implementation looks entirely different from Listing 1, yet its
/// algorithmic profile must agree (same repetition structure, same
/// complexity).
pub fn functional_sort_program(
    workload: SortWorkload,
    max_size: usize,
    step: usize,
    reps: usize,
) -> String {
    let construct = match workload {
        SortWorkload::Random => {
            "Random r = new Random(size + 7);
            FNode list = null;
            for (int i = 0; i < size; i = i + 1) {
                list = FList.cons(r.nextInt(size), list);
            }
            return list;"
        }
        SortWorkload::Sorted => {
            "FNode list = null;
            for (int i = 0; i < size; i = i + 1) {
                list = FList.cons(size - i, list);
            }
            return list;"
        }
        SortWorkload::Reversed => {
            "FNode list = null;
            for (int i = 0; i < size; i = i + 1) {
                list = FList.cons(i, list);
            }
            return list;"
        }
    };
    format!(
        r#"
class Main {{
    static int main() {{
        for (int size = 0; size < {max_size}; size = size + {step}) {{
            for (int rep = 0; rep < {reps}; rep = rep + 1) {{
                FNode list = construct(size);
                FNode sorted = FList.sort(list);
            }}
        }}
        return 0;
    }}

    static FNode construct(int size) {{
        {construct}
    }}
}}

class FNode {{
    int value;
    FNode next;
    FNode(int value, FNode next) {{ this.value = value; this.next = next; }}
}}

class FList {{
    static FNode cons(int value, FNode next) {{
        return new FNode(value, next);
    }}

    // Insertion sort: sort the tail recursively, then insert the head.
    static FNode sort(FNode list) {{
        if (list == null) {{ return null; }}
        return insert(list.value, sort(list.next));
    }}

    // Rebuild the prefix until the insertion point (immutable insert).
    static FNode insert(int value, FNode sorted) {{
        if (sorted == null) {{ return new FNode(value, null); }}
        if (value <= sorted.value) {{ return new FNode(value, sorted); }}
        return new FNode(sorted.value, insert(value, sorted.next));
    }}
}}
{GUEST_RANDOM}
"#
    )
}

/// How the array-backed list of Listing 6 grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthPolicy {
    /// `new array[length + 1]` — the naive quadratic version.
    ByOne,
    /// `new array[length * 2]` — the ideal linear version.
    Doubling,
}

impl fmt::Display for GrowthPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GrowthPolicy::ByOne => "grow-by-1",
            GrowthPolicy::Doubling => "doubling",
        })
    }
}

/// Listing 6: appending `size` elements to a dynamically growing
/// array-backed list, swept over sizes as in Figure 5. Payloads are
/// objects (the paper appends strings), so snapshot identity across
/// reallocation flows through the element references.
pub fn array_list_program(
    policy: GrowthPolicy,
    max_size: usize,
    step: usize,
    reps: usize,
) -> String {
    let grow = match policy {
        GrowthPolicy::ByOne => "Object[] newArray = new Object[array.length + 1];",
        GrowthPolicy::Doubling => "Object[] newArray = new Object[array.length * 2];",
    };
    format!(
        r#"
class Main {{
    static int main() {{
        for (int size = 1; size < {max_size}; size = size + {step}) {{
            for (int rep = 0; rep < {reps}; rep = rep + 1) {{
                testForSize(size);
            }}
        }}
        return 0;
    }}

    static void testForSize(int size) {{
        ArrayList list = new ArrayList();
        for (int i = 0; i < size; i = i + 1) {{
            list.append(new Item(i));
        }}
    }}
}}

class ArrayList {{
    Object[] array;
    int size;

    ArrayList() {{
        array = new Object[1];
        size = 0;
    }}

    void append(Object value) {{
        growIfFull();
        array[size] = value;
        size = size + 1;
    }}

    void growIfFull() {{
        if (size == array.length) {{
            {grow}
            for (int i = 0; i < array.length; i = i + 1) {{
                newArray[i] = array[i];
            }}
            array = newArray;
        }}
    }}
}}

class Item {{
    int v;
    Item(int v) {{ this.v = v; }}
}}
"#
    )
}

/// The sweep-engine variant of [`array_list_program`]: instead of a
/// baked-in size loop, `main` reads **one size from `readInput()`** and
/// appends that many elements. `algoprof sweep` serves the swept size as
/// the first input value, so one execution covers exactly one size and
/// the ⟨size, cost⟩ points come from merging runs.
pub fn sized_array_list_program(policy: GrowthPolicy) -> String {
    let grow = match policy {
        GrowthPolicy::ByOne => "Object[] newArray = new Object[array.length + 1];",
        GrowthPolicy::Doubling => "Object[] newArray = new Object[array.length * 2];",
    };
    format!(
        r#"
class Main {{
    static int main() {{
        int size = readInput();
        ArrayList list = new ArrayList();
        for (int i = 0; i < size; i = i + 1) {{
            list.append(new Item(i));
        }}
        return list.size;
    }}
}}

class ArrayList {{
    Object[] array;
    int size;

    ArrayList() {{
        array = new Object[1];
        size = 0;
    }}

    void append(Object value) {{
        growIfFull();
        array[size] = value;
        size = size + 1;
    }}

    void growIfFull() {{
        if (size == array.length) {{
            {grow}
            for (int i = 0; i < array.length; i = i + 1) {{
                newArray[i] = array[i];
            }}
            array = newArray;
        }}
    }}
}}

class Item {{
    int v;
    Item(int v) {{ this.v = v; }}
}}
"#
    )
}

/// The sweep-engine variant of [`insertion_sort_program`]: `main` reads
/// one list size from `readInput()`, constructs a single list of that
/// size, and sorts it once.
pub fn sized_insertion_sort_program(workload: SortWorkload) -> String {
    let construct = match workload {
        SortWorkload::Random => {
            "Random r = new Random(size + 7);
            for (int i = 0; i < size; i = i + 1) {
                list.append(r.nextInt(size));
            }"
        }
        SortWorkload::Sorted => {
            "for (int i = 0; i < size; i = i + 1) {
                list.append(i);
            }"
        }
        SortWorkload::Reversed => {
            "for (int i = 0; i < size; i = i + 1) {
                list.append(size - i);
            }"
        }
    };
    format!(
        r#"
class Main {{
    static int main() {{
        int size = readInput();
        List list = new List();
        constructList(list, size);
        sort(list);
        return 0;
    }}

    static void constructList(List list, int size) {{
        {construct}
    }}

    static void sort(List list) {{
        list.sort();
    }}
}}
{LISTING1_LIST}
{GUEST_RANDOM}
"#
    )
}

/// Array-backed variant of [`sized_insertion_sort_program`]: a classic
/// in-place insertion sort over `int[]` whose loop bounds the static
/// analyzer solves exactly, predicting the inner repetition's cost as
/// `0.5*n^2 + 0.5*n - 1`. The [`SortWorkload::Reversed`] fill drives
/// the worst case, so the dynamic sweep's fitted leading coefficient
/// lands on the predicted 0.5 and the coefficient verdict is
/// `[agrees]`.
pub fn sized_insertion_sort_array_program(workload: SortWorkload) -> String {
    let fill = match workload {
        SortWorkload::Random => {
            "Random r = new Random(a.length + 7);
            for (int i = 0; i < a.length; i = i + 1) { a[i] = r.nextInt(a.length); }"
        }
        SortWorkload::Sorted => "for (int i = 0; i < a.length; i = i + 1) { a[i] = i; }",
        SortWorkload::Reversed => {
            "for (int i = 0; i < a.length; i = i + 1) { a[i] = a.length - i; }"
        }
    };
    format!(
        r#"
class Main {{
    static int main() {{
        int size = readInput();
        int[] a = new int[size];
        fill(a);
        sort(a);
        return a.length;
    }}

    static void fill(int[] a) {{
        {fill}
    }}

    static void sort(int[] a) {{
        for (int i = 1; i < a.length; i = i + 1) {{
            int key = a[i];
            int j = i;
            while (j > 0 && a[j - 1] > key) {{
                a[j] = a[j - 1];
                j = j - 1;
            }}
            a[j] = key;
        }}
    }}
}}
{GUEST_RANDOM}
"#
    )
}

/// Listing 3: the triangular loop nest used to explain cost combination
/// (outer 3 iterations + inner 0+1+2 = 6 algorithmic steps).
pub const LISTING3: &str = r#"
class Main {
    static int main() {
        int s = 0;
        for (int o = 0; o < 3; o = o + 1) {
            for (int i = 0; i < o; i = i + 1) {
                s = s + 1;
            }
        }
        return s;
    }
}
"#;

/// Listing 4: constructions whose first access cannot see the whole
/// structure — the motivation for re-measuring inputs at repetition exit.
pub const LISTING4: &str = r#"
class Main {
    static int main() {
        LNode byLoop = constructListWithLoop(25);
        LNode byRec = constructListWithRecursion(25);
        constructPartiallyUsedArray();
        return 0;
    }

    static LNode constructListWithLoop(int size) {
        LNode list = null;
        for (int i = 0; i < size; i = i + 1) {
            LNode head = new LNode();
            // first PUTFIELD: reachable structure size 1
            head.next = list;
            list = head;
        }
        return list;
    }

    static LNode constructListWithRecursion(int size) {
        if (size == 0) { return null; }
        LNode list = constructListWithRecursion(size - 1);
        LNode head = new LNode();
        // first PUTFIELD: reachable structure size 1
        head.next = list;
        return head;
    }

    static void constructPartiallyUsedArray() {
        int[] values = new int[1000];
        for (int i = 0; i < 10; i = i + 1) {
            // first IASTORE: array "size" 1
            values[i] = i * 2;
        }
    }
}

class LNode {
    LNode next;
}
"#;

/// Listing 5: the 2-d array loop nest that AlgoProf fails to group — the
/// outer loop performs no array access itself, so the two loops become
/// separate algorithms (the `-` rows of Table 1).
pub const LISTING5: &str = r#"
class Main {
    static int main() {
        int[][] array = new int[][] {
            new int[8], new int[8], new int[8], new int[8]
        };
        for (int i = 0; i < array.length; i = i + 1) {
            // no access to array[i] here
            for (int j = 0; j < array[i].length; j = j + 1) {
                array[i][j] = i * j;
            }
        }
        return array[3][7];
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use algoprof_vm::{compile, Interp, NoopProfiler};

    fn runs(src: &str) {
        let p = compile(src).expect("compiles");
        Interp::new(&p)
            .with_fuel(200_000_000)
            .run(&mut NoopProfiler)
            .expect("runs");
    }

    /// Runs a sweep-corpus program with its size served via `readInput`.
    fn runs_sized(src: &str, size: i64) {
        let p = compile(src).expect("compiles");
        Interp::new(&p)
            .with_input(vec![size])
            .with_fuel(200_000_000)
            .run(&mut NoopProfiler)
            .expect("runs");
    }

    #[test]
    fn sized_array_list_programs_compile_and_run() {
        for policy in [GrowthPolicy::ByOne, GrowthPolicy::Doubling] {
            runs_sized(&sized_array_list_program(policy), 33);
        }
    }

    #[test]
    fn sized_insertion_sort_programs_compile_and_run() {
        for w in [
            SortWorkload::Random,
            SortWorkload::Sorted,
            SortWorkload::Reversed,
        ] {
            runs_sized(&sized_insertion_sort_program(w), 24);
        }
    }

    #[test]
    fn sized_insertion_sort_array_programs_compile_and_run() {
        for w in [
            SortWorkload::Random,
            SortWorkload::Sorted,
            SortWorkload::Reversed,
        ] {
            runs_sized(&sized_insertion_sort_array_program(w), 24);
        }
    }

    #[test]
    fn insertion_sort_programs_compile_and_run() {
        for w in [
            SortWorkload::Random,
            SortWorkload::Sorted,
            SortWorkload::Reversed,
        ] {
            runs(&insertion_sort_program(w, 40, 10, 2));
        }
    }

    #[test]
    fn insertion_sort_actually_sorts() {
        // A variant that checks sortedness and prints a verdict.
        let src = format!(
            r#"
class Main {{
    static int main() {{
        List list = new List();
        Random r = new Random(3);
        for (int i = 0; i < 100; i = i + 1) {{ list.append(r.nextInt(50)); }}
        list.sort();
        Node cur = list.head;
        while (cur != null && cur.next != null) {{
            if (cur.value > cur.next.value) {{ return 0; }}
            cur = cur.next;
        }}
        return 1;
    }}
}}
{LISTING1_LIST}
{GUEST_RANDOM}
"#
        );
        let p = compile(&src).expect("compiles");
        let r = Interp::new(&p).run(&mut NoopProfiler).expect("runs");
        assert_eq!(r.return_value.as_int(), Some(1), "list must end up sorted");
    }

    #[test]
    fn functional_sort_sorts() {
        let src = format!(
            r#"
class Main {{
    static int main() {{
        Random r = new Random(5);
        FNode list = null;
        for (int i = 0; i < 80; i = i + 1) {{ list = FList.cons(r.nextInt(40), list); }}
        FNode sorted = FList.sort(list);
        FNode cur = sorted;
        int len = 0;
        while (cur != null) {{
            if (cur.next != null && cur.value > cur.next.value) {{ return 0; }}
            len = len + 1;
            cur = cur.next;
        }}
        if (len != 80) {{ return 0; }}
        return 1;
    }}
}}

class FNode {{
    int value;
    FNode next;
    FNode(int value, FNode next) {{ this.value = value; this.next = next; }}
}}

class FList {{
    static FNode cons(int value, FNode next) {{ return new FNode(value, next); }}
    static FNode sort(FNode list) {{
        if (list == null) {{ return null; }}
        return insert(list.value, sort(list.next));
    }}
    static FNode insert(int value, FNode sorted) {{
        if (sorted == null) {{ return new FNode(value, null); }}
        if (value <= sorted.value) {{ return new FNode(value, sorted); }}
        return new FNode(sorted.value, insert(value, sorted.next));
    }}
}}
{GUEST_RANDOM}
"#
        );
        let p = compile(&src).expect("compiles");
        let r = Interp::new(&p).run(&mut NoopProfiler).expect("runs");
        assert_eq!(r.return_value.as_int(), Some(1));
    }

    #[test]
    fn functional_sort_program_compiles_and_runs() {
        runs(&functional_sort_program(SortWorkload::Random, 30, 10, 1));
    }

    #[test]
    fn array_list_programs_run() {
        runs(&array_list_program(GrowthPolicy::ByOne, 40, 10, 1));
        runs(&array_list_program(GrowthPolicy::Doubling, 40, 10, 1));
    }

    #[test]
    fn listing3_computes_three() {
        let p = compile(LISTING3).expect("compiles");
        let r = Interp::new(&p).run(&mut NoopProfiler).expect("runs");
        assert_eq!(r.return_value.as_int(), Some(3), "0+1+2 inner iterations");
    }

    #[test]
    fn listing4_and_5_run() {
        runs(LISTING4);
        runs(LISTING5);
    }

    #[test]
    fn guest_random_is_deterministic_and_bounded() {
        let src = format!(
            r#"
class Main {{
    static int main() {{
        Random r = new Random(42);
        for (int i = 0; i < 1000; i = i + 1) {{
            int v = r.nextInt(17);
            if (v < 0 || v >= 17) {{ return 0; }}
        }}
        return 1;
    }}
}}
{GUEST_RANDOM}
"#
        );
        let p = compile(&src).expect("compiles");
        let r = Interp::new(&p).run(&mut NoopProfiler).expect("runs");
        assert_eq!(r.return_value.as_int(), Some(1));
    }
}
