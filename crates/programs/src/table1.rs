//! The 18 Table-1 data-structure example programs (paper §4.1).
//!
//! Each program implements several algorithms over one data structure:
//! building it, traversing it iteratively, and traversing it recursively.
//! The table's columns are reproduced as machine-checkable expectations:
//!
//! * **I** — were the intended inputs detected?
//! * **S** — was the input size measured correctly?
//! * **G** — were the loops that intuitively form one algorithm grouped
//!   (`x`), grouped but fragile (`*`), or not grouped (`-`)?

use algoprof::{AlgorithmicProfile, ProfileError};

/// The paper's three grouping verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grouping {
    /// `x` — robustly grouped.
    Grouped,
    /// `*` — grouped here, but a small implementation change would break
    /// it (single-loop algorithms over arrays).
    Fragile,
    /// `-` — not grouped (array loop nests whose outer loop performs no
    /// array access).
    NotGrouped,
}

impl Grouping {
    /// The table's mark for this verdict.
    pub fn mark(self) -> &'static str {
        match self {
            Grouping::Grouped => "x",
            Grouping::Fragile => "*",
            Grouping::NotGrouped => "-",
        }
    }

    /// Whether the verdict means "ended up in one algorithm".
    pub fn is_grouped(self) -> bool {
        !matches!(self, Grouping::NotGrouped)
    }
}

/// One Table-1 row: a program plus its expected outcomes.
#[derive(Debug, Clone)]
pub struct Table1Program {
    /// Row label, e.g. `list linked directed G`.
    pub name: &'static str,
    /// Column "Struct".
    pub structure: &'static str,
    /// Column "Impl.".
    pub implementation: &'static str,
    /// Column "Linkage".
    pub linkage: &'static str,
    /// Column "T": `B` hard-coded, `I` inheritance, `G` generics.
    pub typing: char,
    /// Column "Rem.".
    pub remark: &'static str,
    /// The jay source.
    pub source: String,
    /// Substring expected in the detected input's description.
    pub expected_input: &'static str,
    /// Inclusive bounds on the detected input's maximum size.
    pub expected_size: (usize, usize),
    /// Node-name needles that intuitively belong to ONE algorithm.
    pub needles: Vec<&'static str>,
    /// The paper's G column for this row.
    pub expected_grouping: Grouping,
}

/// Outcome of checking one program's profile against its expectations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Outcome {
    /// I column: input detected with the expected description.
    pub inputs_detected: bool,
    /// S column: measured max size within the expected bounds.
    pub size_correct: bool,
    /// Observed grouping: were all needles in one algorithm?
    pub observed_grouped: bool,
    /// Whether the observed grouping matches the paper's G column.
    pub grouping_matches_paper: bool,
    /// The measured size (for reporting).
    pub measured_size: usize,
}

impl Table1Program {
    /// Profiles the program with default options.
    ///
    /// # Errors
    ///
    /// Propagates guest compile/run failures.
    pub fn profile(&self) -> Result<AlgorithmicProfile, ProfileError> {
        algoprof::profile_source(&self.source)
    }

    /// Checks a profile against this row's expectations.
    pub fn evaluate(&self, profile: &AlgorithmicProfile) -> Table1Outcome {
        // Anchor the I/S checks on the first needle whose algorithm has a
        // measurable input (for ungrouped nests only the inner loop does).
        let mut anchor_input = None;
        for needle in &self.needles {
            let found = profile.algorithms().iter().find(|a| {
                a.members
                    .iter()
                    .any(|&m| profile.node_name(m).contains(needle))
            });
            if let Some(a) = found {
                if let Some(input) = profile.primary_input(a.id) {
                    anchor_input = Some(input);
                    break;
                }
            }
        }

        let (inputs_detected, size_correct, measured_size) = match anchor_input {
            Some(input) => {
                let desc_ok = profile
                    .input_description(input)
                    .contains(self.expected_input);
                let size = profile.registry().input(input).max_size;
                let (lo, hi) = self.expected_size;
                (desc_ok, size >= lo && size <= hi, size)
            }
            None => (false, false, 0),
        };

        // Grouping: all needles must land in the same algorithm.
        let mut algo_ids = Vec::new();
        for needle in &self.needles {
            let found = profile.algorithms().iter().find(|a| {
                a.members
                    .iter()
                    .any(|&m| profile.node_name(m).contains(needle))
            });
            algo_ids.push(found.map(|a| a.id));
        }
        let observed_grouped =
            algo_ids.iter().all(|x| x.is_some()) && algo_ids.windows(2).all(|w| w[0] == w[1]);
        let grouping_matches_paper = observed_grouped == self.expected_grouping.is_grouped();

        Table1Outcome {
            inputs_detected,
            size_correct,
            observed_grouped,
            grouping_matches_paper,
            measured_size,
        }
    }
}

/// Shared size-sweep harness: runs `run(size)` for sizes 8, 16, 24.
fn harness(body: &str, classes: &str) -> String {
    format!(
        r#"
class Main {{
    static int main() {{
        for (int size = 8; size <= 24; size = size + 8) {{
            run(size);
        }}
        return 0;
    }}

{body}
}}
{classes}
"#
    )
}

fn array_list_source(elem_decl: &str, grow: &str, append_arg: &str, classes: &str) -> String {
    harness(
        &format!(
            r#"
    static void run(int size) {{
        ArrayList list = new ArrayList();
        fill(list, size);
    }}

    static void fill(ArrayList list, int size) {{
        for (int i = 0; i < size; i = i + 1) {{
            list.append({append_arg});
        }}
    }}
"#
        ),
        &format!(
            r#"
class ArrayList {{
    {elem_decl}[] array;
    int size;

    ArrayList() {{
        array = new {elem_decl}[1];
        size = 0;
    }}

    void append({elem_decl} v) {{
        growIfFull();
        array[size] = v;
        size = size + 1;
    }}

    void growIfFull() {{
        if (size == array.length) {{
            {elem_decl}[] newArray = new {elem_decl}[{grow}];
            for (int i = 0; i < array.length; i = i + 1) {{
                newArray[i] = array[i];
            }}
            array = newArray;
        }}
    }}
}}
{classes}
"#
        ),
    )
}

/// Builds all 18 Table-1 programs in the paper's row order.
#[allow(clippy::vec_init_then_push)] // 18 rows with commentary read best sequentially
pub fn table1_programs() -> Vec<Table1Program> {
    let mut rows = Vec::new();

    // Row 1: array array B 1d.
    rows.push(Table1Program {
        name: "array array B 1d",
        structure: "array",
        implementation: "array",
        linkage: "NA",
        typing: 'B',
        remark: "1d",
        source: harness(
            r#"
    static void run(int size) {
        int[] a = build(size);
        int s1 = sumIter(a);
        int s2 = sumRec(a, 0);
    }

    static int[] build(int size) {
        int[] a = new int[size];
        for (int i = 0; i < a.length; i = i + 1) { a[i] = i * 3 + 1; }
        return a;
    }

    static int sumIter(int[] a) {
        int s = 0;
        for (int i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
        return s;
    }

    static int sumRec(int[] a, int i) {
        if (i >= a.length) { return 0; }
        return a[i] + sumRec(a, i + 1);
    }
"#,
            "",
        ),
        expected_input: "int array",
        expected_size: (24, 24),
        needles: vec!["Main.sumIter:loop"],
        expected_grouping: Grouping::Fragile,
    });

    // Row 2: array array B 2d — the sum nest must NOT group.
    rows.push(Table1Program {
        name: "array array B 2d",
        structure: "array",
        implementation: "array",
        linkage: "NA",
        typing: 'B',
        remark: "2d",
        source: harness(
            r#"
    static void run(int size) {
        int[][] m = build(size);
        int s = sum(m);
    }

    static int[][] build(int size) {
        int[][] m = new int[size][];
        for (int i = 0; i < m.length; i = i + 1) { m[i] = new int[size]; }
        for (int i = 0; i < m.length; i = i + 1) {
            for (int j = 0; j < size; j = j + 1) { m[i][j] = i + j; }
        }
        return m;
    }

    static int sum(int[][] m) {
        int s = 0;
        for (int i = 0; i < m.length; i = i + 1) {
            // no access to m[i] here
            for (int j = 0; j < m[i].length; j = j + 1) { s = s + m[i][j]; }
        }
        return s;
    }
"#,
            "",
        ),
        expected_input: "array",
        expected_size: (600, 600),
        needles: vec!["Main.sum:loop0", "Main.sum:loop1"],
        expected_grouping: Grouping::NotGrouped,
    });

    // Rows 3–6: array-backed lists.
    rows.push(Table1Program {
        name: "list array B double",
        structure: "list",
        implementation: "array",
        linkage: "NA",
        typing: 'B',
        remark: "double",
        source: array_list_source("int", "array.length * 2", "i * 2 + 1", ""),
        expected_input: "int array",
        expected_size: (24, 32),
        needles: vec!["Main.fill:loop", "ArrayList.growIfFull:loop"],
        expected_grouping: Grouping::Fragile,
    });
    rows.push(Table1Program {
        name: "list array B grow-by-1",
        structure: "list",
        implementation: "array",
        linkage: "NA",
        typing: 'B',
        remark: "grow by 1",
        source: array_list_source("int", "array.length + 1", "i * 2 + 1", ""),
        expected_input: "int array",
        expected_size: (24, 24),
        needles: vec!["Main.fill:loop", "ArrayList.growIfFull:loop"],
        expected_grouping: Grouping::Fragile,
    });
    rows.push(Table1Program {
        name: "list array G grow-by-1",
        structure: "list",
        implementation: "array",
        linkage: "NA",
        typing: 'G',
        remark: "grow by 1",
        source: harness(
            r#"
    static void run(int size) {
        GArrayList<Item> list = new GArrayList<Item>();
        fill(list, size);
    }

    static void fill(GArrayList<Item> list, int size) {
        for (int i = 0; i < size; i = i + 1) {
            list.append(new Item(i));
        }
    }
"#,
            r#"
class GArrayList<T> {
    Object[] array;
    int size;

    GArrayList() {
        array = new Object[1];
        size = 0;
    }

    void append(T v) {
        growIfFull();
        array[size] = v;
        size = size + 1;
    }

    T get(int i) { return (T) array[i]; }

    void growIfFull() {
        if (size == array.length) {
            Object[] newArray = new Object[array.length + 1];
            for (int i = 0; i < array.length; i = i + 1) {
                newArray[i] = array[i];
            }
            array = newArray;
        }
    }
}

class Item {
    int v;
    Item(int v) { this.v = v; }
}
"#,
        ),
        expected_input: "reference array",
        expected_size: (24, 24),
        needles: vec!["Main.fill:loop", "GArrayList.growIfFull:loop"],
        expected_grouping: Grouping::Fragile,
    });
    rows.push(Table1Program {
        name: "list array I grow-by-1",
        structure: "list",
        implementation: "array",
        linkage: "NA",
        typing: 'I',
        remark: "grow by 1",
        source: array_list_source(
            "Payload",
            "array.length + 1",
            "new IntPayload(i)",
            r#"
class Payload { }
class IntPayload extends Payload {
    int v;
    IntPayload(int v) { this.v = v; }
}
"#,
        ),
        expected_input: "reference array",
        expected_size: (24, 24),
        needles: vec!["Main.fill:loop", "ArrayList.growIfFull:loop"],
        expected_grouping: Grouping::Fragile,
    });

    // Rows 7–9: linked lists B/G/I.
    let linked_list_body = r#"
    static void run(int size) {
        LinkedList list = new LinkedList();
        fill(list, size);
        int s1 = sumIter(list);
        int s2 = sumRec(list.head);
    }

    static void fill(LinkedList list, int size) {
        for (int i = 0; i < size; i = i + 1) { list.append(i); }
    }

    static int sumIter(LinkedList list) {
        int s = 0;
        LNode cur = list.head;
        while (cur != null) { s = s + cur.value; cur = cur.next; }
        return s;
    }

    static int sumRec(LNode n) {
        if (n == null) { return 0; }
        return n.value + sumRec(n.next);
    }
"#;
    rows.push(Table1Program {
        name: "list linked directed B",
        structure: "list",
        implementation: "linked",
        linkage: "directed",
        typing: 'B',
        remark: "",
        source: harness(
            linked_list_body,
            r#"
class LinkedList {
    LNode head;
    LNode tail;
    void append(int v) {
        LNode n = new LNode(v);
        if (head == null) { head = n; tail = n; } else { tail.next = n; tail = n; }
    }
}
class LNode {
    LNode next;
    int value;
    LNode(int v) { this.value = v; }
}
"#,
        ),
        expected_input: "LNode",
        expected_size: (24, 24),
        needles: vec!["Main.sumIter:loop"],
        expected_grouping: Grouping::Grouped,
    });
    rows.push(Table1Program {
        name: "list linked directed G",
        structure: "list",
        implementation: "linked",
        linkage: "directed",
        typing: 'G',
        remark: "",
        source: harness(
            r#"
    static void run(int size) {
        GNode<Item> head = null;
        for (int i = 0; i < size; i = i + 1) {
            GNode<Item> n = new GNode<Item>(new Item(i));
            n.next = head;
            head = n;
        }
        int s1 = sumIter(head);
        int s2 = sumRec(head);
    }

    static int sumIter(GNode<Item> head) {
        int s = 0;
        GNode<Item> cur = head;
        while (cur != null) { s = s + cur.value.v; cur = cur.next; }
        return s;
    }

    static int sumRec(GNode<Item> n) {
        if (n == null) { return 0; }
        return n.value.v + sumRec(n.next);
    }
"#,
            r#"
class GNode<T> {
    GNode<T> next;
    T value;
    GNode(T value) { this.value = value; }
}
class Item {
    int v;
    Item(int v) { this.v = v; }
}
"#,
        ),
        expected_input: "GNode",
        expected_size: (24, 24),
        needles: vec!["Main.sumIter:loop"],
        expected_grouping: Grouping::Grouped,
    });
    rows.push(Table1Program {
        name: "list linked directed I",
        structure: "list",
        implementation: "linked",
        linkage: "directed",
        typing: 'I',
        remark: "",
        source: harness(
            r#"
    static void run(int size) {
        INode head = null;
        for (int i = 0; i < size; i = i + 1) {
            INode n = new INode(new IntPayload(i));
            n.next = head;
            head = n;
        }
        int s = sumIter(head);
        int r = sumRec(head);
    }

    static int sumIter(INode head) {
        int s = 0;
        INode cur = head;
        while (cur != null) {
            if (cur.value instanceof IntPayload) { s = s + ((IntPayload) cur.value).v; }
            cur = cur.next;
        }
        return s;
    }

    static int sumRec(INode n) {
        if (n == null) { return 0; }
        int v = 0;
        if (n.value instanceof IntPayload) { v = ((IntPayload) n.value).v; }
        return v + sumRec(n.next);
    }
"#,
            r#"
class INode {
    INode next;
    Payload value;
    INode(Payload value) { this.value = value; }
}
class Payload { }
class IntPayload extends Payload {
    int v;
    IntPayload(int v) { this.v = v; }
}
"#,
        ),
        expected_input: "INode",
        expected_size: (24, 24),
        needles: vec!["Main.sumIter:loop"],
        expected_grouping: Grouping::Grouped,
    });

    // Row 10: array-backed binary tree (heap layout).
    rows.push(Table1Program {
        name: "tree array B binary",
        structure: "tree",
        implementation: "array",
        linkage: "NA",
        typing: 'B',
        remark: "binary",
        source: harness(
            r#"
    static void run(int size) {
        int[] tree = build(size);
        int s = sumRec(tree, 0);
    }

    static int[] build(int size) {
        int[] t = new int[size];
        for (int i = 0; i < t.length; i = i + 1) { t[i] = i + 1; }
        return t;
    }

    static int sumRec(int[] t, int i) {
        if (i >= t.length) { return 0; }
        return t[i] + sumRec(t, 2 * i + 1) + sumRec(t, 2 * i + 2);
    }
"#,
            "",
        ),
        expected_input: "int array",
        expected_size: (24, 24),
        needles: vec!["Main.sumRec (recursion)"],
        expected_grouping: Grouping::Fragile,
    });

    // Rows 11–12: linked binary trees (directed, bidirectional).
    let bst_body = |with_parent: bool| {
        let set_parent = if with_parent {
            "if (root.left != null) { root.left.parent = root; }
            if (root.right != null) { root.right.parent = root; }"
        } else {
            ""
        };
        harness(
            &format!(
                r#"
    static void run(int size) {{
        TNode root = null;
        Random r = new Random(size);
        for (int i = 0; i < size; i = i + 1) {{
            root = insert(root, r.nextInt(1000));
        }}
        int s = sum(root);
    }}

    static TNode insert(TNode root, int v) {{
        if (root == null) {{ return new TNode(v); }}
        if (v < root.value) {{
            root.left = insert(root.left, v);
        }} else {{
            root.right = insert(root.right, v);
        }}
        {set_parent}
        return root;
    }}

    static int sum(TNode n) {{
        if (n == null) {{ return 0; }}
        return n.value + sum(n.left) + sum(n.right);
    }}
"#
            ),
            &format!(
                r#"
class TNode {{
    TNode left;
    TNode right;
    {parent}
    int value;
    TNode(int v) {{ this.value = v; }}
}}
{rand}
"#,
                parent = if with_parent { "TNode parent;" } else { "" },
                rand = crate::listings::GUEST_RANDOM,
            ),
        )
    };
    rows.push(Table1Program {
        name: "tree linked directed B binary",
        structure: "tree",
        implementation: "linked",
        linkage: "directed",
        typing: 'B',
        remark: "binary",
        source: bst_body(false),
        expected_input: "TNode",
        expected_size: (24, 24),
        needles: vec!["Main.sum (recursion)"],
        expected_grouping: Grouping::Grouped,
    });
    rows.push(Table1Program {
        name: "tree linked bidi B binary",
        structure: "tree",
        implementation: "linked",
        linkage: "bidi",
        typing: 'B',
        remark: "binary",
        source: bst_body(true),
        expected_input: "TNode",
        expected_size: (24, 24),
        needles: vec!["Main.sum (recursion)"],
        expected_grouping: Grouping::Grouped,
    });

    // Rows 13–14: n-ary trees; the traversal is a recursion with a nested
    // loop over the children array — the strong grouping test.
    let nary_body = |with_parent: bool| {
        let set_parent = if with_parent {
            "kids[i].parent = n;"
        } else {
            ""
        };
        harness(
            &format!(
                r#"
    static void run(int size) {{
        NNode root = new NNode(0);
        int made = fill(root, 1, size);
        int s = sum(root);
    }}

    static int fill(NNode n, int next, int max) {{
        NNode[] kids = n.children;
        for (int i = 0; i < kids.length; i = i + 1) {{
            if (next < max) {{
                kids[i] = new NNode(next);
                {set_parent}
                next = next + 1;
            }}
        }}
        for (int i = 0; i < kids.length; i = i + 1) {{
            if (kids[i] != null) {{
                next = fill(kids[i], next, max);
            }}
        }}
        return next;
    }}

    static int sum(NNode n) {{
        int s = n.value;
        NNode[] kids = n.children;
        for (int i = 0; i < kids.length; i = i + 1) {{
            if (kids[i] != null) {{
                s = s + sum(kids[i]);
            }}
        }}
        return s;
    }}
"#
            ),
            &format!(
                r#"
class NNode {{
    NNode[] children;
    {parent}
    int value;
    NNode(int v) {{
        this.value = v;
        this.children = new NNode[3];
    }}
}}
"#,
                parent = if with_parent { "NNode parent;" } else { "" },
            ),
        )
    };
    rows.push(Table1Program {
        name: "tree linked directed B n-ary",
        structure: "tree",
        implementation: "linked",
        linkage: "directed",
        typing: 'B',
        remark: "n-ary",
        source: nary_body(false),
        expected_input: "NNode",
        expected_size: (24, 24),
        needles: vec!["Main.sum (recursion)", "Main.sum:loop"],
        expected_grouping: Grouping::Grouped,
    });
    rows.push(Table1Program {
        name: "tree linked bidi B n-ary",
        structure: "tree",
        implementation: "linked",
        linkage: "bidi",
        typing: 'B',
        remark: "n-ary",
        source: nary_body(true),
        expected_input: "NNode",
        expected_size: (24, 24),
        needles: vec!["Main.sum (recursion)", "Main.sum:loop"],
        expected_grouping: Grouping::Grouped,
    });

    // Row 15: graph as a 2-d adjacency matrix — the other NotGrouped row.
    rows.push(Table1Program {
        name: "graph array directed B 2d",
        structure: "graph",
        implementation: "array",
        linkage: "directed",
        typing: 'B',
        remark: "2d",
        source: harness(
            r#"
    static void run(int size) {
        int[][] adj = build(size);
        int e = countEdges(adj);
    }

    static int[][] build(int size) {
        int[][] adj = new int[size][];
        for (int i = 0; i < adj.length; i = i + 1) { adj[i] = new int[size]; }
        for (int i = 0; i < size; i = i + 1) {
            adj[i][(i + 1) % size] = 1;
            adj[i][(i * 7 + 3) % size] = 1;
        }
        return adj;
    }

    static int countEdges(int[][] adj) {
        int s = 0;
        for (int i = 0; i < adj.length; i = i + 1) {
            // no access to adj[i] here
            for (int j = 0; j < adj[i].length; j = j + 1) { s = s + adj[i][j]; }
        }
        return s;
    }
"#,
            "",
        ),
        expected_input: "array",
        expected_size: (600, 600),
        needles: vec!["Main.countEdges:loop0", "Main.countEdges:loop1"],
        expected_grouping: Grouping::NotGrouped,
    });

    // Rows 16–18: linked graphs. DFS recursion + neighbor loop.
    let graph_body = |vertex_class: &str, link: &str| {
        harness(
            &format!(
                r#"
    static void run(int size) {{
        Vertex first = build(size);
        int reached = dfs(first, size);
    }}

    static Vertex build(int size) {{
        Vertex first = new Vertex(0);
        Vertex prev = first;
        for (int i = 1; i < size; i = i + 1) {{
            Vertex v = new Vertex(i);
            {link}
            prev = v;
            if (i == size - 1) {{
                // Close the ring (inside the loop so the access is
                // attributed to the construction repetition).
                v.out[0] = first;
            }}
        }}
        return first;
    }}

    static int dfs(Vertex v, int mark) {{
        if (v == null) {{ return 0; }}
        if (v.visited == mark) {{ return 0; }}
        v.visited = mark;
        Vertex[] out = v.out;
        int s = 1;
        for (int i = 0; i < out.length; i = i + 1) {{
            s = s + dfs(out[i], mark);
        }}
        return s;
    }}
"#
            ),
            vertex_class,
        )
    };
    rows.push(Table1Program {
        name: "graph linked directed B",
        structure: "graph",
        implementation: "linked",
        linkage: "directed",
        typing: 'B',
        remark: "",
        source: graph_body(
            r#"
class Vertex {
    Vertex[] out;
    int id;
    int visited;
    Vertex(int id) {
        this.id = id;
        this.out = new Vertex[2];
    }
}
"#,
            "prev.out[0] = v; prev.out[1] = v;",
        ),
        expected_input: "Vertex",
        expected_size: (24, 24),
        needles: vec!["Main.dfs (recursion)", "Main.dfs:loop"],
        expected_grouping: Grouping::Grouped,
    });
    rows.push(Table1Program {
        name: "graph linked bidi B",
        structure: "graph",
        implementation: "linked",
        linkage: "bidi",
        typing: 'B',
        remark: "",
        source: graph_body(
            r#"
class Vertex {
    Vertex[] out;
    Vertex[] in;
    int id;
    int visited;
    Vertex(int id) {
        this.id = id;
        this.out = new Vertex[2];
        this.in = new Vertex[2];
    }
}
"#,
            "prev.out[0] = v; v.in[0] = prev;",
        ),
        expected_input: "Vertex",
        expected_size: (24, 24),
        needles: vec!["Main.dfs (recursion)", "Main.dfs:loop"],
        expected_grouping: Grouping::Grouped,
    });
    rows.push(Table1Program {
        name: "graph linked undirected B",
        structure: "graph",
        implementation: "linked",
        linkage: "unidirected",
        typing: 'B',
        remark: "",
        source: graph_body(
            r#"
class Vertex {
    Vertex[] out;
    int id;
    int visited;
    Vertex(int id) {
        this.id = id;
        this.out = new Vertex[2];
    }
}
"#,
            "prev.out[0] = v; v.out[1] = prev;",
        ),
        expected_input: "Vertex",
        expected_size: (24, 24),
        needles: vec!["Main.dfs (recursion)", "Main.dfs:loop"],
        expected_grouping: Grouping::Grouped,
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_18_programs() {
        assert_eq!(table1_programs().len(), 18);
    }

    #[test]
    fn all_programs_compile_and_run() {
        for p in table1_programs() {
            let result = algoprof_vm::compile(&p.source);
            let program = match result {
                Ok(prog) => prog,
                Err(e) => panic!("{} failed to compile: {e}", p.name),
            };
            algoprof_vm::Interp::new(&program)
                .with_fuel(50_000_000)
                .run(&mut algoprof_vm::NoopProfiler)
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", p.name));
        }
    }

    #[test]
    fn grouping_marks_render() {
        assert_eq!(Grouping::Grouped.mark(), "x");
        assert_eq!(Grouping::Fragile.mark(), "*");
        assert_eq!(Grouping::NotGrouped.mark(), "-");
        assert!(Grouping::Fragile.is_grouped());
        assert!(!Grouping::NotGrouped.is_grouped());
    }

    // Full I/S/G checks are in tests/table1.rs (integration) and the
    // table1 bench binary; these unit tests keep the corpus compiling.
}
