//! Cross-validation of the symbolic cost-function engine against the
//! dynamic profiler, over the sized sweep corpus.
//!
//! The sweep engine attaches a coefficient verdict to every series
//! (static prediction vs. dynamic fit); these tests pin the three
//! regimes on real corpus programs:
//!
//! * `[agrees]` — array insertion sort, where the solved triangular
//!   recurrence `0.5*n^2 + 0.5*n - 1` matches the measured steps
//!   *exactly* at every swept size;
//! * `[class-only]` — the by-one array list, where the static worst
//!   case (`1.0·n²`: every append could copy) is a factor 2 above the
//!   amortized measurement (`~0.5·n²`: each element is copied once per
//!   later append);
//! * `[DISAGREES]` — the doubling array list, where the static
//!   analysis cannot see the doubling amortization and predicts
//!   quadratic for a measured-linear loop.

use algoprof::{run_sweep, SweepConfig, SweepJob, SweepReport};
use algoprof_fit::CoeffVerdict;
use algoprof_programs::{
    sized_array_list_program, sized_insertion_sort_array_program, GrowthPolicy, SortWorkload,
};

const SIZES: [u64; 4] = [8, 16, 32, 64];

fn sweep(programs: &[(&str, String)]) -> SweepReport {
    let mut jobs = Vec::new();
    for &n in &SIZES {
        for (tag, src) in programs {
            jobs.push(SweepJob::for_program_size(tag, src, n));
        }
    }
    run_sweep(&jobs, &SweepConfig::default()).expect("sweeps")
}

/// Property: wherever the verdict is `[agrees]`, the predicted cost
/// function — evaluated with its *exact* terms, constants and all —
/// must reproduce the measured cost at every swept size, not just
/// share a leading coefficient.
#[test]
fn agreeing_cost_functions_track_measured_costs_pointwise() {
    let programs = vec![
        (
            "insertion-array",
            sized_insertion_sort_array_program(SortWorkload::Reversed),
        ),
        (
            "arraylist-byone",
            sized_array_list_program(GrowthPolicy::ByOne),
        ),
        (
            "arraylist-doubling",
            sized_array_list_program(GrowthPolicy::Doubling),
        ),
    ];
    let report = sweep(&programs);
    let mut agreeing = 0;
    for s in &report.series {
        if s.coeff.verdict != CoeffVerdict::Agrees {
            continue;
        }
        let cost = s
            .predicted_cost
            .as_ref()
            .expect("an agreeing series carries a predicted cost function");
        agreeing += 1;
        for &(x, y) in &s.points {
            let predicted = cost.eval_terms(x);
            let rel = (predicted - y).abs() / y.max(1.0);
            assert!(
                rel <= 0.25,
                "{} {}: predicted {cost} = {predicted} at n={x}, measured {y} (rel err {rel:.3})",
                s.program,
                s.algorithm
            );
        }
    }
    assert!(
        agreeing >= 2,
        "expected at least two [agrees] series in the corpus, found {agreeing}"
    );
}

/// The ISSUE's acceptance pin: the inner repetition of insertion sort
/// predicts a leading coefficient of exactly 0.5, and the dynamic fit
/// lands within 20% of it.
#[test]
fn insertion_sort_leading_coefficient_is_half() {
    let programs = vec![(
        "insertion-array",
        sized_insertion_sort_array_program(SortWorkload::Reversed),
    )];
    let report = sweep(&programs);
    let sort = report
        .series
        .iter()
        .find(|s| s.algorithm.starts_with("Main.sort:loop0"))
        .expect("sort-loop series");
    assert_eq!(sort.coeff.verdict, CoeffVerdict::Agrees);
    assert_eq!(sort.coeff.predicted, Some(0.5));
    let fitted = sort.coeff.fitted.expect("fitted coefficient");
    assert!(
        (fitted - 0.5).abs() / 0.5 <= 0.20,
        "fitted leading coefficient {fitted} is not within 20% of the predicted 0.5"
    );
    let cost = sort.predicted_cost.as_ref().expect("cost function");
    assert_eq!(cost.to_string(), "0.5*n^2 + 0.5*n - 1");
}

/// Pinned `[class-only]` fixture: growing by one, the static bound
/// `n^2 + n` (worst case: every append copies the whole array) has the
/// right class but twice the amortized coefficient, so the verdict
/// must degrade to class-only with the tolerance reason — not claim
/// agreement, and not disagree on the class.
#[test]
fn by_one_growth_is_class_only_on_coefficient() {
    let programs = vec![(
        "arraylist-byone",
        sized_array_list_program(GrowthPolicy::ByOne),
    )];
    let report = sweep(&programs);
    let append = report
        .series
        .iter()
        .find(|s| s.coeff.verdict == CoeffVerdict::ClassOnly)
        .expect("a class-only series for by-one growth");
    assert_eq!(append.coeff.reason, "leading coefficient outside tolerance");
    let predicted = append.coeff.predicted.expect("predicted coefficient");
    let fitted = append.coeff.fitted.expect("fitted coefficient");
    assert_eq!(predicted, 1.0);
    assert!(
        (0.4..=0.7).contains(&fitted),
        "amortized by-one coefficient should be near 0.5, got {fitted}"
    );
    assert!(report.render_text().contains("[class-only:"));
}

/// Pinned `[DISAGREES]` fixture: the doubling policy's amortization is
/// invisible to the static analysis (it sees a copy loop bounded by
/// the array length inside an append loop), so the predicted class is
/// quadratic while the measurement is linear. The verdict must be a
/// loud disagreement in all renderers.
#[test]
fn doubling_growth_is_a_pinned_disagreement() {
    let programs = vec![(
        "arraylist-doubling",
        sized_array_list_program(GrowthPolicy::Doubling),
    )];
    let report = sweep(&programs);
    let append = report
        .series
        .iter()
        .find(|s| s.coeff.verdict == CoeffVerdict::Disagrees)
        .expect("a disagreeing series for doubling growth");
    let fit = append.fit.expect("dynamic fit");
    assert_eq!(fit.model, algoprof_fit::Model::Linear);
    assert!(report
        .render_text()
        .contains("[DISAGREES with best fit O(n)]"));
    assert!(report.render_json().contains("\"verdict\": \"disagrees\""));
}
