//! The serve wire protocol: JSON encodings of job specifications and
//! profiler options, shared by the daemon (parse) and the client
//! (build), so the two can never drift apart.
//!
//! Option values use the same names as the CLI flags (`--criterion
//! some`, `--sizing capacity`, ...), and a submission carries the guest
//! *source text* (or raw trace bytes, hex-encoded), never a path — the
//! daemon may not share a filesystem with the client.

use algoprof::{
    AlgoProfOptions, ArraySizeStrategy, EquivalenceCriterion, GroupingStrategy, JobSpec,
    SnapshotPolicy, SweepAblation,
};

use crate::json::Json;

/// Wire name of an equivalence criterion (matches `--criterion`).
pub fn criterion_name(c: EquivalenceCriterion) -> &'static str {
    match c {
        EquivalenceCriterion::SomeElements => "some",
        EquivalenceCriterion::AllElements => "all",
        EquivalenceCriterion::SameArray => "array",
        EquivalenceCriterion::SameType => "type",
    }
}

/// Parses a `--criterion` / wire name.
pub fn parse_criterion(name: &str) -> Option<EquivalenceCriterion> {
    match name {
        "some" => Some(EquivalenceCriterion::SomeElements),
        "all" => Some(EquivalenceCriterion::AllElements),
        "array" => Some(EquivalenceCriterion::SameArray),
        "type" => Some(EquivalenceCriterion::SameType),
        _ => None,
    }
}

fn sizing_name(s: ArraySizeStrategy) -> &'static str {
    match s {
        ArraySizeStrategy::Capacity => "capacity",
        ArraySizeStrategy::UniqueElements => "unique",
    }
}

fn parse_sizing(name: &str) -> Option<ArraySizeStrategy> {
    match name {
        "capacity" => Some(ArraySizeStrategy::Capacity),
        "unique" => Some(ArraySizeStrategy::UniqueElements),
        _ => None,
    }
}

fn snapshots_name(p: SnapshotPolicy) -> &'static str {
    match p {
        SnapshotPolicy::FirstAndLast => "firstlast",
        SnapshotPolicy::EveryAccess => "every",
    }
}

fn parse_snapshots(name: &str) -> Option<SnapshotPolicy> {
    match name {
        "firstlast" => Some(SnapshotPolicy::FirstAndLast),
        "every" => Some(SnapshotPolicy::EveryAccess),
        _ => None,
    }
}

fn grouping_name(g: GroupingStrategy) -> &'static str {
    match g {
        GroupingStrategy::SharedInput => "input",
        GroupingStrategy::SharedInputOrIndexFlow => "indexflow",
        GroupingStrategy::SameMethod => "method",
    }
}

fn parse_grouping(name: &str) -> Option<GroupingStrategy> {
    match name {
        "input" => Some(GroupingStrategy::SharedInput),
        "indexflow" => Some(GroupingStrategy::SharedInputOrIndexFlow),
        "method" => Some(GroupingStrategy::SameMethod),
        _ => None,
    }
}

/// Encodes the CLI-visible option surface (the `incremental` cache mode
/// is an internal tuning knob with no CLI flag; it stays at default on
/// the wire too).
pub fn options_to_json(o: &AlgoProfOptions) -> Json {
    Json::obj(vec![
        ("criterion", Json::Str(criterion_name(o.criterion).into())),
        ("sizing", Json::Str(sizing_name(o.array_strategy).into())),
        (
            "snapshots",
            Json::Str(snapshots_name(o.snapshot_policy).into()),
        ),
        ("grouping", Json::Str(grouping_name(o.grouping).into())),
    ])
}

/// Decodes options; absent object or absent members mean defaults,
/// unknown values are errors.
pub fn options_from_json(value: Option<&Json>) -> Result<AlgoProfOptions, String> {
    let mut options = AlgoProfOptions::default();
    let Some(value) = value else {
        return Ok(options);
    };
    let text = |key: &str| -> Result<Option<&str>, String> {
        match value.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("options.{key} must be a string")),
        }
    };
    if let Some(name) = text("criterion")? {
        options.criterion =
            parse_criterion(name).ok_or_else(|| format!("unknown criterion {name:?}"))?;
    }
    if let Some(name) = text("sizing")? {
        options.array_strategy =
            parse_sizing(name).ok_or_else(|| format!("unknown sizing {name:?}"))?;
    }
    if let Some(name) = text("snapshots")? {
        options.snapshot_policy =
            parse_snapshots(name).ok_or_else(|| format!("unknown snapshot policy {name:?}"))?;
    }
    if let Some(name) = text("grouping")? {
        options.grouping =
            parse_grouping(name).ok_or_else(|| format!("unknown grouping {name:?}"))?;
    }
    Ok(options)
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        write!(s, "{b:02x}").expect("writing to a String cannot fail");
    }
    s
}

fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    text.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            u8::from_str_radix(std::str::from_utf8(pair).expect("ascii"), 16)
                .map_err(|_| format!("bad hex byte {:?}", String::from_utf8_lossy(pair)))
        })
        .collect()
}

/// Encodes a job for `POST /api/v1/jobs`.
pub fn job_to_json(spec: &JobSpec) -> Json {
    match spec {
        JobSpec::Profile {
            program,
            source,
            input,
            options,
        } => Json::obj(vec![
            ("kind", Json::Str("profile".into())),
            ("program", Json::Str(program.clone())),
            ("source", Json::Str(source.clone())),
            (
                "input",
                Json::Arr(input.iter().map(|&v| Json::Num(v as f64)).collect()),
            ),
            ("options", options_to_json(options)),
        ]),
        JobSpec::Sweep {
            program,
            source,
            sizes,
            ablations,
        } => Json::obj(vec![
            ("kind", Json::Str("sweep".into())),
            ("program", Json::Str(program.clone())),
            ("source", Json::Str(source.clone())),
            (
                "sizes",
                Json::Arr(sizes.iter().map(|&n| Json::Num(n as f64)).collect()),
            ),
            (
                "ablations",
                Json::Arr(
                    ablations
                        .iter()
                        .map(|a| {
                            Json::obj(vec![
                                ("name", Json::Str(a.name.clone())),
                                ("options", options_to_json(&a.options)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        JobSpec::Analyze { trace, options } => Json::obj(vec![
            ("kind", Json::Str("analyze".into())),
            ("trace_hex", Json::Str(hex_encode(trace))),
            ("options", options_to_json(options)),
        ]),
    }
}

/// Decodes a `POST /api/v1/jobs` body. Error strings are relayed to the
/// client verbatim in a 400 response.
pub fn job_from_json(value: &Json) -> Result<JobSpec, String> {
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing job kind")?;
    let text_field = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("{kind} job needs a string {key:?} field"))
    };
    match kind {
        "profile" => {
            let input = match value.get("input") {
                None => Vec::new(),
                Some(v) => v
                    .as_arr()
                    .ok_or("input must be an array")?
                    .iter()
                    .map(|n| n.as_i64().ok_or("input values must be integers"))
                    .collect::<Result<Vec<i64>, _>>()?,
            };
            Ok(JobSpec::Profile {
                program: text_field("program")?,
                source: text_field("source")?,
                input,
                options: options_from_json(value.get("options"))?,
            })
        }
        "sweep" => {
            let sizes = value
                .get("sizes")
                .and_then(Json::as_arr)
                .ok_or("sweep job needs a sizes array")?
                .iter()
                .map(|n| n.as_u64().ok_or("sizes must be non-negative integers"))
                .collect::<Result<Vec<u64>, _>>()?;
            if sizes.is_empty() {
                return Err("sweep job needs at least one size".into());
            }
            let ablations = match value.get("ablations") {
                None => vec![SweepAblation {
                    name: "default".to_owned(),
                    options: AlgoProfOptions::default(),
                }],
                Some(v) => v
                    .as_arr()
                    .ok_or("ablations must be an array")?
                    .iter()
                    .map(|a| {
                        Ok(SweepAblation {
                            name: a
                                .get("name")
                                .and_then(Json::as_str)
                                .ok_or("each ablation needs a name")?
                                .to_owned(),
                            options: options_from_json(a.get("options"))?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            };
            if ablations.is_empty() {
                return Err("sweep job needs at least one ablation".into());
            }
            Ok(JobSpec::Sweep {
                program: text_field("program")?,
                source: text_field("source")?,
                sizes,
                ablations,
            })
        }
        "analyze" => Ok(JobSpec::Analyze {
            trace: hex_decode(&text_field("trace_hex")?)?,
            options: options_from_json(value.get("options"))?,
        }),
        other => Err(format!(
            "unknown job kind {other:?} (expected profile|sweep|analyze)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn round_trip(spec: &JobSpec) -> JobSpec {
        let wire = job_to_json(spec).to_string_compact();
        job_from_json(&parse(&wire).expect("parses")).expect("decodes")
    }

    #[test]
    fn jobs_round_trip_with_identical_cache_keys() {
        let options = AlgoProfOptions {
            criterion: EquivalenceCriterion::AllElements,
            snapshot_policy: SnapshotPolicy::EveryAccess,
            ..AlgoProfOptions::default()
        };
        let specs = [
            JobSpec::Profile {
                program: "p.jay".into(),
                source: "class Main { static int main() { return 0; } }".into(),
                input: vec![3, -1, 9],
                options,
            },
            JobSpec::Sweep {
                program: "s.jay".into(),
                source: "class Main { static int main() { return readInput(); } }".into(),
                sizes: vec![4, 8, 16],
                ablations: vec![
                    SweepAblation {
                        name: "default".into(),
                        options: AlgoProfOptions::default(),
                    },
                    SweepAblation {
                        name: "all".into(),
                        options,
                    },
                ],
            },
            JobSpec::Analyze {
                trace: vec![0x41, 0x50, 0x54, 0x52, 0x00, 0xff],
                options: AlgoProfOptions::default(),
            },
        ];
        for spec in &specs {
            let back = round_trip(spec);
            // The codec is faithful exactly when the content address is
            // preserved (cache_key covers every field execution reads).
            assert_eq!(back.cache_key(), spec.cache_key());
            assert_eq!(back.kind(), spec.kind());
        }
    }

    #[test]
    fn defaults_apply_when_fields_are_absent() {
        let wire = r#"{"kind":"sweep","program":"p","source":"s","sizes":[4]}"#;
        let spec = job_from_json(&parse(wire).expect("parses")).expect("decodes");
        let JobSpec::Sweep { ablations, .. } = &spec else {
            panic!("expected sweep");
        };
        assert_eq!(ablations.len(), 1);
        assert_eq!(ablations[0].name, "default");
    }

    #[test]
    fn malformed_jobs_are_rejected_with_useful_messages() {
        let cases = [
            (r#"{"program":"p"}"#, "missing job kind"),
            (r#"{"kind":"frobnicate"}"#, "unknown job kind"),
            (r#"{"kind":"profile","source":"s"}"#, "program"),
            (r#"{"kind":"sweep","program":"p","source":"s"}"#, "sizes"),
            (
                r#"{"kind":"sweep","program":"p","source":"s","sizes":[]}"#,
                "at least one size",
            ),
            (
                r#"{"kind":"profile","program":"p","source":"s","options":{"criterion":"bogus"}}"#,
                "unknown criterion",
            ),
            (r#"{"kind":"analyze","trace_hex":"abc"}"#, "odd-length"),
            (r#"{"kind":"analyze","trace_hex":"zz"}"#, "bad hex"),
        ];
        for (wire, needle) in cases {
            let err = job_from_json(&parse(wire).expect("parses")).unwrap_err();
            assert!(err.contains(needle), "{wire}: {err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn hex_codec_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).expect("decodes"), bytes);
    }
}
