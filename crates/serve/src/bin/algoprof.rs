//! `algoprof` — command-line algorithmic profiler for jay programs.
//!
//! ```text
//! algoprof [OPTIONS] <program.jay>          profile a program live
//! algoprof record <program.jay> -o <trace>  execute once, save the event trace
//! algoprof analyze <trace|-> [OPTIONS]      profile a recording (no re-execution);
//!                                           `-` streams the trace from stdin
//! algoprof events <trace> [--json] [--limit N] [--thread N]   dump a recording's events
//! algoprof sweep <program.jay> --sizes n,.. profile a whole input-size sweep
//! algoprof lint <program.jay>... [--json] [--strict]   static analysis + lints
//! algoprof costfn <program.jay> [--json]    symbolic cost functions + feature attribution
//! algoprof opstats <program.jay>... [--json] [--top N]   opcode frequency/pair stats
//! algoprof disasm <program.jay> [--cfg] [--fused]   disassemble (CFG / post-fusion)
//! algoprof serve [--addr H:P|--socket PATH] run the persistent profiling daemon
//! algoprof submit ... <kind> ... [--wait]   send a job to a running daemon
//!
//! OPTIONS:
//!   --criterion <some|all|array|type>   snapshot equivalence criterion
//!   --sizing <capacity|unique>          array sizing strategy
//!   --snapshots <firstlast|every>       snapshot policy
//!   --grouping <input|indexflow|method> algorithm grouping strategy
//!   --input <v1,v2,...>                 values for readInput() (live/record only)
//!   --csv <root-name-needle>            print the steps CSV for one algorithm
//!   --html <file.html>                  write a self-contained HTML report
//!   --check                             cross-validate static predictions
//!                                       against the dynamic fits
//!
//! SWEEP OPTIONS (in addition to --sizing/--snapshots/--grouping/--html):
//!   --sizes <n1,n2,...>                 input sizes to sweep (required)
//!   -j, --jobs <N>                      worker threads (default: all cores)
//!   --criteria <some,all,array,type>    analyze each run under several
//!                                       equivalence-criterion ablations
//!   --json <file.json>                  write the machine-readable report
//!   --quiet                             suppress progress lines on stderr
//! ```
//!
//! `record` + repeated `analyze` decouple execution from analysis: one
//! guest run supports any number of option ablations, and `events`
//! renders the raw recording for inspection. `sweep` goes one better: it
//! executes the program once per size on a worker pool with every
//! ablation fanned out over the same live event stream, and merges the
//! results into one deterministic report (byte-identical for every `-j`).
//!
//! `serve` turns the same machinery into a daemon: jobs arrive over a
//! socket, run on a bounded worker pool, and results are memoized in a
//! content-addressed cache — a daemon round-trip is byte-identical to
//! the one-shot CLI for the same spec (see `docs/SERVE.md`). `submit` is
//! the matching client.
//!
//! Every failure — unknown flag, missing argument, unreadable path,
//! guest or trace error — exits non-zero with a one-line message on
//! stderr; usage mistakes add a usage hint and exit 2.

use std::io::{Read, Write};
use std::process::ExitCode;

use algoprof::{
    AlgoProfOptions, AlgorithmicProfile, ArraySizeStrategy, CostMetric, EquivalenceCriterion,
    GroupingStrategy, JobSpec, ProfileError, ProfileSet, SnapshotPolicy, StreamingAnalysis,
    SweepAblation, SweepConfig, SweepJob,
};
use algoprof_serve::{client, Server, ServerAddr, ServerConfig};
use algoprof_vm::InstrumentOptions;

const USAGE: &str = "usage: algoprof [--criterion some|all|array|type] [--sizing capacity|unique] \
     [--snapshots firstlast|every] [--grouping input|indexflow|method] \
     [--input v1,v2,...] [--csv <needle>] [--html <file.html>] [--check] <program.jay>\n\
       algoprof record <program.jay> -o <trace.aptr> [--input v1,v2,...]\n\
       algoprof analyze <trace.aptr|-> [analysis options as above, plus --check]\n\
       algoprof events <trace.aptr> [--json] [--limit N] [--thread N]\n\
       algoprof sweep <program.jay> --sizes n1,n2,... [-j N] \
     [--criteria some,all,array,type] [--sizing ...] [--snapshots ...] [--grouping ...] \
     [--json <file.json>] [--html <file.html>] [--quiet]\n\
       algoprof lint <program.jay>... [--json] [--strict]\n\
       algoprof costfn <program.jay> [--json]\n\
       algoprof opstats <program.jay>... [--input v1,v2,...] [--json] [--top N]\n\
       algoprof disasm <program.jay> [--cfg] [--fused]\n\
       algoprof serve [--addr HOST:PORT | --socket PATH] [--workers N] \
     [--cache-dir DIR] [--queue N]\n\
       algoprof submit [--addr HOST:PORT | --socket PATH] [--wait] profile <program.jay> \
     [analysis options]\n\
       algoprof submit ... [--wait] sweep <program.jay> --sizes n1,n2,... \
     [--criteria ...] [--sizing ...] [--snapshots ...] [--grouping ...] [--json <file.json>]\n\
       algoprof submit ... [--wait] analyze <trace.aptr|-> [analysis options]\n\
       algoprof submit ... cache-stats | shutdown";

/// Where `serve` listens and `submit` connects when neither `--addr` nor
/// `--socket` is given.
const DEFAULT_ADDR: &str = "127.0.0.1:7421";

const USAGE_HINT: &str = "run `algoprof --help` for usage";

/// Every way an invocation can fail. `Usage` is an invocation mistake
/// (unknown flag, missing argument): the message plus a usage hint go to
/// stderr and the exit code is 2. `Run` is a failure while doing the work
/// (unreadable file, guest error, corrupt trace): exit code 1.
enum CliError {
    Usage(String),
    Run(String),
}

impl From<ProfileError> for CliError {
    fn from(e: ProfileError) -> Self {
        CliError::Run(e.to_string())
    }
}

impl From<algoprof::SweepError> for CliError {
    fn from(e: algoprof::SweepError) -> Self {
        CliError::Run(e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        // Asking for help is not an error: print to stdout, exit 0.
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match args.first().map(String::as_str) {
        None => Err(CliError::Usage("missing subcommand or program file".into())),
        Some("record") => record_main(&args[1..]),
        Some("analyze") => analyze_main(&args[1..]),
        Some("events") => events_main(&args[1..]),
        Some("sweep") => sweep_main(&args[1..]),
        Some("lint") => lint_main(&args[1..]),
        Some("costfn") => costfn_main(&args[1..]),
        Some("opstats") => opstats_main(&args[1..]),
        Some("disasm") => disasm_main(&args[1..]),
        Some("serve") => serve_main(&args[1..]),
        Some("submit") => submit_main(&args[1..]),
        Some(_) => live_main(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("algoprof: {msg}\n{USAGE_HINT}");
            ExitCode::from(2)
        }
        Err(CliError::Run(msg)) => {
            eprintln!("algoprof: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Returns the value following flag `args[i]`, or a usage error naming
/// the flag. Callers advance `i` past the value themselves.
fn flag_value(args: &[String], i: usize) -> Result<&str, CliError> {
    match args.get(i + 1) {
        Some(v) => Ok(v),
        None => Err(CliError::Usage(format!("{} requires a value", args[i]))),
    }
}

fn parse_criterion(name: &str) -> Result<EquivalenceCriterion, CliError> {
    match name {
        "some" => Ok(EquivalenceCriterion::SomeElements),
        "all" => Ok(EquivalenceCriterion::AllElements),
        "array" => Ok(EquivalenceCriterion::SameArray),
        "type" => Ok(EquivalenceCriterion::SameType),
        other => Err(CliError::Usage(format!(
            "unknown criterion {other:?} (expected some|all|array|type)"
        ))),
    }
}

fn parse_sizing(name: &str) -> Result<ArraySizeStrategy, CliError> {
    match name {
        "capacity" => Ok(ArraySizeStrategy::Capacity),
        "unique" => Ok(ArraySizeStrategy::UniqueElements),
        other => Err(CliError::Usage(format!(
            "unknown sizing {other:?} (expected capacity|unique)"
        ))),
    }
}

fn parse_grouping(name: &str) -> Result<GroupingStrategy, CliError> {
    match name {
        "input" => Ok(GroupingStrategy::SharedInput),
        "indexflow" => Ok(GroupingStrategy::SharedInputOrIndexFlow),
        "method" => Ok(GroupingStrategy::SameMethod),
        other => Err(CliError::Usage(format!(
            "unknown grouping {other:?} (expected input|indexflow|method)"
        ))),
    }
}

fn parse_snapshots(name: &str) -> Result<SnapshotPolicy, CliError> {
    match name {
        "firstlast" => Ok(SnapshotPolicy::FirstAndLast),
        "every" => Ok(SnapshotPolicy::EveryAccess),
        other => Err(CliError::Usage(format!(
            "unknown snapshot policy {other:?} (expected firstlast|every)"
        ))),
    }
}

/// Parses a comma-separated integer list for `flag`.
fn parse_int_list<T: std::str::FromStr>(flag: &str, list: &str) -> Result<Vec<T>, CliError> {
    let mut out = Vec::new();
    for part in list.split(',').filter(|p| !p.is_empty()) {
        match part.trim().parse() {
            Ok(v) => out.push(v),
            Err(_) => {
                return Err(CliError::Usage(format!(
                    "invalid value {part:?} in {flag} list"
                )))
            }
        }
    }
    Ok(out)
}

/// Reads a file, reporting failures through [`ProfileError::io`] so path
/// and OS error reach the user.
fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| ProfileError::io("read", path, &e).into())
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, bytes).map_err(|e| ProfileError::io("write", path, &e).into())
}

/// Analysis-side options shared by live profiling and `analyze`.
#[derive(Default)]
struct AnalysisArgs {
    opts: AlgoProfOptions,
    input: Vec<i64>,
    csv: Option<String>,
    html: Option<String>,
    check: bool,
    positional: Vec<String>,
}

/// Parses live/`analyze` arguments. Every value-taking flag rejects a
/// missing value and every unknown flag is an error.
fn parse_args(args: &[String]) -> Result<AnalysisArgs, CliError> {
    let mut out = AnalysisArgs::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--criterion" => {
                out.opts.criterion = parse_criterion(flag_value(args, i)?)?;
                i += 1;
            }
            "--sizing" => {
                out.opts.array_strategy = parse_sizing(flag_value(args, i)?)?;
                i += 1;
            }
            "--grouping" => {
                out.opts.grouping = parse_grouping(flag_value(args, i)?)?;
                i += 1;
            }
            "--snapshots" => {
                out.opts.snapshot_policy = parse_snapshots(flag_value(args, i)?)?;
                i += 1;
            }
            "--input" => {
                out.input = parse_int_list("--input", flag_value(args, i)?)?;
                i += 1;
            }
            "--csv" => {
                out.csv = Some(flag_value(args, i)?.to_owned());
                i += 1;
            }
            "--html" => {
                out.html = Some(flag_value(args, i)?.to_owned());
                i += 1;
            }
            "--check" => out.check = true,
            // Bare "-" is the stdin pseudo-path (`analyze -`), not a flag.
            other if other != "-" && other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown option {other:?}")));
            }
            other => out.positional.push(other.to_owned()),
        }
        i += 1;
    }
    Ok(out)
}

/// Renders a per-thread profile set per the `--csv`/`--html` selection.
/// Single-threaded sets keep the exact pre-thread output; threaded sets
/// get per-thread sections plus the merged view (text/HTML) or the
/// cross-thread merged series (CSV).
fn emit_set(set: &ProfileSet, csv: Option<String>, html: Option<String>) -> Result<(), CliError> {
    if let Some(html_path) = html {
        write_file(&html_path, algoprof::render_html_set(set).as_bytes())?;
        println!("wrote {html_path}");
        return Ok(());
    }
    match csv {
        Some(needle) => {
            // Resolve the substring needle against any thread, then merge
            // that algorithm's points across all of them. A one-thread
            // set emits its profile's series verbatim (unsorted), exactly
            // as before.
            let Some((p, algo)) = set
                .threads()
                .iter()
                .find_map(|p| p.algorithm_by_root_name(&needle).map(|a| (p, a)))
            else {
                return Err(CliError::Run(format!(
                    "no algorithm whose root matches {needle:?}"
                )));
            };
            println!("size,steps");
            let series = if set.is_threaded() {
                set.merged_series(p.node_name(algo.root), CostMetric::Steps)
            } else {
                p.invocation_series(algo.id, CostMetric::Steps)
            };
            for (s, c) in series {
                println!("{s},{c}");
            }
        }
        None => print!("{}", algoprof::render_set(set)),
    }
    Ok(())
}

/// The classic mode: compile, execute, and profile in one go.
fn live_main(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional.as_slice() else {
        return Err(CliError::Usage("expected exactly one program file".into()));
    };
    let source = read_file(path)?;
    let set = algoprof::profile_source_set_with(
        &source,
        &InstrumentOptions::default(),
        parsed.opts,
        &parsed.input,
    )?;
    emit_set(&set, parsed.csv, parsed.html)?;
    if parsed.check {
        cross_validate(set.main(), &source)?;
    }
    Ok(())
}

/// Cross-validates static complexity predictions against the profile's
/// dynamic fits and prints the verdicts (informational — disagreement
/// does not change the exit code; use `lint` for gating).
fn cross_validate(profile: &AlgorithmicProfile, source: &str) -> Result<(), CliError> {
    let checks =
        algoprof::cross_validate(profile, source).map_err(|e| CliError::Run(e.to_string()))?;
    print!("{}", algoprof::render_cross_checks(&checks));
    Ok(())
}

/// `algoprof record <prog.jay> -o <trace>`: execute once, save the trace.
fn record_main(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut input: Vec<i64> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                out = Some(flag_value(args, i)?.to_owned());
                i += 1;
            }
            "--input" => {
                input = parse_int_list("--input", flag_value(args, i)?)?;
                i += 1;
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for record"
                )));
            }
            other => {
                if path.is_some() {
                    return Err(CliError::Usage(format!("unexpected argument {other:?}")));
                }
                path = Some(other.to_owned());
            }
        }
        i += 1;
    }
    let (Some(path), Some(out)) = (path, out) else {
        return Err(CliError::Usage(
            "record needs a program file and -o <trace.aptr>".into(),
        ));
    };
    let source = read_file(&path)?;
    let trace = algoprof::record_source_with(&source, &InstrumentOptions::default(), &input)?;
    write_file(&out, &trace)?;
    println!("wrote {out} ({} bytes)", trace.len());
    Ok(())
}

/// `algoprof analyze <trace|->`: profile a recording without
/// re-executing. `-` streams the trace from stdin through the
/// incremental replayer, so analysis overlaps the pipe — and produces
/// the same bytes as the batch path.
fn analyze_main(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args)?;
    if !parsed.input.is_empty() {
        return Err(CliError::Usage(
            "--input is not valid for analyze: inputs are embedded in the trace".into(),
        ));
    }
    let [path] = parsed.positional.as_slice() else {
        return Err(CliError::Usage("expected exactly one trace file".into()));
    };
    let (set, source) = if path == "-" {
        let report = analyze_stdin(parsed.opts)?;
        (report.profiles, report.source)
    } else {
        let trace =
            std::fs::read(path).map_err(|e| CliError::from(ProfileError::io("read", path, &e)))?;
        let set = algoprof::profile_trace_set_with(&trace, parsed.opts)?;
        // The APTR header embeds the recorded source, so recordings are
        // cross-validatable offline, without the original file.
        let (header, _) =
            algoprof_trace::read_header(&trace).map_err(|e| CliError::Run(e.to_string()))?;
        (set, header.source)
    };
    emit_set(&set, parsed.csv, parsed.html)?;
    if parsed.check {
        cross_validate(set.main(), &source)?;
    }
    Ok(())
}

/// Streams stdin into a [`StreamingAnalysis`] chunk by chunk.
fn analyze_stdin(opts: AlgoProfOptions) -> Result<algoprof::StreamingReport, CliError> {
    let mut analysis = StreamingAnalysis::new(opts);
    let mut stdin = std::io::stdin().lock();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = stdin
            .read(&mut buf)
            .map_err(|e| CliError::Run(format!("cannot read stdin: {e}")))?;
        if n == 0 {
            break;
        }
        analysis.feed(&buf[..n])?;
    }
    Ok(analysis.finish()?)
}

/// `algoprof events <trace.aptr>`: decode a recording into one line per
/// event, human-readable by default or JSON lines with `--json`. Every
/// line carries its delivery thread (`tN` column / `"thread"` key);
/// `--thread N` keeps only one thread's lines. `--limit N` caps the
/// printed lines; the replay still validates the whole stream either
/// way.
fn events_main(args: &[String]) -> Result<(), CliError> {
    let mut json = false;
    let mut limit: Option<u64> = None;
    let mut thread: Option<u32> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--limit" => {
                let v = flag_value(args, i)?;
                limit = Some(v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid event limit {v:?} for --limit"))
                })?);
                i += 1;
            }
            "--thread" => {
                let v = flag_value(args, i)?;
                // Accept both `1` and the dump column's own `t1` form.
                let digits = v.strip_prefix('t').unwrap_or(v);
                thread = Some(digits.parse().map_err(|_| {
                    CliError::Usage(format!("invalid thread id {v:?} for --thread"))
                })?);
                i += 1;
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for events"
                )));
            }
            other => positional.push(other.to_owned()),
        }
        i += 1;
    }
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage(
            "events expects exactly one trace file".into(),
        ));
    };
    let trace =
        std::fs::read(path).map_err(|e| CliError::from(ProfileError::io("read", path, &e)))?;
    let (header, events) =
        algoprof_trace::read_header(&trace).map_err(|e| CliError::Run(e.to_string()))?;
    // Recompile the embedded source so every id in the stream resolves
    // to its name, exactly as `analyze` does.
    let program = algoprof_vm::compile(&header.source)
        .map_err(|e| CliError::Run(e.to_string()))?
        .instrument(&header.instrument);
    let stdout = std::io::stdout().lock();
    let mut sink = algoprof_trace::DumpSink::new(std::io::BufWriter::new(stdout), json, limit);
    if let Some(id) = thread {
        sink = sink.with_thread_filter(id);
    }
    algoprof_trace::TraceReplayer::new()
        .replay(&program, events, &mut sink)
        .map_err(|e| CliError::Run(e.to_string()))?;
    sink.finish()
        .map_err(|e| CliError::Run(format!("cannot write event dump: {e}")))?;
    Ok(())
}

/// `algoprof lint <prog.jay>...`: static complexity analysis + lint
/// catalog over one or more files, reported per file in argument order.
/// Exits 1 when any file has an error-level diagnostic (`--strict`
/// promotes warnings to the same fate) or cannot be read or compiled;
/// every file is still processed so one bad file does not hide the
/// others' findings.
fn lint_main(args: &[String]) -> Result<(), CliError> {
    let mut json = false;
    let mut strict = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for lint"
                )));
            }
            other => positional.push(other.to_owned()),
        }
    }
    if positional.is_empty() {
        return Err(CliError::Usage(
            "lint expects at least one program file".into(),
        ));
    }
    let mut failures: Vec<String> = Vec::new();
    for path in &positional {
        let source = match read_file(path) {
            Ok(s) => s,
            Err(CliError::Run(msg) | CliError::Usage(msg)) => {
                failures.push(msg);
                continue;
            }
        };
        let analysis = match algoprof_analysis::analyze_source(&source) {
            Ok(a) => a,
            Err(e) => {
                failures.push(format!("{path}: {e}"));
                continue;
            }
        };
        if json {
            print!("{}", algoprof_analysis::render_json(&analysis, path));
        } else {
            print!("{}", algoprof_analysis::render_text(&analysis, path));
        }
        if analysis.has_errors || (strict && !analysis.diagnostics.is_empty()) {
            let errors = analysis
                .diagnostics
                .iter()
                .filter(|d| d.level == algoprof_analysis::Level::Error)
                .count();
            let warnings = analysis.diagnostics.len() - errors;
            failures.push(format!(
                "{errors} error(s), {warnings} warning(s) in {path}"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CliError::Run(format!(
            "lint failed: {}",
            failures.join("; ")
        )))
    }
}

/// `algoprof costfn <prog.jay> [--json]`: symbolic per-repetition cost
/// functions — the parametric side of the static analysis. For every
/// loop and recursion the profiler can report, prints the predicted
/// class, the cost polynomial with coefficients (widened to `O(class)`
/// where a recurrence was unsolvable), its derivation, and the cost
/// attributed to each language feature (virtual dispatch, field access,
/// array access, allocation).
fn costfn_main(args: &[String]) -> Result<(), CliError> {
    let mut json = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for costfn"
                )));
            }
            other => positional.push(other.to_owned()),
        }
    }
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage(
            "costfn expects exactly one program file".into(),
        ));
    };
    let source = read_file(path)?;
    let (analysis, features) = algoprof_analysis::analyze_source_with_features(&source)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let by_name: std::collections::HashMap<&str, &algoprof_analysis::FeatureCost> =
        features.iter().map(|f| (f.name.as_str(), f)).collect();
    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"program\": {},\n  \"repetitions\": [\n",
            json_string(path)
        ));
        for (i, p) in analysis.predictions.iter().enumerate() {
            let kind = match p.kind {
                algoprof_analysis::PredictionKind::Loop => "loop",
                algoprof_analysis::PredictionKind::Recursion => "recursion",
            };
            let leading = match p.cost.leading() {
                Some(l) => format!(
                    "{{\"degree\": {}, \"log\": {}, \"coeff\": {}}}",
                    l.degree, l.log, l.coeff
                ),
                None => "null".to_owned(),
            };
            let feats = by_name
                .get(p.name.as_str())
                .map(|fc| {
                    fc.features
                        .iter()
                        .map(|(ft, c)| {
                            format!(
                                "{}: {}",
                                json_string(ft.name()),
                                json_string(&c.to_string())
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_default();
            out.push_str(&format!(
                "    {{\"name\": {}, \"kind\": \"{kind}\", \"class\": {}, \"cost\": {}, \"leading\": {leading}, \"detail\": {}, \"features\": {{{feats}}}}}{}\n",
                json_string(&p.name),
                json_string(p.class.big_o()),
                json_string(&p.cost.to_string()),
                json_string(&p.detail),
                if i + 1 < analysis.predictions.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        print!("{out}");
    } else {
        println!("cost functions ({path}):");
        for p in &analysis.predictions {
            println!("  {}  {}  cost {}", p.name, p.class.big_o(), p.cost);
            println!("    derivation: {}", p.detail);
            if let Some(fc) = by_name.get(p.name.as_str()) {
                for (ft, c) in &fc.features {
                    println!("    {}: {}", ft.name(), c);
                }
            }
        }
    }
    Ok(())
}

/// Minimal JSON string encoder for the costfn report.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `algoprof opstats <prog.jay>... [--input ...] [--json] [--top N]`:
/// executes each program once and aggregates opcode-frequency and
/// adjacent-pair statistics over all of them — the measurement behind
/// the VM's profile-guided superinstruction set (`--input` feeds every
/// program's `readInput()` calls). The logical opcode stream is
/// fusion-invariant, so the report is identical with fusion on or off.
fn opstats_main(args: &[String]) -> Result<(), CliError> {
    let mut json = false;
    let mut top = 16usize;
    let mut input: Vec<i64> = Vec::new();
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--top" => {
                top = flag_value(args, i)?
                    .parse()
                    .map_err(|_| CliError::Usage("--top expects a positive integer".into()))?;
                i += 1;
            }
            "--input" => {
                input = parse_int_list("--input", flag_value(args, i)?)?;
                i += 1;
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for opstats"
                )));
            }
            other => paths.push(other.to_owned()),
        }
        i += 1;
    }
    if paths.is_empty() {
        return Err(CliError::Usage(
            "opstats needs at least one program file".into(),
        ));
    }
    let mut total = algoprof_vm::OpStats::new();
    for path in &paths {
        let source = read_file(path)?;
        let program = algoprof_vm::compile(&source)
            .map_err(|e| CliError::Run(format!("{path}: guest compilation failed: {e}")))?
            .instrument(&InstrumentOptions::default())
            .fuse_default();
        let mut stats = algoprof_vm::OpStats::new();
        algoprof_vm::Interp::new(&program)
            .with_input(input.clone())
            .run(&mut stats)
            .map_err(|e| CliError::Run(format!("{path}: guest execution failed: {e}")))?;
        total.merge(&stats);
    }
    if json {
        print!("{}", total.render_json(top));
    } else {
        print!("{}", total.render_text(top));
    }
    Ok(())
}

/// `algoprof disasm <prog.jay>`: instrumented-bytecode disassembly, or
/// with `--cfg` a Graphviz DOT dump of every function's control-flow
/// graph with natural-loop back edges annotated. `--fused` shows the
/// bytecode after the superinstruction peephole pass — what the
/// interpreter actually dispatches.
fn disasm_main(args: &[String]) -> Result<(), CliError> {
    let mut cfg = false;
    let mut fused = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--cfg" => cfg = true,
            "--fused" => fused = true,
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for disasm"
                )));
            }
            other => positional.push(other.to_owned()),
        }
    }
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage(
            "disasm expects exactly one program file".into(),
        ));
    };
    let source = read_file(path)?;
    let mut program = algoprof_vm::compile(&source)
        .map_err(|e| CliError::Run(e.to_string()))?
        .instrument(&InstrumentOptions::default());
    if fused {
        program = program.fuse();
    }
    if cfg {
        print!("{}", algoprof_vm::disassemble_cfg(&program));
    } else {
        print!("{}", algoprof_vm::disassemble(&program));
    }
    Ok(())
}

/// `--criteria a,b` fans each job's live event stream out to one
/// profiler per criterion; without it the sweep runs the single base
/// configuration. Shared between the one-shot `sweep` and
/// `submit sweep` so both produce the same [`JobSpec`].
fn build_ablations(
    criteria: &[String],
    base: AlgoProfOptions,
) -> Result<Vec<SweepAblation>, CliError> {
    if criteria.is_empty() {
        return Ok(vec![SweepAblation {
            name: "default".to_owned(),
            options: base,
        }]);
    }
    criteria
        .iter()
        .map(|name| {
            let mut options = base;
            options.criterion = parse_criterion(name)?;
            Ok(SweepAblation {
                name: name.clone(),
                options,
            })
        })
        .collect()
}

/// `algoprof sweep <prog.jay> --sizes n1,n2,...`: execute the program
/// once per size on a worker pool, profiling every requested ablation
/// from the same live event stream, and emit one merged report.
fn sweep_main(args: &[String]) -> Result<(), CliError> {
    let mut sizes: Vec<u64> = Vec::new();
    let mut workers = 0usize;
    let mut criteria: Vec<String> = Vec::new();
    let mut base = AlgoProfOptions::default();
    let mut json: Option<String> = None;
    let mut html: Option<String> = None;
    let mut quiet = false;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sizes" => {
                sizes = parse_int_list("--sizes", flag_value(args, i)?)?;
                i += 1;
            }
            "-j" | "--jobs" => {
                let v = flag_value(args, i)?;
                workers = v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid worker count {v:?} for {}", args[i]))
                })?;
                i += 1;
            }
            "--criteria" => {
                criteria = flag_value(args, i)?
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(|p| p.trim().to_owned())
                    .collect();
                i += 1;
            }
            "--sizing" => {
                base.array_strategy = parse_sizing(flag_value(args, i)?)?;
                i += 1;
            }
            "--grouping" => {
                base.grouping = parse_grouping(flag_value(args, i)?)?;
                i += 1;
            }
            "--snapshots" => {
                base.snapshot_policy = parse_snapshots(flag_value(args, i)?)?;
                i += 1;
            }
            "--json" => {
                json = Some(flag_value(args, i)?.to_owned());
                i += 1;
            }
            "--html" => {
                html = Some(flag_value(args, i)?.to_owned());
                i += 1;
            }
            "--quiet" => quiet = true,
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for sweep"
                )));
            }
            other => positional.push(other.to_owned()),
        }
        i += 1;
    }
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage(
            "sweep expects exactly one program file".into(),
        ));
    };
    if sizes.is_empty() {
        return Err(CliError::Usage("sweep requires --sizes n1,n2,...".into()));
    }
    let ablations = build_ablations(&criteria, base)?;
    let source = read_file(path)?;

    let jobs: Vec<SweepJob> = sizes
        .iter()
        .map(|&n| SweepJob::for_size(&source, n))
        .collect();
    let config = SweepConfig {
        ablations,
        workers,
        progress: !quiet,
        program: path.clone(),
    };
    let report = algoprof::run_sweep(&jobs, &config)?;

    if let Some(json_path) = &json {
        write_file(json_path, report.render_json().as_bytes())?;
    }
    if let Some(html_path) = &html {
        write_file(html_path, report.render_html().as_bytes())?;
    }
    print!("{}", report.render_text());
    for out in json.iter().chain(html.iter()) {
        eprintln!("wrote {out}");
    }
    Ok(())
}

/// `algoprof serve`: run the persistent profiling daemon until a client
/// asks it to shut down. Prints the bound address on stdout (so scripts
/// can bind an ephemeral port with `--addr 127.0.0.1:0` and read back
/// which port they got).
fn serve_main(args: &[String]) -> Result<(), CliError> {
    let mut addr: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = Some(flag_value(args, i)?.to_owned());
                i += 1;
            }
            "--socket" => {
                socket = Some(flag_value(args, i)?.to_owned());
                i += 1;
            }
            "--workers" => {
                let v = flag_value(args, i)?;
                config.workers = v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid worker count {v:?} for --workers"))
                })?;
                i += 1;
            }
            "--queue" => {
                let v = flag_value(args, i)?;
                config.queue_capacity = v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    CliError::Usage(format!("invalid queue capacity {v:?} for --queue"))
                })?;
                i += 1;
            }
            "--cache-dir" => {
                config.cache_dir = Some(std::path::PathBuf::from(flag_value(args, i)?));
                i += 1;
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for serve"
                )));
            }
        }
        i += 1;
    }
    if addr.is_some() && socket.is_some() {
        return Err(CliError::Usage(
            "--addr and --socket are mutually exclusive".into(),
        ));
    }
    if let Some(path) = socket {
        let server = serve_bind_unix(&path, config)?;
        println!("algoprof serve: listening on {path}");
        let _ = std::io::stdout().flush();
        server.join();
    } else {
        let addr = addr.unwrap_or_else(|| DEFAULT_ADDR.to_owned());
        validate_addr(&addr)?;
        let server = Server::start(&addr, config)
            .map_err(|e| CliError::Run(format!("cannot bind {addr}: {e}")))?;
        let bound = server.addr().expect("TCP server has an address");
        println!("algoprof serve: listening on {bound}");
        let _ = std::io::stdout().flush();
        server.join();
    }
    Ok(())
}

#[cfg(unix)]
fn serve_bind_unix(path: &str, config: ServerConfig) -> Result<Server, CliError> {
    Server::start_unix(std::path::Path::new(path), config)
        .map_err(|e| CliError::Run(format!("cannot bind {path}: {e}")))
}

#[cfg(not(unix))]
fn serve_bind_unix(path: &str, _config: ServerConfig) -> Result<Server, CliError> {
    Err(CliError::Run(format!(
        "unix sockets are unsupported on this platform ({path})"
    )))
}

/// A listen/connect address must be `IP:PORT`; a bad port (or anything
/// else unparseable) is an invocation mistake, caught before binding.
fn validate_addr(addr: &str) -> Result<(), CliError> {
    addr.parse::<std::net::SocketAddr>()
        .map(|_| ())
        .map_err(|_| {
            CliError::Usage(format!(
                "invalid address {addr:?} (expected IP:PORT, e.g. 127.0.0.1:7421)"
            ))
        })
}

/// `algoprof submit`: send one job to a running daemon and (with
/// `--wait`) print its result — byte-identical to the one-shot CLI.
fn submit_main(args: &[String]) -> Result<(), CliError> {
    let mut addr: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut wait = false;
    let mut action: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = Some(flag_value(args, i)?.to_owned());
                i += 1;
            }
            "--socket" => {
                socket = Some(flag_value(args, i)?.to_owned());
                i += 1;
            }
            "--wait" => wait = true,
            other if action.is_none() && other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for submit"
                )));
            }
            other => {
                if action.is_none() {
                    action = Some(other.to_owned());
                } else {
                    rest.push(other.to_owned());
                }
            }
        }
        i += 1;
    }
    if addr.is_some() && socket.is_some() {
        return Err(CliError::Usage(
            "--addr and --socket are mutually exclusive".into(),
        ));
    }
    let server = match (addr, socket) {
        (Some(a), _) => {
            validate_addr(&a)?;
            ServerAddr::Tcp(a)
        }
        (None, Some(p)) => ServerAddr::Unix(std::path::PathBuf::from(p)),
        (None, None) => ServerAddr::Tcp(DEFAULT_ADDR.to_owned()),
    };
    let Some(action) = action else {
        if wait {
            return Err(CliError::Usage(
                "--wait requires a job to submit (missing job kind)".into(),
            ));
        }
        return Err(CliError::Usage(
            "missing job kind (expected profile|sweep|analyze|cache-stats|shutdown)".into(),
        ));
    };
    match action.as_str() {
        "profile" => submit_profile(&server, &rest, wait),
        "sweep" => submit_sweep(&server, &rest, wait),
        "analyze" => submit_analyze(&server, &rest, wait),
        "cache-stats" => {
            if wait {
                return Err(CliError::Usage(
                    "--wait requires a job to submit (cache-stats answers immediately)".into(),
                ));
            }
            reject_extra_args(&rest, "cache-stats")?;
            let stats = client::cache_stats(&server).map_err(|e| CliError::Run(e.to_string()))?;
            println!(
                "cache entries {} hits {} misses {} stores {}",
                stats.entries, stats.hits, stats.misses, stats.stores
            );
            Ok(())
        }
        "shutdown" => {
            if wait {
                return Err(CliError::Usage(
                    "--wait requires a job to submit (shutdown answers immediately)".into(),
                ));
            }
            reject_extra_args(&rest, "shutdown")?;
            client::shutdown(&server).map_err(|e| CliError::Run(e.to_string()))?;
            println!("shutdown requested");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown job kind {other:?} (expected profile|sweep|analyze|cache-stats|shutdown)"
        ))),
    }
}

fn reject_extra_args(rest: &[String], action: &str) -> Result<(), CliError> {
    match rest.first() {
        None => Ok(()),
        Some(extra) => Err(CliError::Usage(format!(
            "unexpected argument {extra:?} for {action}"
        ))),
    }
}

/// Submits `spec`; with `wait` polls to completion, prints the text
/// report to stdout, and optionally writes the JSON report to
/// `json_path` — exactly the one-shot CLI's output contract.
fn submit_and_report(
    server: &ServerAddr,
    spec: &JobSpec,
    wait: bool,
    json_path: Option<String>,
) -> Result<(), CliError> {
    let submitted = client::submit(server, spec).map_err(|e| CliError::Run(e.to_string()))?;
    if !wait {
        println!(
            "job {} {} (cache {})",
            submitted.id, submitted.status, submitted.cache
        );
        return Ok(());
    }
    let done = client::wait(server, &submitted.id).map_err(|e| CliError::Run(e.to_string()))?;
    if done.status == "failed" {
        return Err(CliError::Run(format!(
            "job {} failed: {}",
            done.id,
            done.error.unwrap_or_else(|| "unknown error".into())
        )));
    }
    let output = done
        .output
        .ok_or_else(|| CliError::Run("server reported done without output".into()))?;
    if let Some(path) = json_path {
        let json = output
            .json
            .ok_or_else(|| CliError::Run("job produced no JSON report".into()))?;
        write_file(&path, json.as_bytes())?;
        eprintln!("wrote {path}");
    }
    print!("{}", output.text);
    Ok(())
}

fn submit_profile(server: &ServerAddr, rest: &[String], wait: bool) -> Result<(), CliError> {
    let parsed = parse_args(rest)?;
    if parsed.csv.is_some() || parsed.html.is_some() || parsed.check {
        return Err(CliError::Usage(
            "--csv/--html/--check are not valid for submit (render locally instead)".into(),
        ));
    }
    let [path] = parsed.positional.as_slice() else {
        return Err(CliError::Usage("expected exactly one program file".into()));
    };
    let source = read_file(path)?;
    let spec = JobSpec::Profile {
        program: path.clone(),
        source,
        input: parsed.input,
        options: parsed.opts,
    };
    submit_and_report(server, &spec, wait, None)
}

fn submit_sweep(server: &ServerAddr, rest: &[String], wait: bool) -> Result<(), CliError> {
    let mut sizes: Vec<u64> = Vec::new();
    let mut criteria: Vec<String> = Vec::new();
    let mut base = AlgoProfOptions::default();
    let mut json: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--sizes" => {
                sizes = parse_int_list("--sizes", flag_value(rest, i)?)?;
                i += 1;
            }
            "--criteria" => {
                criteria = flag_value(rest, i)?
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(|p| p.trim().to_owned())
                    .collect();
                i += 1;
            }
            "--sizing" => {
                base.array_strategy = parse_sizing(flag_value(rest, i)?)?;
                i += 1;
            }
            "--grouping" => {
                base.grouping = parse_grouping(flag_value(rest, i)?)?;
                i += 1;
            }
            "--snapshots" => {
                base.snapshot_policy = parse_snapshots(flag_value(rest, i)?)?;
                i += 1;
            }
            "--json" => {
                json = Some(flag_value(rest, i)?.to_owned());
                i += 1;
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?} for submit sweep"
                )));
            }
            other => positional.push(other.to_owned()),
        }
        i += 1;
    }
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage(
            "sweep expects exactly one program file".into(),
        ));
    };
    if sizes.is_empty() {
        return Err(CliError::Usage("sweep requires --sizes n1,n2,...".into()));
    }
    if json.is_some() && !wait {
        return Err(CliError::Usage(
            "--json requires --wait (the report is part of the result)".into(),
        ));
    }
    let ablations = build_ablations(&criteria, base)?;
    let source = read_file(path)?;
    let spec = JobSpec::Sweep {
        program: path.clone(),
        source,
        sizes,
        ablations,
    };
    submit_and_report(server, &spec, wait, json)
}

fn submit_analyze(server: &ServerAddr, rest: &[String], wait: bool) -> Result<(), CliError> {
    let parsed = parse_args(rest)?;
    if !parsed.input.is_empty() {
        return Err(CliError::Usage(
            "--input is not valid for analyze: inputs are embedded in the trace".into(),
        ));
    }
    if parsed.csv.is_some() || parsed.html.is_some() || parsed.check {
        return Err(CliError::Usage(
            "--csv/--html/--check are not valid for submit (render locally instead)".into(),
        ));
    }
    let [path] = parsed.positional.as_slice() else {
        return Err(CliError::Usage("expected exactly one trace file".into()));
    };
    let trace = if path == "-" {
        let mut bytes = Vec::new();
        std::io::stdin()
            .lock()
            .read_to_end(&mut bytes)
            .map_err(|e| CliError::Run(format!("cannot read stdin: {e}")))?;
        bytes
    } else {
        std::fs::read(path).map_err(|e| CliError::from(ProfileError::io("read", path, &e)))?
    };
    let spec = JobSpec::Analyze {
        trace,
        options: parsed.opts,
    };
    submit_and_report(server, &spec, wait, None)
}
