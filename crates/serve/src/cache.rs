//! Content-addressed result cache.
//!
//! Results are keyed by [`JobSpec::cache_key`] — a SHA-256 over the
//! canonical job encoding — so "same key" means "same bytes out", and a
//! cached result can be handed to any client without re-execution. The
//! cache is a two-level store: an in-memory map for the daemon's
//! lifetime, optionally backed by a directory (`--cache-dir`) that
//! survives restarts. Disk writes go through a temp file + rename, so a
//! crashed write can never leave a half-entry that later reads as a
//! corrupt result.
//!
//! [`JobSpec::cache_key`]: algoprof::JobSpec::cache_key

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use algoprof::JobOutput;

/// Magic + schema version for on-disk entries; bump the version when the
/// encoding changes so stale files are treated as misses, not garbage.
const DISK_MAGIC: &[u8; 4] = b"APCR";
const DISK_VERSION: u32 = 1;

/// Counters exposed by the daemon's `/api/v1/cache/stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct keys currently stored (disk entries when persistent,
    /// in-memory entries otherwise).
    pub entries: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results written.
    pub stores: u64,
}

/// See the module docs.
pub struct ResultCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<String, Arc<JobOutput>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl ResultCache {
    /// An in-memory cache, optionally persisted under `dir` (created if
    /// missing).
    pub fn new(dir: Option<PathBuf>) -> io::Result<Self> {
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ResultCache {
            dir,
            mem: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    /// Looks up `key`, counting a hit or miss. Disk hits are promoted
    /// into the in-memory map.
    pub fn get(&self, key: &str) -> Option<Arc<JobOutput>> {
        let mut mem = self.mem.lock().expect("cache map is never poisoned");
        if let Some(output) = mem.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(output));
        }
        if let Some(dir) = &self.dir {
            if let Some(output) = read_entry(&dir.join(key)) {
                let output = Arc::new(output);
                mem.insert(key.to_owned(), Arc::clone(&output));
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(output);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `output` under `key`. Concurrent stores of the same key
    /// are harmless: equal keys imply byte-identical outputs, so last
    /// writer wins with the same bytes.
    pub fn put(&self, key: &str, output: Arc<JobOutput>) {
        self.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(dir) = &self.dir {
            // A failed disk write degrades the entry to memory-only; the
            // daemon keeps serving.
            let _ = write_entry(dir, key, &output);
        }
        self.mem
            .lock()
            .expect("cache map is never poisoned")
            .insert(key.to_owned(), output);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = match &self.dir {
            Some(dir) => std::fs::read_dir(dir)
                .map(|it| {
                    it.filter_map(Result::ok)
                        .filter(|e| !e.file_name().to_string_lossy().starts_with('.'))
                        .count() as u64
                })
                .unwrap_or(0),
            None => self.mem.lock().expect("cache map is never poisoned").len() as u64,
        };
        CacheStats {
            entries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

fn encode_entry(output: &JobOutput) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(DISK_MAGIC);
    bytes.extend_from_slice(&DISK_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(output.text.len() as u64).to_le_bytes());
    bytes.extend_from_slice(output.text.as_bytes());
    match &output.json {
        None => bytes.push(0),
        Some(json) => {
            bytes.push(1);
            bytes.extend_from_slice(&(json.len() as u64).to_le_bytes());
            bytes.extend_from_slice(json.as_bytes());
        }
    }
    bytes
}

fn decode_entry(bytes: &[u8]) -> Option<JobOutput> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = bytes.get(*pos..*pos + n)?;
        *pos += n;
        Some(slice)
    };
    if take(&mut pos, 4)? != DISK_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
    if version != DISK_VERSION {
        return None;
    }
    let text_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize;
    let text = String::from_utf8(take(&mut pos, text_len)?.to_vec()).ok()?;
    let json = match take(&mut pos, 1)? {
        [0] => None,
        [1] => {
            let json_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize;
            Some(String::from_utf8(take(&mut pos, json_len)?.to_vec()).ok()?)
        }
        _ => return None,
    };
    if pos != bytes.len() {
        return None;
    }
    Some(JobOutput { text, json })
}

fn read_entry(path: &Path) -> Option<JobOutput> {
    decode_entry(&std::fs::read(path).ok()?)
}

fn write_entry(dir: &Path, key: &str, output: &JobOutput) -> io::Result<()> {
    let tmp = dir.join(format!(".tmp-{}-{}", key, std::process::id()));
    std::fs::write(&tmp, encode_entry(output))?;
    std::fs::rename(&tmp, dir.join(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(json: bool) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            text: "sweep report\nline two\n".into(),
            json: json.then(|| "{\"sizes\": [4, 8]}".into()),
        })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("algoprof-cache-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn memory_cache_hits_and_misses() {
        let cache = ResultCache::new(None).expect("builds");
        assert!(cache.get("k1").is_none());
        cache.put("k1", sample(true));
        let hit = cache.get("k1").expect("hit");
        assert_eq!(*hit, *sample(true));
        let stats = cache.stats();
        assert_eq!(
            stats,
            CacheStats {
                entries: 1,
                hits: 1,
                misses: 1,
                stores: 1
            }
        );
    }

    #[test]
    fn disk_cache_survives_a_new_instance() {
        let dir = temp_dir("persist");
        {
            let cache = ResultCache::new(Some(dir.clone())).expect("builds");
            cache.put("deadbeef", sample(true));
            cache.put("cafe", sample(false));
        }
        let cache = ResultCache::new(Some(dir.clone())).expect("rebuilds");
        assert_eq!(*cache.get("deadbeef").expect("disk hit"), *sample(true));
        assert_eq!(*cache.get("cafe").expect("disk hit"), *sample(false));
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().hits, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_disk_entries_read_as_misses() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::new(Some(dir.clone())).expect("builds");
        std::fs::write(dir.join("badkey"), b"not an APCR entry").expect("writes");
        assert!(cache.get("badkey").is_none());
        // Truncated but well-magic'd entry.
        let mut bytes = encode_entry(&sample(true));
        bytes.truncate(bytes.len() - 3);
        std::fs::write(dir.join("shortkey"), bytes).expect("writes");
        assert!(cache.get("shortkey").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn entry_codec_round_trips() {
        for output in [sample(true), sample(false)] {
            let decoded = decode_entry(&encode_entry(&output)).expect("decodes");
            assert_eq!(decoded, *output);
        }
    }
}
