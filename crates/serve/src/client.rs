//! Blocking client for the serve protocol, used by `algoprof submit`,
//! the end-to-end tests, and the throughput benchmark.
//!
//! One connection per request ([`crate::http`] framing); results come
//! back as plain structs so callers never touch JSON.

use std::fmt;
use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use algoprof::{JobOutput, JobSpec};

use crate::api::job_to_json;
use crate::cache::CacheStats;
use crate::http;
use crate::json::{self, Json};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum ServerAddr {
    /// `host:port`.
    Tcp(String),
    /// Unix domain socket path.
    Unix(PathBuf),
}

impl fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerAddr::Tcp(addr) => write!(f, "{addr}"),
            ServerAddr::Unix(path) => write!(f, "{}", path.display()),
        }
    }
}

/// Client-side failure: transport trouble or a non-2xx protocol answer.
#[derive(Debug)]
pub struct ClientError(pub String);

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError(format!("connection failed: {e}"))
    }
}

/// What `POST /api/v1/jobs` answered.
#[derive(Debug, Clone)]
pub struct SubmitResponse {
    pub id: String,
    /// `queued` (miss) or `done` (cache hit).
    pub status: String,
    /// `hit` or `miss`.
    pub cache: String,
}

/// One `GET /api/v1/jobs/<id>` answer.
#[derive(Debug, Clone)]
pub struct JobStatus {
    pub id: String,
    pub status: String,
    pub cache: String,
    pub output: Option<JobOutput>,
    pub error: Option<String>,
}

/// What the streaming endpoint answered.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The profile report, byte-identical to `algoprof analyze` output.
    pub text: String,
    /// The online per-node fits section.
    pub stream_fits: String,
    pub events: u64,
    pub bytes: u64,
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

fn connect(addr: &ServerAddr) -> Result<Conn, ClientError> {
    match addr {
        ServerAddr::Tcp(spec) => TcpStream::connect(spec)
            .map(Conn::Tcp)
            .map_err(|e| ClientError(format!("cannot connect to {spec}: {e}"))),
        #[cfg(unix)]
        ServerAddr::Unix(path) => UnixStream::connect(path)
            .map(Conn::Unix)
            .map_err(|e| ClientError(format!("cannot connect to {}: {e}", path.display()))),
        #[cfg(not(unix))]
        ServerAddr::Unix(path) => Err(ClientError(format!(
            "unix sockets are unsupported on this platform ({})",
            path.display()
        ))),
    }
}

/// Sends one request and parses the JSON answer; non-2xx statuses carry
/// their `error` member back as the failure message.
fn exchange(addr: &ServerAddr, method: &str, path: &str, body: &[u8]) -> Result<Json, ClientError> {
    let mut conn = connect(addr)?;
    http::write_request(&mut conn, method, path, body)?;
    let response = http::read_response(&mut BufReader::new(conn))?;
    parse_answer(&response)
}

fn parse_answer(response: &http::Response) -> Result<Json, ClientError> {
    let text = std::str::from_utf8(&response.body)
        .map_err(|_| ClientError("server sent a non-UTF-8 body".into()))?;
    let value = json::parse(text).map_err(|e| ClientError(format!("server sent bad JSON: {e}")))?;
    if response.status >= 300 {
        let message = value
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown server error");
        return Err(ClientError(format!(
            "server answered {}: {message}",
            response.status
        )));
    }
    Ok(value)
}

fn required_str(value: &Json, key: &str) -> Result<String, ClientError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ClientError(format!("server answer lacks {key:?}")))
}

/// Submits a job, returning its id and whether the cache answered.
pub fn submit(addr: &ServerAddr, spec: &JobSpec) -> Result<SubmitResponse, ClientError> {
    submit_raw(addr, job_to_json(spec).to_string_compact().as_bytes())
}

/// Submits a pre-encoded body (tests use this to exercise daemon-side
/// validation).
pub fn submit_raw(addr: &ServerAddr, body: &[u8]) -> Result<SubmitResponse, ClientError> {
    let value = exchange(addr, "POST", "/api/v1/jobs", body)?;
    Ok(SubmitResponse {
        id: required_str(&value, "id")?,
        status: required_str(&value, "status")?,
        cache: required_str(&value, "cache")?,
    })
}

/// Fetches one job's status.
pub fn status(addr: &ServerAddr, id: &str) -> Result<JobStatus, ClientError> {
    let value = exchange(addr, "GET", &format!("/api/v1/jobs/{id}"), b"")?;
    let output = value.get("output").map(|o| {
        Ok::<JobOutput, ClientError>(JobOutput {
            text: required_str(o, "text")?,
            json: o.get("json").and_then(Json::as_str).map(str::to_owned),
        })
    });
    Ok(JobStatus {
        id: required_str(&value, "id")?,
        status: required_str(&value, "status")?,
        cache: required_str(&value, "cache")?,
        output: output.transpose()?,
        error: value.get("error").and_then(Json::as_str).map(str::to_owned),
    })
}

/// Polls until the job leaves the queue (done or failed). Jobs are
/// short; 10 minutes of polling means something is wedged.
pub fn wait(addr: &ServerAddr, id: &str) -> Result<JobStatus, ClientError> {
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let current = status(addr, id)?;
        match current.status.as_str() {
            "done" | "failed" => return Ok(current),
            _ if Instant::now() > deadline => {
                return Err(ClientError(format!("timed out waiting for job {id}")));
            }
            _ => std::thread::sleep(Duration::from_millis(15)),
        }
    }
}

/// Uploads an APTR trace with chunked framing, so the daemon analyzes
/// while the upload is in flight. `query` carries option overrides
/// (`criterion=all&sizing=unique`...), empty for defaults.
pub fn stream_trace(
    addr: &ServerAddr,
    trace: &mut impl Read,
    query: &str,
) -> Result<StreamReport, ClientError> {
    let mut conn = connect(addr)?;
    let path = if query.is_empty() {
        "/api/v1/stream".to_owned()
    } else {
        format!("/api/v1/stream?{query}")
    };
    http::write_chunked_request_head(&mut conn, "POST", &path)?;
    let mut buf = [0u8; 32 * 1024];
    loop {
        let n = trace
            .read(&mut buf)
            .map_err(|e| ClientError(format!("cannot read trace: {e}")))?;
        if n == 0 {
            break;
        }
        http::write_chunk(&mut conn, &buf[..n])?;
    }
    http::finish_chunks(&mut conn)?;
    let response = http::read_response(&mut BufReader::new(conn))?;
    let value = parse_answer(&response)?;
    Ok(StreamReport {
        text: required_str(&value, "text")?,
        stream_fits: required_str(&value, "stream_fits")?,
        events: value.get("events").and_then(Json::as_u64).unwrap_or(0),
        bytes: value.get("bytes").and_then(Json::as_u64).unwrap_or(0),
    })
}

/// Fetches the cache counters.
pub fn cache_stats(addr: &ServerAddr) -> Result<CacheStats, ClientError> {
    let value = exchange(addr, "GET", "/api/v1/cache/stats", b"")?;
    let num = |key: &str| -> Result<u64, ClientError> {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError(format!("server answer lacks {key:?}")))
    };
    Ok(CacheStats {
        entries: num("entries")?,
        hits: num("hits")?,
        misses: num("misses")?,
        stores: num("stores")?,
    })
}

/// Asks the daemon whether it is alive.
pub fn health(addr: &ServerAddr) -> Result<(), ClientError> {
    exchange(addr, "GET", "/api/v1/health", b"").map(|_| ())
}

/// Asks the daemon to stop accepting and drain.
pub fn shutdown(addr: &ServerAddr) -> Result<(), ClientError> {
    exchange(addr, "POST", "/api/v1/shutdown", b"").map(|_| ())
}
