//! Hand-rolled HTTP/1.1 framing: just enough of RFC 7230 for the serve
//! protocol — request/response lines, headers, `Content-Length` bodies,
//! and `Transfer-Encoding: chunked` (the streaming-upload path), over
//! any `Read + Write` transport (TCP or Unix socket).
//!
//! The repo is offline, so like the JSON codec next door this is a
//! from-scratch implementation rather than a dependency. Every
//! connection carries exactly one request/response exchange
//! (`Connection: close` semantics): the daemon is a job queue, not a
//! web server, and one-shot connections keep the framing trivial to
//! reason about.

use std::io::{self, BufRead, Write};

/// Longest accepted request/status/header line.
const MAX_LINE: usize = 64 * 1024;
/// Largest accepted body (a trace upload can be big, but bounded).
pub const MAX_BODY: u64 = 256 * 1024 * 1024;
/// Streaming reads hand the consumer chunks of at most this size.
const STREAM_CHUNK: usize = 64 * 1024;

/// A parsed request head (the body is read separately so handlers can
/// stream it).
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path including any query string, exactly as sent.
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First header with `name` (lowercase), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed response (client side).
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
}

/// How a message body is framed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyKind {
    Empty,
    Length(u64),
    Chunked,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the
/// terminator. `Ok(None)` means EOF before any byte.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(bad("connection closed mid-line"));
            }
            _ => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| bad("non-UTF-8 bytes in header line"))?;
                    return Ok(Some(line));
                }
                if buf.len() >= MAX_LINE {
                    return Err(bad("header line too long"));
                }
                buf.push(byte[0]);
            }
        }
    }
}

fn read_headers(r: &mut impl BufRead) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| bad("connection closed in headers"))?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
}

/// Reads a request head. `Ok(None)` when the peer closed the connection
/// without sending anything (a clean no-request close).
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad(format!("malformed request line {line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol {version:?}")));
    }
    let headers = read_headers(r)?;
    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
    }))
}

/// Determines how the request body is framed from its headers.
pub fn body_kind(req: &Request) -> io::Result<BodyKind> {
    if let Some(te) = req.header("transfer-encoding") {
        if te.eq_ignore_ascii_case("chunked") {
            return Ok(BodyKind::Chunked);
        }
        return Err(bad(format!("unsupported transfer-encoding {te:?}")));
    }
    match req.header("content-length") {
        Some(v) => {
            let n: u64 = v
                .parse()
                .map_err(|_| bad(format!("bad content-length {v:?}")))?;
            Ok(if n == 0 {
                BodyKind::Empty
            } else {
                BodyKind::Length(n)
            })
        }
        None => Ok(BodyKind::Empty),
    }
}

/// Streams the body to `consume` in bounded chunks, returning the total
/// byte count. This is what lets the trace-upload endpoint analyze while
/// the upload is still arriving.
pub fn read_body_streaming(
    r: &mut impl BufRead,
    kind: BodyKind,
    mut consume: impl FnMut(&[u8]) -> io::Result<()>,
) -> io::Result<u64> {
    let mut total: u64 = 0;
    let mut buf = [0u8; STREAM_CHUNK];
    match kind {
        BodyKind::Empty => {}
        BodyKind::Length(mut remaining) => {
            if remaining > MAX_BODY {
                return Err(bad("body exceeds the size limit"));
            }
            while remaining > 0 {
                let want = remaining.min(buf.len() as u64) as usize;
                let n = r.read(&mut buf[..want])?;
                if n == 0 {
                    return Err(bad("connection closed mid-body"));
                }
                consume(&buf[..n])?;
                total += n as u64;
                remaining -= n as u64;
            }
        }
        BodyKind::Chunked => loop {
            let line = read_line(r)?.ok_or_else(|| bad("connection closed before chunk size"))?;
            // Per RFC 7230 a chunk size may carry extensions after ';'.
            let size_text = line.split(';').next().unwrap_or("").trim();
            let mut size = u64::from_str_radix(size_text, 16)
                .map_err(|_| bad(format!("bad chunk size {line:?}")))?;
            if size == 0 {
                // Trailer section: lines until the empty one.
                while !read_line(r)?
                    .ok_or_else(|| bad("connection closed in trailers"))?
                    .is_empty()
                {}
                break;
            }
            if total.saturating_add(size) > MAX_BODY {
                return Err(bad("body exceeds the size limit"));
            }
            while size > 0 {
                let want = size.min(buf.len() as u64) as usize;
                let n = r.read(&mut buf[..want])?;
                if n == 0 {
                    return Err(bad("connection closed mid-chunk"));
                }
                consume(&buf[..n])?;
                total += n as u64;
                size -= n as u64;
            }
            let sep = read_line(r)?.ok_or_else(|| bad("connection closed after chunk"))?;
            if !sep.is_empty() {
                return Err(bad("missing CRLF after chunk data"));
            }
        },
    }
    Ok(total)
}

/// Reads the whole body into memory.
pub fn read_body(r: &mut impl BufRead, kind: BodyKind) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    read_body_streaming(r, kind, |chunk| {
        body.extend_from_slice(chunk);
        Ok(())
    })?;
    Ok(body)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete response (Content-Length framing, connection
/// closing after it).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Writes a complete request with a Content-Length body.
pub fn write_request(w: &mut impl Write, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
    write!(
        w,
        "{} {} HTTP/1.1\r\nhost: algoprof\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        method,
        path,
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Starts a chunked-body request; follow with [`write_chunk`] calls and
/// one [`finish_chunks`].
pub fn write_chunked_request_head(w: &mut impl Write, method: &str, path: &str) -> io::Result<()> {
    write!(
        w,
        "{method} {path} HTTP/1.1\r\nhost: algoprof\r\ncontent-type: application/octet-stream\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n"
    )
}

/// Writes one non-empty chunk.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")
}

/// Terminates a chunked body.
pub fn finish_chunks(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Reads a response (client side). The body is framed by Content-Length
/// or, absent that, runs to connection close.
pub fn read_response(r: &mut impl BufRead) -> io::Result<Response> {
    let line = read_line(r)?.ok_or_else(|| bad("connection closed before status line"))?;
    let mut parts = line.split_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(bad(format!("malformed status line {line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol {version:?}")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| bad(format!("bad status code {code:?}")))?;
    let headers = read_headers(r)?;
    let length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<u64>())
        .transpose()
        .map_err(|_| bad("bad content-length"))?;
    let mut body = Vec::new();
    match length {
        Some(n) => {
            if n > MAX_BODY {
                return Err(bad("body exceeds the size limit"));
            }
            body.resize(n as usize, 0);
            r.read_exact(&mut body)?;
        }
        None => {
            r.read_to_end(&mut body)?;
        }
    }
    Ok(Response { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_request(raw: &[u8]) -> (Request, Vec<u8>) {
        let mut r = BufReader::new(raw);
        let req = read_request(&mut r).expect("reads").expect("a request");
        let kind = body_kind(&req).expect("framed");
        let body = read_body(&mut r, kind).expect("body");
        (req, body)
    }

    #[test]
    fn parses_a_content_length_request() {
        let (req, body) = parse_request(
            b"POST /api/v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/api/v1/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(body, b"hello");
    }

    #[test]
    fn parses_a_chunked_request_incrementally() {
        let raw =
            b"POST /s HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        let req = read_request(&mut r).expect("reads").expect("a request");
        let kind = body_kind(&req).expect("framed");
        let mut pieces: Vec<Vec<u8>> = Vec::new();
        let total = read_body_streaming(&mut r, kind, |c| {
            pieces.push(c.to_vec());
            Ok(())
        })
        .expect("streams");
        assert_eq!(total, 9);
        assert_eq!(pieces.concat(), b"wikipedia");
        // The consumer saw the chunks as framed, not one buffered blob.
        assert_eq!(pieces.len(), 2);
    }

    #[test]
    fn empty_connection_is_none() {
        let mut r = BufReader::new(&b""[..]);
        assert!(read_request(&mut r).expect("ok").is_none());
    }

    #[test]
    fn malformed_heads_are_errors() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let mut r = BufReader::new(raw);
            let result = read_request(&mut r).and_then(|req| {
                body_kind(&req.ok_or_else(|| bad("eof"))?)?;
                Ok(())
            });
            assert!(result.is_err(), "{raw:?} should fail");
        }
    }

    #[test]
    fn truncated_bodies_are_errors() {
        let mut r = BufReader::new(&b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"[..]);
        let req = read_request(&mut r).expect("reads").expect("req");
        let kind = body_kind(&req).expect("framed");
        assert!(read_body(&mut r, kind).is_err());

        let mut r =
            BufReader::new(&b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nx"[..]);
        let req = read_request(&mut r).expect("reads").expect("req");
        let kind = body_kind(&req).expect("framed");
        assert!(read_body(&mut r, kind).is_err());
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 202, "application/json", b"{\"ok\":true}").expect("writes");
        let resp = read_response(&mut BufReader::new(&wire[..])).expect("reads");
        assert_eq!(resp.status, 202);
        assert_eq!(resp.body, b"{\"ok\":true}");
    }

    #[test]
    fn chunked_writer_matches_reader() {
        let mut wire = Vec::new();
        write_chunked_request_head(&mut wire, "POST", "/api/v1/stream").expect("head");
        write_chunk(&mut wire, b"abc").expect("chunk");
        write_chunk(&mut wire, b"").expect("empty chunk is a no-op");
        write_chunk(&mut wire, b"defg").expect("chunk");
        finish_chunks(&mut wire).expect("finish");
        let (_, body) = parse_request(&wire);
        assert_eq!(body, b"abcdefg");
    }
}
