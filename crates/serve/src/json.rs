//! A minimal JSON value type with a recursive-descent parser and a
//! deterministic serializer.
//!
//! The serve protocol needs structured request/response bodies and the
//! repo is offline (no serde), so — like the LEB128 codec in
//! `algoprof-trace` and the SHA-256 in `algoprof` — the codec is
//! hand-rolled. Objects preserve insertion order, so serializing the
//! same value always yields the same bytes, which the determinism
//! contract ("byte-identical responses for identical submissions")
//! leans on.

use std::fmt;

/// A JSON value. Numbers are `f64` (the protocol only carries sizes,
/// counts and ids that fit exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered members (serialization is deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a u64 (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The numeric payload as an i64 (rejects fractions).
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) {
            Some(n as i64)
        } else {
            None
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes without any whitespace (the protocol's wire form).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integral values print without a trailing ".0" so ids
                // and counts round-trip as written.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by this
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("kind", Json::Str("sweep".into())),
            ("sizes", Json::Arr(vec![Json::Num(4.0), Json::Num(8.0)])),
            ("quiet", Json::Bool(true)),
            ("note", Json::Str("line1\nline2 \"quoted\"".into())),
            ("nothing", Json::Null),
        ]);
        let text = doc.to_string_compact();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
        // Deterministic: serializing again yields the same bytes.
        assert_eq!(back.to_string_compact(), text);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , -2.5 , \"x\\u0041\\n\" ] } ").expect("parses");
        let arr = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("xA\n"));
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(-7.0).to_string_compact(), "-7");
        assert_eq!(Json::Num(2.5).to_string_compact(), "2.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\"}", "nul", "\"open", "1 2", "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors_reject_wrong_shapes() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_i64(), Some(-1));
        assert_eq!(Json::Str("x".into()).as_f64(), None);
        assert_eq!(Json::Null.get("k"), None);
    }
}
