//! **algoprof-serve** — the persistent profiling service.
//!
//! A long-running daemon (`algoprof serve`) that accepts profiling jobs
//! over a minimal hand-rolled HTTP/1.1 + JSON protocol, executes them on
//! a bounded-queue worker pool, and memoizes results in a
//! content-addressed cache keyed by [`JobSpec::cache_key`]. Because job
//! execution is a pure function of the spec (see `algoprof::jobs`), the
//! daemon's responses are byte-identical to the one-shot CLI — at any
//! worker count, from any client, cached or freshly computed.
//!
//! The crate also owns the `algoprof` CLI binary (`src/bin/algoprof.rs`):
//! the one-shot subcommands plus `serve` and `submit`. The binary lives
//! here rather than in the core crate so it can link the service layer
//! without a dependency cycle.
//!
//! Everything is `std`-only: HTTP framing ([`http`]), JSON ([`json`]),
//! and the cache's SHA-256 (in `algoprof::hash`) are from scratch, like
//! the rest of this offline reproduction.
//!
//! See `docs/SERVE.md` for the wire protocol and determinism contract.
//!
//! [`JobSpec::cache_key`]: algoprof::JobSpec::cache_key

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use client::{ClientError, JobStatus, ServerAddr, StreamReport, SubmitResponse};
pub use server::{Server, ServerConfig};
