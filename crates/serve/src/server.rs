//! The serve daemon: an accept loop feeding a bounded job queue on a
//! persistent worker pool, with a content-addressed result cache in
//! front of execution.
//!
//! # Endpoints
//!
//! | method | path                  | purpose                               |
//! |--------|-----------------------|---------------------------------------|
//! | POST   | `/api/v1/jobs`        | submit a job (JSON [`JobSpec`])       |
//! | GET    | `/api/v1/jobs/<id>`   | poll status / fetch the result        |
//! | POST   | `/api/v1/stream`      | upload an APTR trace, analyzed as it arrives |
//! | GET    | `/api/v1/cache/stats` | cache counters                        |
//! | GET    | `/api/v1/health`      | liveness probe                        |
//! | POST   | `/api/v1/shutdown`    | graceful stop (drains accepted jobs)  |
//!
//! Submission consults the cache first: a hit creates an
//! already-`done` job with `"cache":"hit"` and never touches the
//! queue. A miss enqueues execution on the pool; a full queue is a 503
//! (backpressure, not buffering). Results are stored back under the
//! job's content address, so identical resubmissions — from any client,
//! at any `--workers` — return byte-identical output without
//! re-execution.
//!
//! [`JobSpec`]: algoprof::JobSpec

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use algoprof::{default_workers, JobOutput, StreamingAnalysis, WorkerPool};

use crate::api::{job_from_json, options_from_json};
use crate::cache::ResultCache;
use crate::http;
use crate::json::{self, Json};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing jobs; 0 means all cores.
    pub workers: usize,
    /// Jobs the queue holds before submissions bounce with 503.
    pub queue_capacity: usize,
    /// Persist cached results under this directory.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            cache_dir: None,
        }
    }
}

#[derive(Debug)]
enum JobState {
    Queued,
    Running,
    Done(Arc<JobOutput>),
    Failed(String),
}

#[derive(Debug)]
struct JobRecord {
    kind: &'static str,
    cache_key: String,
    cache_hit: bool,
    state: JobState,
}

struct ServerState {
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    cache: ResultCache,
    pool: WorkerPool,
    stop: AtomicBool,
    /// Wakes the (blocking) accept loop so it observes `stop`.
    wake: Box<dyn Fn() + Send + Sync>,
}

/// A running daemon. [`Server::start`] returns immediately; callers
/// embed it (tests, benchmarks) or [`Server::join`] it (the CLI).
pub struct Server {
    addr: Option<SocketAddr>,
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting.
    pub fn start(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = new_state(&config, Box::new(move || drop(TcpStream::connect(local))))?;
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            let mut conns = Vec::new();
            for stream in listener.incoming() {
                if accept_state.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_state = Arc::clone(&accept_state);
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, &conn_state)
                }));
                reap_finished(&mut conns);
            }
            // Every accepted connection finishes its response before the
            // accept thread (and with it the daemon) exits — otherwise
            // the shutdown acknowledgement itself can be cut off
            // mid-write when the process dies.
            for handle in conns {
                let _ = handle.join();
            }
        });
        Ok(Server {
            addr: Some(local),
            state,
            accept: Some(accept),
        })
    }

    /// Binds a Unix domain socket at `path` (replacing a stale one) and
    /// starts accepting.
    #[cfg(unix)]
    pub fn start_unix(path: &std::path::Path, config: ServerConfig) -> io::Result<Server> {
        // A previous daemon that died uncleanly leaves the socket file
        // behind; binding would fail with AddrInUse.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let wake_path = path.to_path_buf();
        let state = new_state(
            &config,
            Box::new(move || drop(UnixStream::connect(&wake_path))),
        )?;
        let accept_state = Arc::clone(&state);
        let sock_path = path.to_path_buf();
        let accept = std::thread::spawn(move || {
            let mut conns = Vec::new();
            for stream in listener.incoming() {
                if accept_state.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_state = Arc::clone(&accept_state);
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, &conn_state)
                }));
                reap_finished(&mut conns);
            }
            for handle in conns {
                let _ = handle.join();
            }
            let _ = std::fs::remove_file(&sock_path);
        });
        Ok(Server {
            addr: None,
            state,
            accept: Some(accept),
        })
    }

    /// The bound TCP address (None for Unix-socket servers).
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Blocks until a shutdown request stops the accept loop, then
    /// drains the worker pool (jobs already accepted still finish).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Asks the daemon to stop (same effect as the shutdown endpoint)
    /// and waits for it.
    pub fn shutdown(self) {
        self.state.stop.store(true, Ordering::SeqCst);
        (self.state.wake)();
        self.join();
    }
}

/// Keeps the live-connection handle list from growing without bound on
/// a long-lived daemon (polling clients open thousands of short
/// connections).
fn reap_finished(conns: &mut Vec<std::thread::JoinHandle<()>>) {
    if conns.len() >= 64 {
        conns.retain(|h| !h.is_finished());
    }
}

fn new_state(
    config: &ServerConfig,
    wake: Box<dyn Fn() + Send + Sync>,
) -> io::Result<Arc<ServerState>> {
    let workers = if config.workers == 0 {
        default_workers()
    } else {
        config.workers
    };
    Ok(Arc::new(ServerState {
        jobs: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(0),
        cache: ResultCache::new(config.cache_dir.clone())?,
        pool: WorkerPool::new(workers, config.queue_capacity),
        stop: AtomicBool::new(false),
        wake,
    }))
}

/// One request/response exchange per connection (`Connection: close`).
fn handle_connection<T: Read + Write>(stream: T, state: &Arc<ServerState>) {
    let mut reader = BufReader::new(stream);
    let (status, body) = match route(&mut reader, state) {
        Ok(response) => response,
        // Peer closed without sending a request (e.g. the shutdown
        // self-wake): nothing to answer.
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return,
        Err(e) => (400, error_json(&e.to_string())),
    };
    let _ = http::write_response(
        reader.get_mut(),
        status,
        "application/json",
        body.to_string_compact().as_bytes(),
    );
    if state.stop.load(Ordering::SeqCst) {
        // Shutdown was requested on this connection: wake the accept
        // loop now that the acknowledgement is on the wire.
        (state.wake)();
    }
}

fn error_json(message: &str) -> Json {
    Json::obj(vec![("error", Json::Str(message.into()))])
}

fn route<R: BufRead>(reader: &mut R, state: &Arc<ServerState>) -> io::Result<(u16, Json)> {
    let Some(request) = http::read_request(reader)? else {
        // Peer connected and closed without a request (e.g. the
        // shutdown self-wake); nothing to answer.
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "no request"));
    };
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.path.as_str(), ""),
    };
    match (request.method.as_str(), path) {
        ("POST", "/api/v1/jobs") => {
            let kind = http::body_kind(&request)?;
            let body = http::read_body(reader, kind)?;
            Ok(submit(state, &body))
        }
        ("GET", _) if path.starts_with("/api/v1/jobs/") => {
            let id = &path["/api/v1/jobs/".len()..];
            Ok(job_status(state, id))
        }
        ("POST", "/api/v1/stream") => {
            let kind = http::body_kind(&request)?;
            Ok(stream_analyze(state, reader, kind, query))
        }
        ("GET", "/api/v1/cache/stats") => {
            let stats = state.cache.stats();
            Ok((
                200,
                Json::obj(vec![
                    ("entries", Json::Num(stats.entries as f64)),
                    ("hits", Json::Num(stats.hits as f64)),
                    ("misses", Json::Num(stats.misses as f64)),
                    ("stores", Json::Num(stats.stores as f64)),
                ]),
            ))
        }
        ("GET", "/api/v1/health") => Ok((200, Json::obj(vec![("ok", Json::Bool(true))]))),
        ("POST", "/api/v1/shutdown") => {
            state.stop.store(true, Ordering::SeqCst);
            Ok((200, Json::obj(vec![("ok", Json::Bool(true))])))
        }
        ("POST" | "GET", _) => Ok((404, error_json(&format!("no such endpoint {path:?}")))),
        (method, _) => Ok((405, error_json(&format!("unsupported method {method:?}")))),
    }
}

fn submit(state: &Arc<ServerState>, body: &[u8]) -> (u16, Json) {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return (400, error_json("body is not UTF-8")),
    };
    let value = match json::parse(text) {
        Ok(value) => value,
        Err(e) => return (400, error_json(&format!("bad JSON: {e}"))),
    };
    let spec = match job_from_json(&value) {
        Ok(spec) => spec,
        Err(e) => return (400, error_json(&e)),
    };
    let cache_key = spec.cache_key();
    let kind = spec.kind();
    let id = state.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    let id_text = format!("j{id}");

    if let Some(output) = state.cache.get(&cache_key) {
        state.jobs.lock().expect("job table").insert(
            id,
            JobRecord {
                kind,
                cache_key,
                cache_hit: true,
                state: JobState::Done(output),
            },
        );
        return (
            200,
            Json::obj(vec![
                ("id", Json::Str(id_text)),
                ("status", Json::Str("done".into())),
                ("cache", Json::Str("hit".into())),
            ]),
        );
    }

    state.jobs.lock().expect("job table").insert(
        id,
        JobRecord {
            kind,
            cache_key: cache_key.clone(),
            cache_hit: false,
            state: JobState::Queued,
        },
    );
    let job_state = Arc::clone(state);
    let submitted = state.pool.try_submit(move || {
        set_state(&job_state, id, JobState::Running);
        match spec.execute() {
            Ok(output) => {
                let output = Arc::new(output);
                job_state.cache.put(&cache_key, Arc::clone(&output));
                set_state(&job_state, id, JobState::Done(output));
            }
            Err(e) => set_state(&job_state, id, JobState::Failed(e.to_string())),
        }
    });
    if submitted.is_err() {
        state.jobs.lock().expect("job table").remove(&id);
        return (503, error_json("job queue is full, try again"));
    }
    (
        202,
        Json::obj(vec![
            ("id", Json::Str(id_text)),
            ("status", Json::Str("queued".into())),
            ("cache", Json::Str("miss".into())),
        ]),
    )
}

fn set_state(state: &ServerState, id: u64, new: JobState) {
    if let Some(record) = state.jobs.lock().expect("job table").get_mut(&id) {
        record.state = new;
    }
}

fn job_status(state: &Arc<ServerState>, id: &str) -> (u16, Json) {
    let Some(number) = id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) else {
        return (404, error_json(&format!("malformed job id {id:?}")));
    };
    let jobs = state.jobs.lock().expect("job table");
    let Some(record) = jobs.get(&number) else {
        return (404, error_json(&format!("no such job {id:?}")));
    };
    let mut members = vec![
        ("id", Json::Str(id.to_owned())),
        ("kind", Json::Str(record.kind.into())),
        ("cache_key", Json::Str(record.cache_key.clone())),
        (
            "cache",
            Json::Str(if record.cache_hit { "hit" } else { "miss" }.into()),
        ),
    ];
    match &record.state {
        JobState::Queued => members.push(("status", Json::Str("queued".into()))),
        JobState::Running => members.push(("status", Json::Str("running".into()))),
        JobState::Done(output) => {
            members.push(("status", Json::Str("done".into())));
            members.push((
                "output",
                Json::obj(vec![
                    ("text", Json::Str(output.text.clone())),
                    (
                        "json",
                        output
                            .json
                            .as_ref()
                            .map(|j| Json::Str(j.clone()))
                            .unwrap_or(Json::Null),
                    ),
                ]),
            ));
        }
        JobState::Failed(message) => {
            members.push(("status", Json::Str("failed".into())));
            members.push(("error", Json::Str(message.clone())));
        }
    }
    (200, Json::obj(members))
}

/// The streaming path: the APTR body is fed into [`StreamingAnalysis`]
/// chunk by chunk as it is read off the socket, so replay and online
/// fitting overlap the upload instead of waiting for it.
fn stream_analyze<R: BufRead>(
    state: &Arc<ServerState>,
    reader: &mut R,
    kind: http::BodyKind,
    query: &str,
) -> (u16, Json) {
    let options = match options_from_query(query) {
        Ok(options) => options,
        Err(e) => return (400, error_json(&e)),
    };
    let mut analysis = StreamingAnalysis::new(options);
    let mut trace_error: Option<String> = None;
    let streamed = http::read_body_streaming(reader, kind, |chunk| {
        if trace_error.is_none() {
            if let Err(e) = analysis.feed(chunk) {
                // Remember the analysis failure but keep draining the
                // body so the client can read our response.
                trace_error = Some(e.to_string());
            }
        }
        Ok(())
    });
    if let Err(e) = streamed {
        return (400, error_json(&e.to_string()));
    }
    if let Some(e) = trace_error {
        return (400, error_json(&e));
    }
    let report = match analysis.finish() {
        Ok(report) => report,
        Err(e) => return (400, error_json(&e.to_string())),
    };
    let _ = state; // reserved: streaming results are not cached (no stable job spec)
    (
        200,
        Json::obj(vec![
            ("text", Json::Str(algoprof::render_set(&report.profiles))),
            (
                "stream_fits",
                Json::Str(algoprof::render_stream_fits(&report)),
            ),
            ("events", Json::Num(report.events as f64)),
            ("bytes", Json::Num(report.bytes as f64)),
        ]),
    )
}

/// Parses `criterion=...&sizing=...&snapshots=...&grouping=...` query
/// options (same names and values as the CLI flags).
fn options_from_query(query: &str) -> Result<algoprof::AlgoProfOptions, String> {
    let mut members = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("malformed query parameter {pair:?}"))?;
        members.push((k.to_owned(), Json::Str(v.to_owned())));
    }
    options_from_json(Some(&Json::Obj(members)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{self, ServerAddr};
    use algoprof::record_source;
    use algoprof::JobSpec;

    const SRC: &str = "class Main { static int main() {
        int size = readInput();
        Node head = null;
        for (int i = 0; i < size; i = i + 1) {
            Node n = new Node();
            n.next = head;
            head = n;
        }
        return 0;
    } }
    class Node { Node next; }";

    fn sweep_spec() -> JobSpec {
        JobSpec::Sweep {
            program: "unit.jay".into(),
            source: SRC.into(),
            sizes: vec![4, 8],
            ablations: vec![algoprof::SweepAblation {
                name: "default".into(),
                options: Default::default(),
            }],
        }
    }

    #[test]
    fn submit_poll_resubmit_and_shutdown() {
        let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("starts");
        let addr = ServerAddr::Tcp(server.addr().expect("tcp").to_string());

        let first = client::submit(&addr, &sweep_spec()).expect("submits");
        assert_eq!(first.cache, "miss");
        let done = client::wait(&addr, &first.id).expect("finishes");
        let output = done.output.expect("has output");
        assert!(output.text.contains("sweep report"));
        assert!(output
            .json
            .expect("sweep json")
            .contains("\"sizes\": [4, 8]"));

        // Identical resubmission: answered from cache, already done.
        let second = client::submit(&addr, &sweep_spec()).expect("resubmits");
        assert_eq!(second.cache, "hit");
        assert_eq!(second.status, "done");
        let cached = client::wait(&addr, &second.id).expect("fetches");
        assert_eq!(cached.output.expect("output").text, output.text);

        let stats = client::cache_stats(&addr).expect("stats");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.stores, 1);

        client::shutdown(&addr).expect("shutdown acknowledged");
        server.join();
    }

    #[test]
    fn streaming_upload_matches_batch_analysis() {
        let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("starts");
        let addr = ServerAddr::Tcp(server.addr().expect("tcp").to_string());
        let trace = record_source(
            "class Main { static int main() {
                Node head = null;
                for (int i = 0; i < 6; i = i + 1) {
                    Node n = new Node(); n.next = head; head = n;
                }
                return 0;
            } }
            class Node { Node next; }",
        )
        .expect("records");
        let report = client::stream_trace(&addr, &mut &trace[..], "").expect("streams");
        let batch = algoprof::profile_trace_with(&trace, Default::default()).expect("batch");
        assert_eq!(report.text, batch.render_text());
        assert!(report.stream_fits.contains("streaming fits"));
        assert_eq!(report.bytes, trace.len() as u64);

        // Garbage upload: a 400 with a trace diagnostic, not a hang.
        let err = client::stream_trace(&addr, &mut &b"junk bytes"[..], "").expect_err("rejected");
        assert!(err.to_string().contains("trace"), "{err}");
        server.shutdown();
    }

    #[test]
    fn bad_submissions_and_unknown_routes_are_client_errors() {
        let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("starts");
        let addr = ServerAddr::Tcp(server.addr().expect("tcp").to_string());
        let err = client::submit_raw(&addr, b"{\"kind\":\"frobnicate\"}").expect_err("rejected");
        assert!(err.to_string().contains("unknown job kind"), "{err}");
        let err = client::submit_raw(&addr, b"not json").expect_err("rejected");
        assert!(err.to_string().contains("bad JSON"), "{err}");
        let err = client::status(&addr, "j999").expect_err("rejected");
        assert!(err.to_string().contains("no such job"), "{err}");
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("algoprof-unit-{}.sock", std::process::id()));
        let server = Server::start_unix(&path, ServerConfig::default()).expect("starts");
        let addr = ServerAddr::Unix(path.clone());
        let submitted = client::submit(&addr, &sweep_spec()).expect("submits");
        let done = client::wait(&addr, &submitted.id).expect("finishes");
        assert!(done.output.expect("output").text.contains("sweep report"));
        client::shutdown(&addr).expect("shutdown acknowledged");
        server.join();
        assert!(!path.exists(), "socket file is removed on shutdown");
    }
}
