//! CLI robustness: every malformed invocation must exit non-zero with a
//! one-line diagnostic (usage mistakes add a usage hint and exit 2) —
//! and never panic. Shells the real binary via `CARGO_BIN_EXE_algoprof`.

use std::path::Path;
use std::process::{Command, Output};

fn algoprof(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_algoprof"))
        .args(args)
        .output()
        .expect("spawns the algoprof binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Asserts a usage mistake: exit code 2, a diagnostic naming the problem,
/// the usage hint, and no panic backtrace.
fn assert_usage_error(args: &[&str], needle: &str) {
    let out = algoprof(args);
    let err = stderr(&out);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {err}"
    );
    assert!(
        err.contains(needle),
        "{args:?} stderr should mention {needle:?}, got: {err}"
    );
    assert!(
        err.contains("--help"),
        "{args:?} stderr should carry the usage hint, got: {err}"
    );
    assert!(!err.contains("panicked"), "{args:?} panicked: {err}");
}

/// Asserts a run failure: exit code 1, a diagnostic, no panic.
fn assert_run_error(args: &[&str], needle: &str) {
    let out = algoprof(args);
    let err = stderr(&out);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{args:?} should exit 1, stderr: {err}"
    );
    assert!(
        err.contains(needle),
        "{args:?} stderr should mention {needle:?}, got: {err}"
    );
    assert!(!err.contains("panicked"), "{args:?} panicked: {err}");
}

#[test]
fn help_exits_zero() {
    let out = algoprof(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: algoprof"));
}

#[test]
fn malformed_invocations_fail_cleanly() {
    // No arguments at all.
    assert_usage_error(&[], "missing subcommand");
    // Unknown flag in each mode.
    assert_usage_error(&["--frobnicate", "p.jay"], "--frobnicate");
    assert_usage_error(&["record", "--frobnicate"], "--frobnicate");
    assert_usage_error(&["sweep", "--frobnicate"], "--frobnicate");
    // Value-taking flags with the value missing.
    assert_usage_error(&["--criterion"], "--criterion requires a value");
    assert_usage_error(&["--csv"], "--csv requires a value");
    assert_usage_error(&["--html"], "--html requires a value");
    assert_usage_error(&["p.jay", "--input"], "--input requires a value");
    assert_usage_error(&["record", "p.jay", "-o"], "-o requires a value");
    assert_usage_error(&["sweep", "p.jay", "--sizes"], "--sizes requires a value");
    assert_usage_error(
        &["sweep", "p.jay", "--sizes", "4", "-j"],
        "-j requires a value",
    );
    // Bad enum / numeric values.
    assert_usage_error(&["--criterion", "bogus", "p.jay"], "unknown criterion");
    assert_usage_error(&["--grouping", "bogus", "p.jay"], "unknown grouping");
    assert_usage_error(&["p.jay", "--input", "1,x,3"], "invalid value");
    assert_usage_error(&["sweep", "p.jay", "--sizes", "4,-1"], "invalid value");
    assert_usage_error(
        &["sweep", "p.jay", "--sizes", "4", "-j", "two"],
        "invalid worker count",
    );
    assert_usage_error(
        &["sweep", "p.jay", "--sizes", "4", "--criteria", "bogus"],
        "unknown criterion",
    );
    // Missing required pieces.
    assert_usage_error(&["record", "p.jay"], "-o");
    assert_usage_error(&["sweep", "p.jay"], "--sizes");
    assert_usage_error(&["analyze"], "trace file");
    assert_usage_error(&["analyze", "t.aptr", "--input", "3"], "--input");
    // Two positionals where one is expected.
    assert_usage_error(&["a.jay", "b.jay"], "exactly one program file");
}

#[test]
fn unreadable_paths_fail_cleanly() {
    assert_run_error(&["/no/such/file.jay"], "cannot read /no/such/file.jay");
    assert_run_error(
        &["record", "/no/such.jay", "-o", "/tmp/t.aptr"],
        "cannot read",
    );
    assert_run_error(&["analyze", "/no/such.aptr"], "cannot read");
    assert_run_error(
        &["sweep", "/no/such.jay", "--sizes", "4,8"],
        "cannot read /no/such.jay",
    );
}

#[test]
fn guest_and_trace_failures_exit_one() {
    let dir = std::env::temp_dir().join(format!("algoprof-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // A program that does not compile.
    let bad = dir.join("bad.jay");
    std::fs::write(&bad, "class Main {").expect("writes");
    assert_run_error(&[bad.to_str().unwrap()], "compilation");

    // A file that is not an APTR trace.
    let junk = dir.join("junk.aptr");
    std::fs::write(&junk, b"definitely not a trace").expect("writes");
    assert_run_error(&["analyze", junk.to_str().unwrap()], "trace");

    // Unwritable output path for a report.
    let good = dir.join("good.jay");
    std::fs::write(&good, "class Main { static int main() { return 0; } }").expect("writes");
    assert_run_error(
        &[good.to_str().unwrap(), "--html", "/no/such/dir/report.html"],
        "cannot write",
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_failures_are_attributed_to_a_job() {
    let dir = std::env::temp_dir().join(format!("algoprof-cli-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    // A guest that throws for sizes above 8: the sweep must report the
    // failing job by label, not panic or deadlock.
    let src = dir.join("throws.jay");
    std::fs::write(
        &src,
        "class Main { static int main() {
            int size = readInput();
            if (size > 8) { throw size; }
            return size;
        } }",
    )
    .expect("writes");
    assert_run_error(
        &[
            "sweep",
            src.to_str().unwrap(),
            "--sizes",
            "4,8,16",
            "--quiet",
        ],
        "job n=16",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn events_usage_and_run_errors() {
    assert_usage_error(&["events"], "exactly one trace file");
    assert_usage_error(&["events", "a.aptr", "b.aptr"], "exactly one trace file");
    assert_usage_error(&["events", "a.aptr", "--frobnicate"], "--frobnicate");
    assert_usage_error(&["events", "a.aptr", "--limit"], "--limit requires a value");
    assert_usage_error(
        &["events", "a.aptr", "--limit", "many"],
        "invalid event limit",
    );
    assert_run_error(&["events", "/no/such.aptr"], "cannot read");

    // A file that is not an APTR trace.
    let dir = std::env::temp_dir().join(format!("algoprof-cli-events-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let junk = dir.join("junk.aptr");
    std::fs::write(&junk, b"definitely not a trace").expect("writes");
    assert_run_error(&["events", junk.to_str().unwrap()], "trace");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn events_dumps_a_recording() {
    let dir = std::env::temp_dir().join(format!("algoprof-cli-events-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src = dir.join("list.jay");
    std::fs::write(
        &src,
        "class Main { static int main() {
            Node head = null;
            for (int i = 0; i < 3; i = i + 1) {
                Node n = new Node();
                n.next = head;
                head = n;
            }
            return 0;
        } }
        class Node { Node next; }",
    )
    .expect("writes");
    let trace = dir.join("list.aptr");
    let out = algoprof(&[
        "record",
        src.to_str().unwrap(),
        "-o",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Plain text: names resolved, one line per event.
    let out = algoprof(&["events", trace.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("object_alloc obj@0 : Node"), "stdout: {text}");
    assert!(text.contains("loop_entry Main.main:loop"), "stdout: {text}");
    assert!(
        text.contains("field_write obj@0.Node.next"),
        "stdout: {text}"
    );

    // JSON lines.
    let out = algoprof(&["events", trace.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(json.lines().count() > 0);
    for line in json.lines() {
        assert!(
            line.starts_with("{\"thread\": 0, \"event\": \""),
            "line: {line}"
        );
        assert!(line.ends_with('}'), "line: {line}");
    }

    // --limit caps the output line count.
    let out = algoprof(&["events", trace.to_str().unwrap(), "--limit", "2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 2);

    // This guest never spawns: every text line is on the main thread,
    // so --thread 0 is the whole dump and --thread 1 is empty.
    let all = algoprof(&["events", trace.to_str().unwrap()]);
    let t0 = algoprof(&["events", trace.to_str().unwrap(), "--thread", "0"]);
    assert!(t0.status.success(), "stderr: {}", stderr(&t0));
    assert_eq!(t0.stdout, all.stdout);
    let t1 = algoprof(&["events", trace.to_str().unwrap(), "--thread", "1"]);
    assert!(t1.status.success(), "stderr: {}", stderr(&t1));
    assert!(t1.stdout.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn events_thread_column_and_filter_on_a_threaded_recording() {
    let dir = std::env::temp_dir().join(format!(
        "algoprof-cli-events-threaded-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src = dir.join("spawny.jay");
    std::fs::write(
        &src,
        "class Main { static int main() {
            int t1 = spawn work(3);
            int t2 = spawn work(5);
            return join t1 + join t2;
        }
        static int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) { s = s + i; }
            return s;
        } }",
    )
    .expect("writes");
    let trace = dir.join("spawny.aptr");
    let out = algoprof(&[
        "record",
        src.to_str().unwrap(),
        "-o",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let out = algoprof(&["events", trace.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("thread_spawn t1"), "stdout: {text}");
    for t in ["t0 ", "t1 ", "t2 "] {
        assert!(
            text.lines().any(|l| l.starts_with(t)),
            "no {t} lines in: {text}"
        );
    }

    // --thread keeps exactly the matching column's lines (t2 is
    // accepted in the column's own spelling too).
    let out = algoprof(&["events", trace.to_str().unwrap(), "--thread", "t2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let t2 = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(!t2.is_empty());
    assert!(t2.lines().all(|l| l.starts_with("t2 ")), "stdout: {t2}");
    let expected: Vec<&str> = text.lines().filter(|l| l.starts_with("t2 ")).collect();
    assert_eq!(t2.lines().collect::<Vec<_>>(), expected);

    // JSON filtering keys on the same delivery thread.
    let out = algoprof(&["events", trace.to_str().unwrap(), "--json", "--thread", "1"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(!json.is_empty());
    for line in json.lines() {
        assert!(
            line.starts_with("{\"thread\": 1, \"event\": \""),
            "line: {line}"
        );
    }

    // Malformed --thread values are usage errors (exit 2).
    assert_usage_error(
        &["events", trace.to_str().unwrap(), "--thread", "banana"],
        "invalid thread id",
    );
    assert_usage_error(
        &["events", trace.to_str().unwrap(), "--thread", "-1"],
        "invalid thread id",
    );
    assert_usage_error(
        &["events", trace.to_str().unwrap(), "--thread"],
        "--thread requires a value",
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_and_disasm_usage_errors() {
    assert_usage_error(&["lint"], "at least one program file");
    assert_usage_error(&["lint", "a.jay", "--frobnicate"], "--frobnicate");
    assert_usage_error(&["disasm"], "exactly one program file");
    assert_usage_error(&["disasm", "a.jay", "--frobnicate"], "--frobnicate");
    assert_run_error(&["lint", "/no/such/file.jay"], "cannot read");
    assert_run_error(&["disasm", "/no/such/file.jay"], "cannot read");
    assert_usage_error(&["costfn"], "exactly one program file");
    assert_usage_error(&["costfn", "a.jay", "--frobnicate"], "--frobnicate");
    assert_run_error(&["costfn", "/no/such/file.jay"], "cannot read");
}

#[test]
fn lint_exit_codes_track_diagnostic_levels() {
    let dir = std::env::temp_dir().join(format!("algoprof-cli-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Error-level defect (frozen loop): plain lint fails.
    let hang = dir.join("hang.jay");
    std::fs::write(
        &hang,
        "class Main { static int main() {
            int i = 0;
            int s = 0;
            while (i < 10) { s = s + 1; }
            return s;
        } }",
    )
    .expect("writes");
    let out = algoprof(&["lint", hang.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("error[AP001]"), "stdout: {text}");
    assert!(stderr(&out).contains("lint failed"), "{}", stderr(&out));

    // Warning-level defect (write-only local): plain lint passes,
    // --strict fails.
    let sloppy = dir.join("sloppy.jay");
    std::fs::write(
        &sloppy,
        "class Main { static int main() {
            int unused = 40 + 2;
            return 0;
        } }",
    )
    .expect("writes");
    let out = algoprof(&["lint", sloppy.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("warning[AP004]"), "stdout: {text}");
    let out = algoprof(&["lint", sloppy.to_str().unwrap(), "--strict"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));

    // Clean program: exit 0, predictions printed.
    let clean = dir.join("clean.jay");
    std::fs::write(
        &clean,
        "class Main { static int main() {
            int s = 0;
            for (int i = 0; i < 8; i = i + 1) { s = s + i; }
            return s;
        } }",
    )
    .expect("writes");
    let out = algoprof(&["lint", clean.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("no findings"), "stdout: {text}");
    assert!(text.contains("predicted complexity"), "stdout: {text}");

    // --json: machine-readable diagnostics and predictions.
    let out = algoprof(&["lint", hang.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(json.contains("\"code\": \"AP001\""), "stdout: {json}");
    assert!(json.contains("\"level\": \"error\""), "stdout: {json}");

    // Multiple files: both reports print, the worst status wins, and
    // every failing file is named.
    let out = algoprof(&["lint", clean.to_str().unwrap(), hang.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("no findings"), "stdout: {text}");
    assert!(text.contains("error[AP001]"), "stdout: {text}");
    assert!(stderr(&out).contains("hang.jay"), "{}", stderr(&out));
    let out = algoprof(&["lint", clean.to_str().unwrap(), sloppy.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn costfn_reports_symbolic_costs_and_features() {
    let dir = std::env::temp_dir().join(format!("algoprof-cli-costfn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let prog = dir.join("sort.jay");
    std::fs::write(
        &prog,
        "class Main {
            static int main() {
                int n = readInput();
                int[] a = new int[n];
                for (int i = 0; i < a.length; i = i + 1) { a[i] = a.length - i; }
                for (int i = 1; i < a.length; i = i + 1) {
                    int key = a[i];
                    int j = i;
                    while (j > 0 && a[j - 1] > key) {
                        a[j] = a[j - 1];
                        j = j - 1;
                    }
                    a[j] = key;
                }
                return 0;
            }
        }",
    )
    .expect("writes");

    let out = algoprof(&["costfn", prog.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("cost functions"), "stdout: {text}");
    assert!(text.contains("0.5*n^2"), "stdout: {text}");
    assert!(text.contains("derivation:"), "stdout: {text}");
    assert!(text.contains("array-access:"), "stdout: {text}");

    let out = algoprof(&["costfn", prog.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(json.contains("\"repetitions\""), "stdout: {json}");
    assert!(json.contains("\"coeff\": 0.5"), "stdout: {json}");
    assert!(json.contains("\"array-access\""), "stdout: {json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn opstats_usage_and_run_errors() {
    assert_usage_error(&["opstats"], "at least one program file");
    assert_usage_error(&["opstats", "a.jay", "--frobnicate"], "--frobnicate");
    assert_usage_error(&["opstats", "a.jay", "--top"], "--top requires a value");
    assert_usage_error(&["opstats", "a.jay", "--top", "many"], "--top expects");
    assert_usage_error(&["opstats", "a.jay", "--input", "1,x"], "invalid value");
    assert_run_error(&["opstats", "/no/such/file.jay"], "cannot read");
}

#[test]
fn opstats_reports_frequencies_and_pairs() {
    let dir = std::env::temp_dir().join(format!("algoprof-cli-opstats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let prog = dir.join("loop.jay");
    std::fs::write(
        &prog,
        "class Main { static int main() {
            int n = readInput();
            int s = 0;
            for (int i = 0; i < n; i = i + 1) { s = s + i; }
            return s;
        } }",
    )
    .expect("writes");
    let path = prog.to_str().unwrap();

    let out = algoprof(&["opstats", path, "--input", "25"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("instructions:"), "stdout: {text}");
    assert!(text.contains("top opcodes:"), "stdout: {text}");
    assert!(text.contains("top pairs:"), "stdout: {text}");
    assert!(text.contains("load"), "stdout: {text}");

    let json = algoprof(&["opstats", path, "--input", "25", "--json", "--top", "4"]);
    assert!(json.status.success(), "stderr: {}", stderr(&json));
    let jtext = String::from_utf8_lossy(&json.stdout).into_owned();
    assert!(jtext.contains("\"instructions\""), "stdout: {jtext}");
    assert!(jtext.contains("\"pairs\""), "stdout: {jtext}");

    // The report counts the logical opcode stream, which fusion does not
    // change: byte-identical with the peephole pass disabled.
    let unfused = Command::new(env!("CARGO_BIN_EXE_algoprof"))
        .args(["opstats", path, "--input", "25"])
        .env("ALGOPROF_NO_FUSE", "1")
        .output()
        .expect("spawns the algoprof binary");
    assert!(unfused.status.success(), "stderr: {}", stderr(&unfused));
    assert_eq!(
        out.stdout, unfused.stdout,
        "opstats must be fusion-invariant"
    );

    // Aggregating a program with itself doubles the instruction count.
    let twice = algoprof(&["opstats", path, path, "--input", "25"]);
    assert!(twice.status.success(), "stderr: {}", stderr(&twice));
    let count_of = |s: &[u8]| -> u64 {
        String::from_utf8_lossy(s)
            .lines()
            .find_map(|l| l.strip_prefix("instructions: ").map(|n| n.parse().unwrap()))
            .expect("instructions line")
    };
    assert_eq!(count_of(&twice.stdout), 2 * count_of(&out.stdout));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disasm_fused_shows_superinstructions() {
    let dir = std::env::temp_dir().join(format!("algoprof-cli-fused-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let prog = dir.join("loop.jay");
    std::fs::write(
        &prog,
        "class Main { static int main() {
            int s = 0;
            for (int i = 0; i < 10; i = i + 1) { s = s + i; }
            return s;
        } }",
    )
    .expect("writes");
    let path = prog.to_str().unwrap();

    let plain = algoprof(&["disasm", path]);
    assert!(plain.status.success(), "stderr: {}", stderr(&plain));
    let plain_text = String::from_utf8_lossy(&plain.stdout).into_owned();
    assert!(
        !plain_text.contains("inc_local") && !plain_text.contains("inc_jump"),
        "stdout: {plain_text}"
    );

    let fused = algoprof(&["disasm", path, "--fused"]);
    assert!(fused.status.success(), "stderr: {}", stderr(&fused));
    let fused_text = String::from_utf8_lossy(&fused.stdout).into_owned();
    assert!(
        fused_text.contains("inc_local") || fused_text.contains("inc_jump"),
        "fused disasm should show the loop-increment superinstruction: {fused_text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disasm_cfg_matches_golden_dot() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_cfg.jay");
    let out = algoprof(&["disasm", fixture.to_str().unwrap(), "--cfg"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let dot = String::from_utf8_lossy(&out.stdout).into_owned();
    let golden = include_str!("fixtures/golden_cfg.dot");
    assert_eq!(
        dot, golden,
        "disasm --cfg drifted from tests/fixtures/golden_cfg.dot; \
         regenerate it if the change is intended"
    );

    // Plain disasm on the same fixture is linear bytecode, not DOT.
    let out = algoprof(&["disasm", fixture.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(!text.contains("digraph"), "stdout: {text}");
    assert!(text.contains("prof_loop_entry"), "stdout: {text}");
}

#[test]
fn sweep_smoke_produces_report_files() {
    let dir = std::env::temp_dir().join(format!("algoprof-cli-ok-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src = dir.join("loop.jay");
    std::fs::write(
        &src,
        "class Main { static int main() {
            int size = readInput();
            Node head = null;
            for (int i = 0; i < size; i = i + 1) {
                Node n = new Node();
                n.next = head;
                head = n;
            }
            return 0;
        } }
        class Node { Node next; }",
    )
    .expect("writes");
    let json = dir.join("sweep.json");
    let html = dir.join("sweep.html");
    let out = algoprof(&[
        "sweep",
        src.to_str().unwrap(),
        "--sizes",
        "4,8,16,32",
        "-j",
        "2",
        "--quiet",
        "--json",
        json.to_str().unwrap(),
        "--html",
        html.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("sweep report"), "stdout: {text}");
    assert!(text.contains("best fit"), "stdout: {text}");
    assert!(Path::new(&json).exists() && Path::new(&html).exists());
    let json_text = std::fs::read_to_string(&json).expect("reads json");
    assert!(json_text.contains("\"sizes\": [4, 8, 16, 32]"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_and_submit_usage_errors() {
    // Malformed listen/connect addresses (bad port, not HOST:PORT).
    assert_usage_error(&["serve", "--addr", "127.0.0.1:99999"], "invalid address");
    assert_usage_error(&["serve", "--addr", "nonsense"], "invalid address");
    assert_usage_error(&["serve", "--addr"], "--addr requires a value");
    assert_usage_error(&["serve", "--workers", "x"], "invalid worker count");
    assert_usage_error(&["serve", "--queue", "0"], "invalid queue capacity");
    assert_usage_error(&["serve", "--frobnicate"], "--frobnicate");
    assert_usage_error(
        &["serve", "--addr", "127.0.0.1:0", "--socket", "/tmp/s.sock"],
        "mutually exclusive",
    );

    // submit invocation mistakes.
    assert_usage_error(&["submit"], "missing job kind");
    assert_usage_error(&["submit", "--wait"], "--wait requires a job");
    assert_usage_error(&["submit", "frobnicate"], "unknown job kind");
    assert_usage_error(&["submit", "--frobnicate", "sweep"], "--frobnicate");
    assert_usage_error(
        &[
            "submit",
            "--addr",
            "1.2.3.4:1",
            "--socket",
            "/tmp/s",
            "sweep",
        ],
        "mutually exclusive",
    );
    assert_usage_error(
        &["submit", "--addr", "1.2.3.4:99999", "sweep"],
        "invalid address",
    );
    assert_usage_error(
        &["submit", "cache-stats", "--wait"],
        "--wait requires a job",
    );
    assert_usage_error(&["submit", "shutdown", "--wait"], "--wait requires a job");
    assert_usage_error(&["submit", "cache-stats", "extra"], "unexpected argument");
    assert_usage_error(&["submit", "sweep", "p.jay"], "--sizes");
    assert_usage_error(
        &[
            "submit", "sweep", "p.jay", "--sizes", "4", "--json", "r.json",
        ],
        "--json requires --wait",
    );
    assert_usage_error(
        &["submit", "sweep", "--sizes", "4"],
        "exactly one program file",
    );
    assert_usage_error(
        &["submit", "profile", "p.jay", "--csv", "out.csv"],
        "not valid for submit",
    );
    assert_usage_error(
        &["submit", "analyze", "t.aptr", "--input", "3"],
        "--input is not valid for analyze",
    );

    // Nothing listens on this port: connecting is a run error, not a panic.
    assert_run_error(
        &["submit", "--addr", "127.0.0.1:1", "cache-stats"],
        "cannot connect",
    );
}

#[test]
fn analyze_reads_a_trace_from_stdin() {
    use std::io::Write as _;
    use std::process::Stdio;

    let dir = std::env::temp_dir().join(format!("algoprof-cli-stdin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src = dir.join("loop.jay");
    std::fs::write(
        &src,
        "class Main { static int main() {
            int size = readInput();
            int acc = 0;
            for (int i = 0; i < size; i = i + 1) { acc = acc + i; }
            return acc;
        } }",
    )
    .expect("writes");
    let trace = dir.join("loop.aptr");
    let rec = algoprof(&[
        "record",
        src.to_str().unwrap(),
        "--input",
        "24",
        "-o",
        trace.to_str().unwrap(),
    ]);
    assert!(rec.status.success(), "record stderr: {}", stderr(&rec));

    let from_file = algoprof(&["analyze", trace.to_str().unwrap()]);
    assert!(
        from_file.status.success(),
        "analyze stderr: {}",
        stderr(&from_file)
    );

    let mut child = Command::new(env!("CARGO_BIN_EXE_algoprof"))
        .args(["analyze", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns analyze -");
    let bytes = std::fs::read(&trace).expect("reads trace");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(&bytes)
        .expect("pipes trace");
    let from_stdin = child.wait_with_output().expect("analyze - finishes");
    assert!(
        from_stdin.status.success(),
        "analyze - stderr: {}",
        stderr(&from_stdin)
    );

    // The incremental (stdin) and batch (file) paths must agree byte
    // for byte.
    assert_eq!(
        String::from_utf8_lossy(&from_stdin.stdout),
        String::from_utf8_lossy(&from_file.stdout)
    );

    // `--check` still works without a file path: the guest source rides
    // in the trace header.
    let mut child = Command::new(env!("CARGO_BIN_EXE_algoprof"))
        .args(["analyze", "-", "--check"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns analyze - --check");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(&bytes)
        .expect("pipes trace");
    let checked = child
        .wait_with_output()
        .expect("analyze - --check finishes");
    assert!(
        checked.status.success(),
        "analyze - --check stderr: {}",
        stderr(&checked)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threaded_event_stream_is_fusion_invariant() {
    // Superinstruction fusion rewrites the dispatch loop, not the
    // logical event stream: a threaded recording (spawn/join/lock with
    // deterministic scheduling) must be byte-identical with the
    // peephole pass disabled, and so must everything derived from it.
    let dir = std::env::temp_dir().join(format!("algoprof-cli-nofuse-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src = dir.join("contended.jay");
    std::fs::write(
        &src,
        "class Main {
            static int main() {
                int n = readInput();
                Counter c = new Counter();
                int t1 = spawn bump(c, n);
                int t2 = spawn bump(c, n + 2);
                return join t1 + join t2 + c.value;
            }
            static int bump(Counter c, int n) {
                for (int i = 0; i < n; i = i + 1) {
                    lock c;
                    c.value = c.value + 1;
                    unlock c;
                }
                return n;
            }
        }
        class Counter { int value; }",
    )
    .expect("writes");
    let path = src.to_str().unwrap();

    let fused_trace = dir.join("fused.aptr");
    let unfused_trace = dir.join("unfused.aptr");
    let record = |trace: &std::path::Path, no_fuse: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_algoprof"));
        cmd.args([
            "record",
            path,
            "--input",
            "6",
            "-o",
            trace.to_str().unwrap(),
        ]);
        if no_fuse {
            cmd.env("ALGOPROF_NO_FUSE", "1");
        }
        let out = cmd.output().expect("spawns the algoprof binary");
        assert!(out.status.success(), "stderr: {}", stderr(&out));
    };
    record(&fused_trace, false);
    record(&unfused_trace, true);
    let fused = std::fs::read(&fused_trace).expect("fused trace");
    let unfused = std::fs::read(&unfused_trace).expect("unfused trace");
    assert_eq!(fused, unfused, "trace bytes must be fusion-invariant");

    // The decoded event stream (with thread attribution) agrees too,
    // and carries all three threads.
    let events = algoprof(&["events", fused_trace.to_str().unwrap()]);
    assert!(events.status.success(), "stderr: {}", stderr(&events));
    let text = String::from_utf8_lossy(&events.stdout).into_owned();
    for t in ["t0 ", "t1 ", "t2 "] {
        assert!(
            text.lines().any(|l| l.starts_with(t)),
            "no {t} lines in: {text}"
        );
    }
    let events_unfused = algoprof(&["events", unfused_trace.to_str().unwrap()]);
    assert_eq!(events.stdout, events_unfused.stdout);

    // Live per-thread profiles are fusion-invariant as well.
    let live = |no_fuse: bool| -> Vec<u8> {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_algoprof"));
        cmd.args([path, "--input", "6"]);
        if no_fuse {
            cmd.env("ALGOPROF_NO_FUSE", "1");
        }
        let out = cmd.output().expect("spawns the algoprof binary");
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        out.stdout
    };
    let report = live(false);
    assert_eq!(report, live(true), "profile text must be fusion-invariant");
    let report = String::from_utf8_lossy(&report).into_owned();
    assert!(report.contains("=== t1 ==="), "stdout: {report}");
    assert!(
        report.contains("=== merged (all threads) ==="),
        "stdout: {report}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
