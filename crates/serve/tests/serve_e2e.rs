//! End-to-end: the real `algoprof serve` daemon on an ephemeral port,
//! exercised through the real `algoprof submit` client and raw library
//! clients from several threads at once.
//!
//! The two contracts under test are the ones docs/SERVE.md promises:
//! responses are byte-identical to the one-shot CLI (at any worker
//! count, from any client), and resubmitting an identical job is a
//! cache hit that skips execution.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

use algoprof::JobSpec;
use algoprof_serve::{client, ServerAddr};

const GUEST: &str = "class Main { static int main() {
    int size = readInput();
    Node head = null;
    for (int i = 0; i < size; i = i + 1) {
        Node n = new Node();
        n.next = head;
        head = n;
    }
    return 0;
} }
class Node { Node next; }";

struct Daemon {
    child: Child,
    addr: ServerAddr,
}

/// Starts the real binary with `--addr 127.0.0.1:0` and reads the bound
/// port back from its "listening on" line.
fn start_daemon(extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_algoprof"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns the daemon");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("reads the listening line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address on the listening line")
        .to_owned();
    assert!(line.contains("listening on"), "unexpected banner: {line:?}");
    Daemon {
        child,
        addr: ServerAddr::Tcp(addr),
    }
}

impl Daemon {
    /// Asks for shutdown and waits for a clean exit.
    fn stop(mut self) {
        client::shutdown(&self.addr).expect("shutdown accepted");
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exited with {status}");
    }
}

fn algoprof(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_algoprof"))
        .args(args)
        .output()
        .expect("spawns the algoprof binary")
}

fn write_guest(dir: &std::path::Path) -> PathBuf {
    std::fs::create_dir_all(dir).expect("temp dir");
    let src = dir.join("list.jay");
    std::fs::write(&src, GUEST).expect("writes guest");
    src
}

#[test]
fn daemon_matches_one_shot_cli_and_caches_resubmissions() {
    let dir = std::env::temp_dir().join(format!("algoprof-e2e-{}", std::process::id()));
    let src = write_guest(&dir);
    let path = src.to_str().expect("utf-8 path");

    // Ground truth: the one-shot CLI, no daemon involved.
    let json_path = dir.join("oneshot.json");
    let oneshot = algoprof(&[
        "sweep",
        path,
        "--sizes",
        "4,8,16",
        "--quiet",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        oneshot.status.success(),
        "one-shot sweep failed: {}",
        String::from_utf8_lossy(&oneshot.stderr)
    );
    let oneshot_text = String::from_utf8(oneshot.stdout).expect("utf-8 report");
    let oneshot_json = std::fs::read_to_string(&json_path).expect("one-shot json");

    // Two workers so concurrent jobs genuinely interleave.
    let daemon = start_daemon(&["--workers", "2"]);

    // The identical spec the CLI built (same program path string — the
    // path is part of the report and the cache key).
    let spec = JobSpec::Sweep {
        program: path.to_owned(),
        source: GUEST.to_owned(),
        sizes: vec![4, 8, 16],
        ablations: vec![algoprof::SweepAblation {
            name: "default".to_owned(),
            options: algoprof::AlgoProfOptions::default(),
        }],
    };

    // Several client threads race the same submission; every one must
    // get the one-shot bytes back, whatever the scheduling.
    let outputs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = daemon.addr.clone();
                let spec = &spec;
                scope.spawn(move || {
                    let submitted = client::submit(&addr, spec).expect("submit accepted");
                    let done = client::wait(&addr, &submitted.id).expect("job finishes");
                    assert_eq!(done.status, "done", "error: {:?}", done.error);
                    done.output.expect("done job carries output")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for output in &outputs {
        assert_eq!(
            output.text, oneshot_text,
            "daemon text diverges from one-shot"
        );
        assert_eq!(
            output.json.as_deref(),
            Some(oneshot_json.as_str()),
            "daemon json diverges from one-shot"
        );
    }

    // The four racing submissions shared one cache key: at most a
    // handful executed (each a miss), the rest were hits. A fresh
    // resubmission now must be a pure hit.
    let before = client::cache_stats(&daemon.addr).expect("cache stats");
    assert!(before.stores >= 1, "at least one execution stored");
    let resubmitted = client::submit(&daemon.addr, &spec).expect("resubmit accepted");
    assert_eq!(resubmitted.status, "done", "resubmission served from cache");
    assert_eq!(resubmitted.cache, "hit");
    let after = client::cache_stats(&daemon.addr).expect("cache stats");
    assert_eq!(after.hits, before.hits + 1, "resubmission counted as a hit");
    assert_eq!(after.stores, before.stores, "resubmission executed nothing");

    // The submit subcommand sees the same bytes end to end.
    let via_cli = algoprof(&[
        "submit",
        "--addr",
        &daemon.addr.to_string(),
        "--wait",
        "sweep",
        path,
        "--sizes",
        "4,8,16",
    ]);
    assert!(
        via_cli.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&via_cli.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&via_cli.stdout), oneshot_text);

    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_upload_and_profile_submission_round_trip() {
    let dir = std::env::temp_dir().join(format!("algoprof-e2e-stream-{}", std::process::id()));
    let src = write_guest(&dir);
    let path = src.to_str().expect("utf-8 path");

    // Record a trace, then get the ground-truth analysis.
    let trace_path = dir.join("list.aptr");
    let rec = algoprof(&[
        "record",
        path,
        "--input",
        "12",
        "-o",
        trace_path.to_str().unwrap(),
    ]);
    assert!(
        rec.status.success(),
        "record failed: {}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let analyzed = algoprof(&["analyze", trace_path.to_str().unwrap()]);
    assert!(analyzed.status.success());
    let analyzed_text = String::from_utf8(analyzed.stdout).expect("utf-8 report");

    let daemon = start_daemon(&[]);

    // Chunked streaming upload: same report bytes.
    let mut trace = std::fs::File::open(&trace_path).expect("opens trace");
    let report = client::stream_trace(&daemon.addr, &mut trace, "").expect("stream accepted");
    assert_eq!(report.text, analyzed_text);
    assert!(report.events > 0 && report.bytes > 0);

    // An analyze job over the same bytes agrees too.
    let spec = JobSpec::Analyze {
        trace: std::fs::read(&trace_path).expect("reads trace"),
        options: algoprof::AlgoProfOptions::default(),
    };
    let submitted = client::submit(&daemon.addr, &spec).expect("submit accepted");
    let done = client::wait(&daemon.addr, &submitted.id).expect("job finishes");
    assert_eq!(done.status, "done", "error: {:?}", done.error);
    assert_eq!(done.output.expect("output").text, analyzed_text);

    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}
