//! Decoding a recording into human-readable or JSON-lines events.
//!
//! [`DumpSink`] is an [`EventSink`] that renders each event it observes
//! with the [`Event`](algoprof_vm::Event) serializer — one line per event
//! — and writes it to an `io::Write` backend. Drive it from a
//! [`TraceReplayer`](crate::TraceReplayer) to turn a `.aptr` recording
//! into text (the `algoprof events` subcommand does exactly that).
//!
//! A `limit` stops *printing* after N events but the replay itself should
//! still run to the `End` tag, so stream validation (balance, bounds,
//! shadow-heap consistency) covers the whole recording either way.

use std::io::{self, Write};

use algoprof_vm::{Event, EventCx, EventSink};

/// Renders events as lines (text or JSON) into an `io::Write` backend.
///
/// Because `EventSink::event` cannot return errors, an I/O failure is
/// stashed and surfaced by [`DumpSink::finish`]; after a failure the
/// sink stops rendering.
#[derive(Debug)]
pub struct DumpSink<W: Write> {
    out: W,
    json: bool,
    limit: Option<u64>,
    /// Only render events delivered on this guest thread (`None` = all).
    filter: Option<u32>,
    /// The thread the stream is currently delivering on: implicitly `t0`
    /// from the start, updated by every `ThreadSwitch` (the switch line
    /// itself is attributed to the thread being switched *to*).
    thread: u32,
    written: u64,
    io_err: Option<io::Error>,
}

impl<W: Write> DumpSink<W> {
    /// A sink writing one line per event to `out`; `json` selects
    /// JSON-lines over plain text, `limit` caps the number of lines
    /// (`None` = dump everything).
    pub fn new(out: W, json: bool, limit: Option<u64>) -> Self {
        DumpSink {
            out,
            json,
            limit,
            filter: None,
            thread: 0,
            written: 0,
            io_err: None,
        }
    }

    /// Restricts rendering to events delivered on guest thread `id`.
    /// Filtering is per *delivery* thread, so `ThreadSpawn`s performed by
    /// the filtered thread appear while its own switch-in lines do.
    /// Replay still validates the whole stream.
    pub fn with_thread_filter(mut self, id: u32) -> Self {
        self.filter = Some(id);
        self
    }

    /// Flushes the backend and returns the number of lines written.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit while writing, whether it
    /// occurred mid-dump or now.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.io_err {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.written)
    }
}

impl<W: Write> EventSink for DumpSink<W> {
    fn event(&mut self, ev: &Event, cx: &EventCx<'_>) {
        if let Event::ThreadSwitch { thread } = ev {
            self.thread = thread.index() as u32;
        }
        if self.io_err.is_some()
            || self.limit.is_some_and(|n| self.written >= n)
            || self.filter.is_some_and(|f| f != self.thread)
        {
            return;
        }
        let line = if self.json {
            // Splice the delivery thread in as the first key so every
            // JSON line is self-describing: {"thread": N, "event": ...}.
            let body = ev.render_json(cx.program);
            format!("{{\"thread\": {}, {}", self.thread, &body[1..])
        } else {
            format!("t{} {}", self.thread, ev.render_text(cx.program))
        };
        if let Err(e) = writeln!(self.out, "{line}") {
            self.io_err = Some(e);
            return;
        }
        self.written += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_header, TraceHeader, TraceRecorder, TraceReplayer};
    use algoprof_vm::{compile, InstrumentOptions, Interp};

    fn record(src: &str) -> Vec<u8> {
        let options = InstrumentOptions::default();
        let program = compile(src).expect("compiles").instrument(&options);
        let header = TraceHeader::new(src, &options, &[]);
        let mut bytes = Vec::new();
        let mut rec = TraceRecorder::new(&header, &mut bytes);
        Interp::new(&program).run(&mut rec).expect("runs");
        rec.finish().expect("finishes");
        bytes
    }

    const SRC: &str = "class Main { static int main() {
        Node head = null;
        for (int i = 0; i < 3; i = i + 1) {
            Node n = new Node();
            n.next = head;
            head = n;
        }
        int[] a = new int[2];
        a[1] = 7;
        return 0;
    } }
    class Node { Node next; }";

    fn dump(json: bool, limit: Option<u64>) -> (String, u64) {
        let trace = record(SRC);
        let (header, events) = read_header(&trace).expect("valid header");
        let program = compile(&header.source)
            .expect("header source compiles")
            .instrument(&header.instrument);
        let mut out = Vec::new();
        let mut sink = DumpSink::new(&mut out, json, limit);
        TraceReplayer::new()
            .replay(&program, events, &mut sink)
            .expect("replays");
        let written = sink.finish().expect("finishes");
        (String::from_utf8(out).expect("utf-8"), written)
    }

    #[test]
    fn text_dump_resolves_names() {
        let (text, written) = dump(false, None);
        assert!(written > 0);
        assert!(text.contains("loop_entry Main.main:loop"), "got:\n{text}");
        assert!(text.contains("object_alloc obj@0 : Node"), "got:\n{text}");
        assert!(text.contains("array_write arr@0[1] = 7"), "got:\n{text}");
        // Every line carries its delivery thread; this guest never
        // spawns, so that is t0 throughout.
        for line in text.lines() {
            assert!(line.starts_with("t0 "), "got: {line}");
        }
    }

    #[test]
    fn json_dump_is_json_lines() {
        let (text, _) = dump(true, None);
        for line in text.lines() {
            assert!(
                line.starts_with("{\"thread\": 0, \"event\": \""),
                "got: {line}"
            );
            assert!(line.ends_with('}'), "got: {line}");
        }
        assert!(text.contains("\"event\": \"field_write\""), "got:\n{text}");
    }

    const THREADED_SRC: &str = "class Main { static int main() {
        int t1 = spawn work(3);
        int t2 = spawn work(4);
        return join t1 + join t2;
    }
    static int work(int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) { s = s + i; }
        return s;
    } }";

    fn dump_threaded(filter: Option<u32>) -> String {
        let trace = record(THREADED_SRC);
        let (header, events) = read_header(&trace).expect("valid header");
        let program = compile(&header.source)
            .expect("header source compiles")
            .instrument(&header.instrument);
        let mut out = Vec::new();
        let mut sink = DumpSink::new(&mut out, false, None);
        if let Some(id) = filter {
            sink = sink.with_thread_filter(id);
        }
        TraceReplayer::new()
            .replay(&program, events, &mut sink)
            .expect("replays");
        sink.finish().expect("finishes");
        String::from_utf8(out).expect("utf-8")
    }

    #[test]
    fn threaded_dump_attributes_lines_to_delivery_threads() {
        let text = dump_threaded(None);
        for t in ["t0 ", "t1 ", "t2 "] {
            assert!(text.contains(t), "missing {t} lines:\n{text}");
        }
        // Switch lines belong to the thread being switched to.
        assert!(
            text.lines()
                .filter(|l| l.contains("thread_switch"))
                .all(|l| {
                    // `tN thread_switch tN` — the column matches the target.
                    let target = l.split_whitespace().last().unwrap_or_default();
                    l.starts_with(&format!("{target} "))
                }),
            "got:\n{text}"
        );
    }

    #[test]
    fn thread_filter_selects_one_thread_but_validates_all() {
        let all = dump_threaded(None);
        let only1 = dump_threaded(Some(1));
        assert!(!only1.is_empty());
        for line in only1.lines() {
            assert!(line.starts_with("t1 "), "got: {line}");
        }
        let expected: Vec<&str> = all.lines().filter(|l| l.starts_with("t1 ")).collect();
        assert_eq!(only1.lines().collect::<Vec<_>>(), expected);
        // A filter naming a thread the run never reaches prints nothing
        // (but replays fine — the stream is still fully validated).
        assert!(dump_threaded(Some(9)).is_empty());
    }

    #[test]
    fn limit_caps_lines_but_replay_validates_everything() {
        let (text, written) = dump(false, Some(2));
        assert_eq!(written, 2);
        assert_eq!(text.lines().count(), 2);
        // And a corrupt tail still fails even when the limit hides it.
        let mut trace = record(SRC);
        let end = trace.len() - 1;
        trace[end] = 0xEE; // overwrite the End tag with garbage
        let (header, events) = read_header(&trace).expect("valid header");
        let program = compile(&header.source)
            .expect("header source compiles")
            .instrument(&header.instrument);
        let mut sink = DumpSink::new(Vec::new(), false, Some(1));
        let err = TraceReplayer::new()
            .replay(&program, events, &mut sink)
            .expect_err("corrupt tail must be reported");
        let msg = err.to_string();
        assert!(
            msg.contains("truncated") || msg.contains("tag"),
            "got {msg}"
        );
    }
}
