//! The `algoprof-trace` binary format: magic, header, and event tags.
//!
//! The full specification lives in `docs/TRACE.md`; this module is the
//! single source of truth for the constants it describes. A trace is:
//!
//! ```text
//! magic "APTR" | version u16 LE | instrumentation (6 bytes)
//! | source length uleb | source utf-8 | input count uleb | inputs ileb*
//! | events* | End tag (0x00)
//! ```
//!
//! The header embeds everything needed to re-derive the instrumented
//! [`CompiledProgram`](algoprof_vm::CompiledProgram) — guest source,
//! instrumentation options, and external input values — so a trace file
//! is self-contained: `analyze` recompiles deterministically and replays
//! without consulting the original `.jay` file.

use std::fmt;

use algoprof_vm::{
    AllocInstrumentation, FieldInstrumentation, InstrumentOptions, MethodInstrumentation,
};

use crate::wire::{put_ileb, put_uleb, Cursor};

/// The four magic bytes opening every trace.
pub const MAGIC: [u8; 4] = *b"APTR";

/// Current format version. Writers always emit this version; readers
/// accept every version in `MIN_VERSION..=VERSION` (see `docs/TRACE.md`
/// for the compatibility rules). Version 2 added thread identity: the
/// thread/lock event tags `0x0e..=0x13`. A v1 trace simply never
/// contains them, so its whole stream implicitly belongs to thread 0.
pub const VERSION: u16 = 2;

/// Oldest version this reader still decodes.
pub const MIN_VERSION: u16 = 1;

/// Why a trace could not be decoded.
///
/// Deliberately `Clone + PartialEq + Eq` (and thus free of
/// [`std::io::Error`]) so it can ride inside `algoprof`'s `ProfileError`
/// unchanged; I/O failures belong to the recorder's `finish`, not to
/// decoding, which operates on an in-memory slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input does not begin with [`MAGIC`].
    BadMagic,
    /// The trace was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// The input ended mid-header or mid-event (no `End` tag seen).
    Truncated,
    /// The input is structurally invalid (bad tag, id out of range, …).
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an algoprof trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (reader supports {MIN_VERSION}..={VERSION})"
                )
            }
            TraceError::Truncated => write!(f, "trace is truncated"),
            TraceError::Corrupt(why) => write!(f, "trace is corrupt: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

// ------------------------------------------------------------ event tags

/// Terminates the event stream; its absence means truncation.
pub const TAG_END: u8 = 0x00;
/// `on_method_entry(func)`.
pub const TAG_METHOD_ENTRY: u8 = 0x01;
/// `on_method_exit(func)`.
pub const TAG_METHOD_EXIT: u8 = 0x02;
/// `on_loop_entry(loop)`.
pub const TAG_LOOP_ENTRY: u8 = 0x03;
/// `on_loop_back_edge(loop)`.
pub const TAG_LOOP_BACK_EDGE: u8 = 0x04;
/// `on_loop_exit(loop)`.
pub const TAG_LOOP_EXIT: u8 = 0x05;
/// `on_field_get(obj, field)`.
pub const TAG_FIELD_GET: u8 = 0x06;
/// `on_array_load(arr)`.
pub const TAG_ARRAY_LOAD: u8 = 0x07;
/// `on_input_read()`.
pub const TAG_INPUT_READ: u8 = 0x08;
/// `on_output_write()`.
pub const TAG_OUTPUT_WRITE: u8 = 0x09;
/// Heap mutation: an object of some class was allocated. The new
/// [`ObjRef`](algoprof_vm::ObjRef) is implicit (dense allocation order).
pub const TAG_OBJECT_ALLOCATED: u8 = 0x0a;
/// Heap mutation: an array was allocated (element kind + length).
pub const TAG_ARRAY_ALLOCATED: u8 = 0x0b;
/// Heap mutation: a field was written (tracked or not).
pub const TAG_FIELD_WRITTEN: u8 = 0x0c;
/// Heap mutation: an array element was stored (tracked or not).
pub const TAG_ARRAY_WRITTEN: u8 = 0x0d;
/// `ThreadSwitch { thread }`: delta to the last switched-to thread id as
/// ileb. Introduced in version 2.
pub const TAG_THREAD_SWITCH: u8 = 0x0e;
/// `ThreadSpawn { thread, func }`: new thread id + entry function, both
/// uleb. Introduced in version 2.
pub const TAG_THREAD_SPAWN: u8 = 0x0f;
/// `ThreadEnd { thread }`: finished thread id as uleb. Introduced in
/// version 2.
pub const TAG_THREAD_END: u8 = 0x10;
/// `LockAcquire { obj, contended }`: locked value + contended byte.
/// Introduced in version 2.
pub const TAG_LOCK_ACQ: u8 = 0x11;
/// `LockRelease { obj }`: unlocked value. Introduced in version 2.
pub const TAG_LOCK_REL: u8 = 0x12;
/// `LockWait { obj }`: the blocked thread's contended value. Introduced
/// in version 2.
pub const TAG_LOCK_WAIT: u8 = 0x13;

// -------------------------------------------------------- value encoding

/// `Value::Null`.
pub const VK_NULL: u8 = 0;
/// `Value::Bool(false)`.
pub const VK_FALSE: u8 = 1;
/// `Value::Bool(true)`.
pub const VK_TRUE: u8 = 2;
/// `Value::Int(_)`, followed by the payload as ileb.
pub const VK_INT: u8 = 3;
/// `Value::Obj(_)`, followed by the delta to the last object ref as ileb.
pub const VK_OBJ: u8 = 4;
/// `Value::Arr(_)`, followed by the delta to the last array ref as ileb.
pub const VK_ARR: u8 = 5;

// --------------------------------------------------------------- header

/// The decoded trace header: everything needed to rebuild the program a
/// trace was recorded against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version the trace was written with.
    pub version: u16,
    /// Instrumentation options the guest was compiled with.
    pub instrument: InstrumentOptions,
    /// Guest source text.
    pub source: String,
    /// External input values fed to `readInput()`.
    pub input: Vec<i64>,
}

impl TraceHeader {
    /// A version-[`VERSION`] header for `source` under `instrument` with
    /// guest `input`.
    pub fn new(source: &str, instrument: &InstrumentOptions, input: &[i64]) -> Self {
        TraceHeader {
            version: VERSION,
            instrument: *instrument,
            source: source.to_string(),
            input: input.to_vec(),
        }
    }

    /// Appends the encoded header to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(self.instrument.loops as u8);
        out.push(match self.instrument.methods {
            MethodInstrumentation::RecursionHeaders => 0,
            MethodInstrumentation::All => 1,
            MethodInstrumentation::None => 2,
        });
        out.push(match self.instrument.fields {
            FieldInstrumentation::RecursiveOnly => 0,
            FieldInstrumentation::AllRefFields => 1,
            FieldInstrumentation::None => 2,
        });
        out.push(self.instrument.arrays as u8);
        out.push(match self.instrument.allocs {
            AllocInstrumentation::RecursiveClasses => 0,
            AllocInstrumentation::All => 1,
            AllocInstrumentation::None => 2,
        });
        out.push(self.instrument.io as u8);
        put_uleb(out, self.source.len() as u64);
        out.extend_from_slice(self.source.as_bytes());
        put_uleb(out, self.input.len() as u64);
        for &v in &self.input {
            put_ileb(out, v);
        }
    }

    /// Decodes a header from the front of `bytes`, returning it together
    /// with the offset where the event stream begins.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when the magic or version is wrong, the
    /// input ends early, or an enum byte is out of range.
    pub fn decode(bytes: &[u8]) -> Result<(TraceHeader, usize), TraceError> {
        let mut c = Cursor::new(bytes);
        if c.take(4)? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = c.u16_le()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let loops = decode_bool(c.u8()?, "loops flag")?;
        let methods = match c.u8()? {
            0 => MethodInstrumentation::RecursionHeaders,
            1 => MethodInstrumentation::All,
            2 => MethodInstrumentation::None,
            b => return Err(TraceError::Corrupt(format!("method instrumentation {b}"))),
        };
        let fields = match c.u8()? {
            0 => FieldInstrumentation::RecursiveOnly,
            1 => FieldInstrumentation::AllRefFields,
            2 => FieldInstrumentation::None,
            b => return Err(TraceError::Corrupt(format!("field instrumentation {b}"))),
        };
        let arrays = decode_bool(c.u8()?, "arrays flag")?;
        let allocs = match c.u8()? {
            0 => AllocInstrumentation::RecursiveClasses,
            1 => AllocInstrumentation::All,
            2 => AllocInstrumentation::None,
            b => return Err(TraceError::Corrupt(format!("alloc instrumentation {b}"))),
        };
        let io = decode_bool(c.u8()?, "io flag")?;
        let src_len = c.uleb()? as usize;
        let source = String::from_utf8(c.take(src_len)?.to_vec())
            .map_err(|_| TraceError::Corrupt("source is not UTF-8".into()))?;
        let n_input = c.uleb()? as usize;
        let mut input = Vec::with_capacity(n_input.min(1 << 16));
        for _ in 0..n_input {
            input.push(c.ileb()?);
        }
        Ok((
            TraceHeader {
                version,
                instrument: InstrumentOptions {
                    loops,
                    methods,
                    fields,
                    arrays,
                    allocs,
                    io,
                },
                source,
                input,
            },
            c.pos(),
        ))
    }
}

fn decode_bool(b: u8, what: &str) -> Result<bool, TraceError> {
    match b {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(TraceError::Corrupt(format!("{what} byte {b}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> TraceHeader {
        TraceHeader::new(
            "class Main { static int main() { return 0; } }",
            &InstrumentOptions {
                loops: true,
                methods: MethodInstrumentation::All,
                fields: FieldInstrumentation::AllRefFields,
                arrays: false,
                allocs: AllocInstrumentation::None,
                io: true,
            },
            &[3, -7, 0, i64::MAX],
        )
    }

    #[test]
    fn header_roundtrips() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, off) = TraceHeader::decode(&buf).expect("decodes");
        assert_eq!(back, h);
        assert_eq!(off, buf.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(TraceHeader::decode(b"NOPE....."), Err(TraceError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = Vec::new();
        sample_header().encode(&mut buf);
        buf[4] = 0x63; // version 99
        buf[5] = 0;
        assert_eq!(
            TraceHeader::decode(&buf),
            Err(TraceError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn truncated_header_is_reported() {
        let mut buf = Vec::new();
        sample_header().encode(&mut buf);
        for cut in [0, 3, 5, 8, buf.len() - 1] {
            assert_eq!(
                TraceHeader::decode(&buf[..cut]),
                Err(TraceError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn errors_display() {
        assert!(TraceError::BadMagic.to_string().contains("magic"));
        assert!(TraceError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(TraceError::Corrupt("x".into()).to_string().contains('x'));
    }
}
